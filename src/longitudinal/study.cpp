#include "longitudinal/study.hpp"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "obs/lane.hpp"
#include "population/paper_constants.hpp"
#include "scan/prober.hpp"
#include "snapshot/fields.hpp"

namespace spfail::longitudinal {

namespace {

namespace paper = population::paper;

std::vector<util::SimTime> measurement_round_times() {
  std::vector<util::SimTime> times;
  for (util::SimTime t = paper::kLongitudinalStart;
       t <= paper::kMeasurementsPaused; t += paper::kMeasurementCadence) {
    times.push_back(t);
  }
  for (util::SimTime t = paper::kMeasurementsResumed;
       t <= paper::kFinalMeasurement; t += paper::kMeasurementCadence) {
    times.push_back(t);
  }
  return times;
}

}  // namespace

std::size_t Study::standard_round_count() {
  return measurement_round_times().size();
}

std::string to_string(Cohort cohort) {
  switch (cohort) {
    case Cohort::All:
      return "All domains";
    case Cohort::AlexaTopList:
      return "Alexa Top List";
    case Cohort::Alexa1000:
      return "Alexa Top 1000";
    case Cohort::TwoWeekMx:
      return "2-Week MX";
  }
  return "?";
}

Study::Study(population::Fleet& fleet, StudyConfig config)
    : fleet_(fleet),
      config_(config),
      plan_(config_.faults),
      engine_(plan_, retry_, fleet.clock()),
      round_times_(measurement_round_times()) {
  faults::RetryConfig retry = config_.retry;
  if (retry.max_attempts == 0) {
    // The legacy schedule: one greylist retry after the paper's backoff.
    retry.max_attempts = 2;
    retry.base_backoff = paper::kGreylistBackoff;
    retry.multiplier = 1.0;
    retry.max_backoff = paper::kGreylistBackoff;
    retry.jitter = 0.0;
  }
  retry_ = faults::RetryPolicy(retry);
}

bool Study::in_cohort(const population::DomainRecord& domain, Cohort cohort) {
  switch (cohort) {
    case Cohort::All:
      return true;
    case Cohort::AlexaTopList:
      return domain.in_alexa;
    case Cohort::Alexa1000:
      return domain.in_alexa1000;
    case Cohort::TwoWeekMx:
      return domain.in_mx;
  }
  return false;
}

Observation Study::observe_address(scan::Prober& prober,
                                   const util::IpAddress& address,
                                   scan::TestKind kind,
                                   const scan::LabelAllocator& labels,
                                   const std::string& suite,
                                   std::uint64_t slot,
                                   std::uint64_t fault_round,
                                   faults::DegradationReport& deg) {
  mta::MailHost* host = fleet_.find_host(address);
  if (host == nullptr) return Observation::Inconclusive;

  scan::ProbeRequest request;
  request.address = address;
  request.recipient_domain = "host-" + address.to_string();
  request.mail_from = labels.indexed_mail_from(slot, suite);
  request.retry_mail_from = labels.indexed_mail_from(slot + 1, suite);
  request.kind = kind;
  request.fault_round = fault_round;
  // A longitudinal observation is a fresh single test: attempts start at 0
  // and the round-level budget never binds (max_attempts is the cap).
  request.retry_budget = std::numeric_limits<int>::max();
  const scan::ProbeOutcome outcome = engine_.run(prober, *host, request, deg);

  if (outcome.saw_transient) {
    ++deg.transient_addresses;
    if (outcome.settled()) {
      ++deg.recovered;
    } else {
      ++deg.exhausted;
    }
  }
  if (outcome.result.status != scan::ProbeStatus::SpfMeasured) {
    return Observation::Inconclusive;
  }
  return outcome.result.vulnerable() ? Observation::Vulnerable
                                     : Observation::Compliant;
}

Study::ObserveSliceResult Study::run_observe_slice(
    std::span<const ObserveJob> jobs, const ObserveContext& ctx) {
  ObserveSliceResult out;
  out.results.reserve(jobs.size());
  util::SimClock::Lane clock_lane(fleet_.clock());
  dns::AuthoritativeServer::LogLane log_lane(fleet_.dns(), out.log);
  std::optional<obs::MetricsLane> metrics_lane;
  if (ctx.metrics) metrics_lane.emplace(out.metrics);
  // Label slots are a pure function of construction seed + slot + suite, so
  // the slice builds its own allocator — a dist worker has no access to the
  // coordinator's replayed State::labels instance, and the local pool path
  // produces identical labels through the same constructor arguments.
  const scan::LabelAllocator labels(util::Rng(config_.seed ^ 0x1ABE15),
                                    fleet_.responder().base);
  scan::ProberConfig prober_config;
  prober_config.responder = fleet_.responder();
  net::Transport transport(fleet_.clock());
  scan::Prober prober(prober_config, fleet_.dns(), transport);
  for (const ObserveJob& job : jobs) {
    std::optional<net::WireTrace::Lane> lane;
    if (ctx.tracing) lane.emplace(out.trace, job.slot, fleet_.clock());
    out.results.push_back(observe_address(prober, job.address, job.kind,
                                          labels, ctx.suite, job.slot,
                                          ctx.fault_round, out.deg));
  }
  out.advance = clock_lane.offset();
  return out;
}

Study::ObserveSliceResult Study::run_observe_slice_scheduled(
    std::span<const ObserveJob> jobs, const ObserveContext& ctx,
    util::ThreadPool& pool) {
  const std::size_t slices = pool.slice_count(jobs.size(), config_.sched);
  if (slices <= 1) return run_observe_slice(jobs, ctx);
  std::vector<ObserveSliceResult> parts(slices);
  pool.parallel_for_slices(
      jobs.size(), config_.sched,
      [&](std::size_t slice, std::size_t begin, std::size_t end) {
        parts[slice] = run_observe_slice(jobs.subspan(begin, end - begin),
                                         ctx);
      });
  // Fold in batch (job) order into one result indistinguishable from a
  // serial run_observe_slice over the whole span; the shared clock stays
  // untouched — the caller merges the summed advance.
  ObserveSliceResult out;
  out.results.reserve(jobs.size());
  for (auto& part : parts) {
    out.results.insert(out.results.end(), part.results.begin(),
                       part.results.end());
    out.log.splice(std::move(part.log));
    out.advance += part.advance;
    out.deg.merge(part.deg);
    out.trace.splice(std::move(part.trace));
    out.metrics.merge(part.metrics);
  }
  return out;
}

void Study::run_batch(State& state, const std::vector<ObserveJob>& jobs,
                      std::vector<Observation>& results,
                      const std::string& suite, std::uint64_t fault_round) {
  // Each slice runs a private clock lane and a private query-log lane, plus
  // one prober reused across its jobs; the merge folds clock offsets (their
  // sum is exactly the serial advance) and splices lane logs back in slice —
  // i.e. address — order.
  results.assign(jobs.size(), Observation::Inconclusive);
  if (jobs.empty()) return;

  ObserveContext ctx;
  ctx.suite = suite;
  ctx.fault_round = fault_round;
  ctx.tracing = config_.trace != nullptr;
  ctx.metrics = config_.metrics != nullptr;

  std::vector<ObserveSliceResult> slices;
  if (config_.dist != nullptr) {
    slices = config_.dist->run_observe(*this, jobs, ctx);
  } else {
    util::ThreadPool& pool = *state.pool;
    slices.resize(pool.slice_count(jobs.size(), config_.sched));
    pool.parallel_for_slices(
        jobs.size(), config_.sched,
        [&](std::size_t slice, std::size_t begin, std::size_t end) {
          slices[slice] = run_observe_slice(
              std::span<const ObserveJob>(jobs).subspan(begin, end - begin),
              ctx);
        });
  }

  util::SimTime total_advance = 0;
  std::size_t offset = 0;
  for (auto& slice : slices) {
    total_advance += slice.advance;
    fleet_.dns().query_log().splice(std::move(slice.log));
    state.report.degradation.merge(slice.deg);
    if (config_.trace != nullptr) config_.trace->splice(std::move(slice.trace));
    if (config_.metrics != nullptr) config_.metrics->merge(slice.metrics);
    std::copy(slice.results.begin(), slice.results.end(),
              results.begin() + static_cast<std::ptrdiff_t>(offset));
    offset += slice.results.size();
  }
  fleet_.clock().advance_by(total_advance);
}

void Study::derive_from_initial(State& state) {
  StudyReport& report = state.report;
  // In distributed mode every batch runs in worker processes; a live thread
  // pool would only add fork-unsafe threads to the coordinator.
  if (config_.dist == nullptr) {
    state.pool = std::make_unique<util::ThreadPool>(config_.threads);
  }

  // Everything downstream walks outcomes in ascending address order: label
  // slots, RNG draw order, and report assembly all key off these positions.
  const std::vector<const scan::AddressOutcome*> initial_sorted =
      report.initial.sorted_outcomes();

  // Collect vulnerable addresses and the test kind that measured them.
  state.working_test.reserve(initial_sorted.size());
  for (const scan::AddressOutcome* outcome : initial_sorted) {
    if (!outcome->vulnerable()) continue;
    state.vulnerable_addresses.push_back(outcome->address);
    const bool via_nomsg =
        outcome->nomsg.has_value() &&
        outcome->nomsg->status == scan::ProbeStatus::SpfMeasured;
    state.working_test.emplace(outcome->address,
                               via_nomsg ? scan::TestKind::NoMsg
                                         : scan::TestKind::BlankMsg);
  }
  report.initially_vulnerable_addresses = state.vulnerable_addresses.size();

  // §6.1's re-measurable inconclusives: SPF evaluation visibly started (the
  // policy fetch was logged) but no macro-expansion probe query concluded.
  // Each carries its stable label slot — master indices continue past the
  // vulnerable block so slots stay unique within a suite.
  for (const scan::AddressOutcome* outcome : initial_sorted) {
    if (outcome->vulnerable() || outcome->conclusive()) continue;
    const bool fetch_seen =
        (outcome->nomsg.has_value() && outcome->nomsg->saw_policy_fetch) ||
        (outcome->blankmsg.has_value() && outcome->blankmsg->saw_policy_fetch);
    if (fetch_seen) {
      const std::uint64_t master_index =
          state.vulnerable_addresses.size() + state.remeasurable.size();
      state.remeasurable.emplace_back(outcome->address, 2 * master_index);
    }
  }
  report.remeasurable_addresses = state.remeasurable.size();

  // Vulnerable domains and their vulnerable addresses.
  const auto& domains = fleet_.domains();
  for (std::size_t i = 0; i < domains.size(); ++i) {
    const auto& outcome = report.initial.domains[i];
    if (!outcome.vulnerable) continue;
    DomainTrack track;
    track.domain_index = i;
    for (const auto& address : domains[i].addresses) {
      const auto it = report.initial.addresses.find(address);
      if (it != report.initial.addresses.end() && it->second.vulnerable()) {
        track.vulnerable_addresses.push_back(address);
      }
    }
    report.tracks.push_back(std::move(track));
  }
  report.initially_vulnerable_domains = report.tracks.size();

  // ---- 2. Private-notification campaign (sent 2021-11-15) ---------------
  NotificationConfig notification_config = config_.notification;
  notification_config.seed = config_.seed ^ 0xA07E5;
  state.notifications.emplace(notification_config);
  for (const auto& track : report.tracks) {
    state.notifications->add_domain(
        std::string(domains[track.domain_index].name),
        track.vulnerable_addresses);
  }
  state.notifications->send();
  report.notification = state.notifications->stats();

  // ---- 3. Patch decisions per vulnerable address -------------------------
  PatchModelConfig patch_config = config_.patch_model;
  patch_config.seed = config_.seed ^ 0x9A7C4;
  PatchModel patch_model(patch_config);
  state.patch_plan.reserve(state.vulnerable_addresses.size());
  for (const auto& address : state.vulnerable_addresses) {
    const auto& info = fleet_.info(address);
    const mta::MailHost* host = fleet_.find_host(address);
    PatchContext context;
    context.tld = std::string(info.tld);
    context.in_mx_set = info.in_mx_set;
    context.provider_pool = info.provider_pool;
    context.domains_hosted = std::max<std::size_t>(1, info.domains_hosted);
    context.named_top_provider =
        info.provider_pool && info.best_rank != 0 && info.best_rank <= 1000 &&
        host != nullptr && !host->profile().rejects_spf_fail &&
        info.domains_hosted <= 3;  // the hand-built §7.5 provider farms
    context.notification_opened =
        state.notifications->address_operator_opened(address);
    state.patch_plan.emplace(address, patch_model.decide(context));
  }

  // ---- 4. Longitudinal-round scaffolding ---------------------------------
  report.round_times = round_times_;
  state.labels.emplace(util::Rng(config_.seed ^ 0x1ABE15),
                       fleet_.responder().base);
  state.series.reserve(state.vulnerable_addresses.size());
  for (const auto& address : state.vulnerable_addresses) {
    state.series.emplace(
        address, Series(report.round_times.size(), Observation::Inconclusive));
  }
  state.blacklisted.reserve(state.vulnerable_addresses.size());
}

Study::State Study::begin() {
  State state;
  util::Rng rng(config_.seed);
  state.loss_rng = rng.fork("loss");

  // ---- 1. Initial measurement (2021-10-11) ------------------------------
  // One pool for the whole study: the initial campaign, every longitudinal
  // round, and the snapshot all shard their work lists over it. The pool is
  // created by derive_from_initial, so the campaign builds its own here —
  // sharding does not affect any output.
  scan::CampaignConfig campaign_config;
  campaign_config.prober.responder = fleet_.responder();
  campaign_config.label_seed = config_.seed ^ 0xC0FFEE;
  campaign_config.threads = config_.threads;
  campaign_config.sched = config_.sched;
  campaign_config.faults = config_.faults;
  campaign_config.retry = config_.retry;
  campaign_config.trace = config_.trace;
  campaign_config.metrics = config_.metrics;
  campaign_config.runner = config_.dist;
  scan::Campaign campaign(campaign_config, fleet_.dns(), fleet_.clock(),
                          fleet_);
  // Streaming target source: the round never materialises a TargetDomain
  // vector, which is what lets a lazy fleet run at populations the eager
  // copy could not hold (DESIGN.md §14).
  state.report.initial = campaign.run(fleet_.target_source());
  state.report.degradation.merge(state.report.initial.degradation);

  derive_from_initial(state);
  return state;
}

void Study::run_round(State& state) {
  StudyReport& report = state.report;
  const std::size_t round = state.next_round;
  const util::SimTime round_time = report.round_times.at(round);
  fleet_.clock().advance_to(round_time);
  const std::string suite = state.labels->new_suite();
  ++state.suites_issued;

  const bool in_window1 = round_time <= paper::kMeasurementsPaused;

  // Serial pre-pass in address order: patch events and the loss process
  // draw here, so the RNG sequence is independent of sharding; survivors
  // become this round's job list.
  std::size_t patch_events = 0;
  std::size_t blacklist_events = 0;
  std::size_t transient_skips = 0;
  std::vector<ObserveJob> jobs;
  std::vector<Observation> results;
  jobs.reserve(state.vulnerable_addresses.size());
  for (std::size_t i = 0; i < state.vulnerable_addresses.size(); ++i) {
    const util::IpAddress& address = state.vulnerable_addresses[i];
    mta::MailHost* host = fleet_.find_host(address);
    if (host == nullptr) continue;

    // Patch events due by this round.
    const PatchDecision& decision = state.patch_plan.at(address);
    if (decision.will_patch && !host->is_patched() &&
        decision.patch_time <= round_time) {
      host->apply_patch();
      ++patch_events;
    }

    // Loss process: permanent blacklisting plus transient failures. New
    // blacklisting only hits still-vulnerable hosts — patched operators
    // are the attentive ones, and the paper's patched curves stay smooth.
    if (state.blacklisted.count(address) == 0 && !host->is_patched()) {
      const auto& info = fleet_.info(address);
      const bool high_profile = info.best_rank != 0 && info.best_rank <= 1000;
      const double rate = high_profile && in_window1
                              ? config_.top1000_blacklist_rate
                              : config_.blacklist_rate;
      if (state.loss_rng.bernoulli(rate)) {
        state.blacklisted.insert(address);
        host->set_blacklisted(true);
        ++blacklist_events;
      }
    }
    if (state.blacklisted.count(address) > 0) continue;  // stays Inconclusive
    if (state.loss_rng.bernoulli(config_.transient_failure_rate)) {
      ++transient_skips;
      continue;
    }

    jobs.push_back(ObserveJob{address, state.working_test.at(address), 2 * i});
  }
  // Fault rounds: the initial campaign owns round 0; each longitudinal
  // round salts the plan with 1 + its index (the two batches below cover
  // disjoint address sets, so they can share the round key).
  run_batch(state, jobs, results, suite, 1 + round);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    state.series.at(jobs[j].address)[round] = results[j];
  }

  // Re-measure the §6.1 inconclusive cohort until each address resolves.
  jobs.clear();
  jobs.reserve(state.remeasurable.size());
  for (const auto& [address, slot] : state.remeasurable) {
    jobs.push_back(ObserveJob{address, scan::TestKind::BlankMsg, slot});
  }
  run_batch(state, jobs, results, suite, 1 + round);
  std::size_t kept = 0;
  for (std::size_t j = 0; j < state.remeasurable.size(); ++j) {
    if (results[j] == Observation::Vulnerable) {
      ++report.remeasurable_resolved_vulnerable;
    } else if (results[j] == Observation::Compliant) {
      ++report.remeasurable_resolved_compliant;
    } else {
      state.remeasurable[kept++] = state.remeasurable[j];
    }
  }
  state.remeasurable.resize(kept);

  // Serial round roll-up: all gauges/counters below are written outside any
  // shard lane, per the §12 merge rule (gauges are serial-section-only).
  if (config_.metrics != nullptr) {
    obs::Registry& m = *config_.metrics;
    m.counter("study_rounds_total") += 1;
    m.counter("study_patch_events_total") += patch_events;
    m.counter("study_blacklist_events_total") += blacklist_events;
    m.counter("study_transient_skips_total") += transient_skips;
    m.gauge("study_round") = static_cast<std::int64_t>(round);
    m.gauge("study_round_patch_events") =
        static_cast<std::int64_t>(patch_events);
    m.gauge("study_blacklisted_addresses") =
        static_cast<std::int64_t>(state.blacklisted.size());
    m.gauge("study_remeasurable_pending") =
        static_cast<std::int64_t>(state.remeasurable.size());
  }

  state.next_round = round + 1;
}

StudyReport Study::finish(State&& state) {
  StudyReport& report = state.report;

  for (const auto& address : state.vulnerable_addresses) {
    report.inference.set_series(address, std::move(state.series.at(address)));
  }

  // ---- 5. Final snapshot with re-resolved addresses (§7.2) --------------
  fleet_.clock().advance_by(util::kHour);
  const std::string snapshot_suite = state.labels->new_suite();
  ++state.suites_issued;
  std::unordered_map<util::IpAddress, Observation, util::IpAddressHash>
      snapshot;
  snapshot.reserve(state.vulnerable_addresses.size());
  std::vector<ObserveJob> jobs;
  std::vector<Observation> results;
  jobs.reserve(state.vulnerable_addresses.size());
  for (std::size_t i = 0; i < state.vulnerable_addresses.size(); ++i) {
    const util::IpAddress& address = state.vulnerable_addresses[i];
    mta::MailHost* host = fleet_.find_host(address);
    if (host == nullptr) {
      snapshot.emplace(address, Observation::Inconclusive);
      continue;
    }
    if (host->blacklisted() &&
        state.loss_rng.bernoulli(config_.snapshot_recovery_rate)) {
      // The domain's MX re-resolved to a fresh front that has never seen the
      // scanner: measurement works again.
      host->set_blacklisted(false);
    }
    jobs.push_back(ObserveJob{address, state.working_test.at(address), 2 * i});
  }
  run_batch(state, jobs, results, snapshot_suite,
            1 + report.round_times.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    snapshot.emplace(jobs[j].address, results[j]);
  }

  // Final per-domain classification (Fig 2).
  for (auto& track : report.tracks) {
    bool any_vulnerable = false;
    bool all_known_patched = true;
    bool any_known = false;
    for (const auto& address : track.vulnerable_addresses) {
      // Prefer the snapshot; fall back to the last inferred state.
      Observation observation = snapshot.at(address);
      if (observation == Observation::Inconclusive) {
        const auto& states = report.inference.states(address);
        const InferredState last = states.back();
        if (is_vulnerable(last)) {
          observation = Observation::Vulnerable;
        } else if (is_patched(last)) {
          observation = Observation::Compliant;
        }
      }
      switch (observation) {
        case Observation::Vulnerable:
          any_vulnerable = true;
          any_known = true;
          break;
        case Observation::Compliant:
          any_known = true;
          break;
        case Observation::Inconclusive:
          all_known_patched = false;
          break;
      }
    }
    if (any_vulnerable) {
      track.final_status = FinalStatus::Vulnerable;
    } else if (any_known && all_known_patched) {
      track.final_status = FinalStatus::Patched;
    } else {
      track.final_status = FinalStatus::Unknown;
    }
  }

  // ---- 6. Notification funnel outcomes (§7.7) ---------------------------
  for (const auto& group : state.notifications->groups()) {
    const auto patched_by = [&](util::SimTime deadline) {
      for (const auto& address : group.addresses) {
        const auto& decision = state.patch_plan.at(address);
        if (!decision.will_patch || decision.patch_time > deadline) {
          return false;
        }
      }
      return true;
    };
    if (group.opened) {
      ++report.opened_groups;
      if (patched_by(paper::kFinalMeasurement)) {
        ++report.opened_eventually_patched;
      }
      if (patched_by(paper::kPublicDisclosure) &&
          !patched_by(paper::kPrivateNotification)) {
        ++report.opened_patched_between_disclosures;
      }
    } else if (!group.delivered) {
      if (patched_by(paper::kPublicDisclosure) &&
          !patched_by(paper::kPrivateNotification)) {
        ++report.bounced_patched_between_disclosures;
      }
    }
  }

  return std::move(state.report);
}

StudyReport Study::run() {
  State state = begin();
  while (rounds_remaining(state)) run_round(state);
  return finish(std::move(state));
}

snapshot::SnapshotMeta Study::meta() const {
  snapshot::SnapshotMeta meta;
  meta.kind = snapshot::SnapshotKind::Study;
  meta.fleet_seed = fleet_.config().seed;
  meta.scale = fleet_.config().scale;
  meta.study_seed = config_.seed;
  meta.fault_seed = config_.faults.seed;
  meta.fault_rate = config_.faults.rate;
  meta.tracing = config_.trace != nullptr;
  return meta;
}

snapshot::StudySnapshot Study::capture(const State& state) const {
  snapshot::StudySnapshot snap;
  snap.meta = meta();
  snap.rounds_done = state.next_round;
  snap.clock_now = fleet_.clock().now();
  snap.loss_rng = state.loss_rng.state();
  snap.suites_issued = state.suites_issued;
  snap.initial = state.report.initial;
  snap.degradation = state.report.degradation;
  snap.remeasurable_resolved_vulnerable =
      state.report.remeasurable_resolved_vulnerable;
  snap.remeasurable_resolved_compliant =
      state.report.remeasurable_resolved_compliant;
  snap.remeasurable = state.remeasurable;
  for (const auto& address : state.vulnerable_addresses) {
    const mta::MailHost* host = fleet_.find_host(address);
    if (state.blacklisted.count(address) > 0) {
      snap.blacklisted.push_back(address);
    }
    if (host != nullptr && host->is_patched()) {
      snap.patched.push_back(address);
    }
    const Series& series = state.series.at(address);
    snap.series.emplace_back(series.begin(),
                             series.begin() + static_cast<std::ptrdiff_t>(
                                                  state.next_round));
  }
  // Hosts the continued run can still probe carry scanner-visible state of
  // their own (greylist first-contact map, flaky-path RNG cursor); capture
  // it so restore() can put the rebuilt hosts mid-conversation. In
  // distributed mode a host's probe residue lives in the worker process that
  // owns its address range, so the coordinator gathers it over the wire.
  std::vector<util::IpAddress> residue_addresses;
  residue_addresses.reserve(state.vulnerable_addresses.size() +
                            state.remeasurable.size());
  for (const auto& address : state.vulnerable_addresses) {
    residue_addresses.push_back(address);
  }
  for (const auto& [address, slot] : state.remeasurable) {
    residue_addresses.push_back(address);
  }
  if (config_.dist != nullptr) {
    for (auto& hs : config_.dist->capture_hosts(residue_addresses)) {
      if (hs.has_value()) snap.hosts.push_back(std::move(*hs));
    }
  } else {
    for (const auto& address : residue_addresses) {
      const mta::MailHost* host = fleet_.find_host(address);
      if (host == nullptr) continue;
      snap.hosts.push_back(snapshot::capture_host_state(address, *host));
    }
  }
  if (config_.trace != nullptr) snap.trace = config_.trace->frames();
  if (config_.metrics != nullptr) {
    snap.has_metrics = true;
    snap.metrics = *config_.metrics;
  }
  return snap;
}

Study::State Study::restore(const snapshot::StudySnapshot& snap) {
  const snapshot::SnapshotMeta expected = meta();
  const auto mismatch = [](const std::string& what, const std::string& got,
                           const std::string& want) -> snapshot::SnapshotError {
    return snapshot::SnapshotError("meta mismatch: snapshot " + what + " is " +
                                   got + ", this run expects " + want);
  };
  if (snap.meta.kind != expected.kind) {
    throw mismatch("kind", to_string(snap.meta.kind), to_string(expected.kind));
  }
  if (snap.meta.fleet_seed != expected.fleet_seed) {
    throw mismatch("fleet seed", std::to_string(snap.meta.fleet_seed),
                   std::to_string(expected.fleet_seed));
  }
  if (snap.meta.scale != expected.scale) {
    throw mismatch("scale", std::to_string(snap.meta.scale),
                   std::to_string(expected.scale));
  }
  if (snap.meta.study_seed != expected.study_seed) {
    throw mismatch("study seed", std::to_string(snap.meta.study_seed),
                   std::to_string(expected.study_seed));
  }
  if (snap.meta.fault_seed != expected.fault_seed) {
    throw mismatch("fault seed", std::to_string(snap.meta.fault_seed),
                   std::to_string(expected.fault_seed));
  }
  if (snap.meta.fault_rate != expected.fault_rate) {
    throw mismatch("fault rate", std::to_string(snap.meta.fault_rate),
                   std::to_string(expected.fault_rate));
  }
  if (snap.meta.tracing != expected.tracing) {
    throw mismatch("tracing", snap.meta.tracing ? "on" : "off",
                   expected.tracing ? "on" : "off");
  }
  if (snap.rounds_done > round_times_.size()) {
    throw snapshot::SnapshotError(
        "snapshot has " + std::to_string(snap.rounds_done) +
        " completed rounds, the study only has " +
        std::to_string(round_times_.size()));
  }

  State state;
  state.report.initial = snap.initial;
  derive_from_initial(state);

  if (snap.series.size() != state.vulnerable_addresses.size()) {
    throw snapshot::SnapshotError(
        "snapshot carries " + std::to_string(snap.series.size()) +
        " observation series for " +
        std::to_string(state.vulnerable_addresses.size()) +
        " vulnerable addresses");
  }

  // Loop-carried core, overwriting what derive_from_initial seeded fresh.
  state.loss_rng.set_state(snap.loss_rng);
  state.next_round = snap.rounds_done;
  state.report.degradation = snap.degradation;
  state.report.remeasurable_resolved_vulnerable =
      snap.remeasurable_resolved_vulnerable;
  state.report.remeasurable_resolved_compliant =
      snap.remeasurable_resolved_compliant;
  state.remeasurable = snap.remeasurable;

  // Replay the label allocator to its serialised cursor: suite labels draw
  // from a dedup-checked RNG stream, so position is reproduced by issuing
  // (and discarding) the same number of suites.
  for (std::uint64_t i = 0; i < snap.suites_issued; ++i) {
    state.labels->new_suite();
  }
  state.suites_issued = snap.suites_issued;

  for (std::size_t i = 0; i < state.vulnerable_addresses.size(); ++i) {
    const util::IpAddress& address = state.vulnerable_addresses[i];
    const auto& done = snap.series[i];
    if (done.size() != snap.rounds_done) {
      throw snapshot::SnapshotError(
          "observation series for " + address.to_string() + " has " +
          std::to_string(done.size()) + " rounds, header says " +
          std::to_string(snap.rounds_done));
    }
    Series& series = state.series.at(address);
    std::copy(done.begin(), done.end(), series.begin());
  }

  // Re-apply the host-side flags the completed rounds produced on the
  // (freshly rebuilt, hence pristine) fleet.
  for (const auto& address : snap.patched) {
    mta::MailHost* host = fleet_.find_host(address);
    if (host == nullptr) {
      throw snapshot::SnapshotError("patched address " + address.to_string() +
                                    " has no host in this fleet");
    }
    if (!host->is_patched()) host->apply_patch();
  }
  for (const auto& address : snap.blacklisted) {
    mta::MailHost* host = fleet_.find_host(address);
    if (host == nullptr) {
      throw snapshot::SnapshotError("blacklisted address " +
                                    address.to_string() +
                                    " has no host in this fleet");
    }
    state.blacklisted.insert(address);
    host->set_blacklisted(true);
  }
  for (const auto& hs : snap.hosts) {
    mta::MailHost* host = fleet_.find_host(hs.address);
    if (host == nullptr) {
      throw snapshot::SnapshotError("captured host " + hs.address.to_string() +
                                    " does not exist in this fleet");
    }
    std::map<util::IpAddress, util::SimTime> greylist;
    for (const auto& [client_text, first_seen] : hs.greylist_seen) {
      const auto client = util::IpAddress::parse(client_text);
      if (!client.has_value()) {
        throw snapshot::SnapshotError("captured greylist entry \"" +
                                      client_text +
                                      "\" is not a valid address");
      }
      greylist.emplace(*client, first_seen);
    }
    host->set_greylist_seen(std::move(greylist));
    host->set_flaky_rng_state(hs.flaky_rng);
  }

  if (fleet_.clock().now() > snap.clock_now) {
    throw snapshot::SnapshotError(
        "fleet clock is already past the snapshot time (the fleet must be "
        "freshly constructed before restore)");
  }
  fleet_.clock().advance_to(snap.clock_now);

  // The wire trace is part of the byte-identical output contract: reload the
  // frames recorded up to the boundary so the resumed run appends to them.
  if (config_.trace != nullptr) {
    config_.trace->clear();
    for (const auto& frame : snap.trace) config_.trace->record(frame);
  }

  // Same contract for metrics: a resumed run must continue accumulating on
  // top of exactly the state the halted run checkpointed.
  if (snap.has_metrics != (config_.metrics != nullptr)) {
    throw snapshot::SnapshotError(
        snap.has_metrics
            ? "snapshot carries metrics, this run has them disabled"
            : "snapshot has no metrics, this run expects them");
  }
  if (config_.metrics != nullptr) {
    *config_.metrics = snap.metrics;
  }
  return state;
}

StudyReport::DomainRoundCounts Study::domain_counts_at(
    const StudyReport& report, const population::Fleet& fleet,
    std::size_t round, Cohort cohort) {
  StudyReport::DomainRoundCounts counts;
  const auto& domains = fleet.domains();
  for (const auto& track : report.tracks) {
    if (!in_cohort(domains[track.domain_index], cohort)) continue;
    ++counts.total;

    bool all_conclusive = true;
    bool any_vulnerable = false;
    bool all_patched = true;
    bool any_known = false;
    for (const auto& address : track.vulnerable_addresses) {
      const InferredState state = report.inference.states(address).at(round);
      if (state == InferredState::Unknown) {
        all_conclusive = false;
        all_patched = false;
        continue;
      }
      any_known = true;
      if (state == InferredState::InferredVulnerable ||
          state == InferredState::InferredPatched) {
        all_conclusive = false;
      }
      if (is_vulnerable(state)) {
        any_vulnerable = true;
        all_patched = false;
      }
    }
    if (all_conclusive && any_known) ++counts.measured;
    if (any_vulnerable) {
      ++counts.inferable;
      ++counts.vulnerable;
    } else if (any_known && all_patched) {
      ++counts.inferable;
      ++counts.patched;
    }
  }
  return counts;
}

}  // namespace spfail::longitudinal
