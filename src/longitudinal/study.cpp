#include "longitudinal/study.hpp"

#include <algorithm>

#include "population/paper_constants.hpp"
#include "scan/prober.hpp"

namespace spfail::longitudinal {

namespace {

namespace paper = population::paper;

std::vector<util::SimTime> measurement_round_times() {
  std::vector<util::SimTime> times;
  for (util::SimTime t = paper::kLongitudinalStart;
       t <= paper::kMeasurementsPaused; t += paper::kMeasurementCadence) {
    times.push_back(t);
  }
  for (util::SimTime t = paper::kMeasurementsResumed;
       t <= paper::kFinalMeasurement; t += paper::kMeasurementCadence) {
    times.push_back(t);
  }
  return times;
}

}  // namespace

std::string to_string(Cohort cohort) {
  switch (cohort) {
    case Cohort::All:
      return "All domains";
    case Cohort::AlexaTopList:
      return "Alexa Top List";
    case Cohort::Alexa1000:
      return "Alexa Top 1000";
    case Cohort::TwoWeekMx:
      return "2-Week MX";
  }
  return "?";
}

Study::Study(population::Fleet& fleet, StudyConfig config)
    : fleet_(fleet), config_(config) {}

bool Study::in_cohort(const population::DomainRecord& domain, Cohort cohort) {
  switch (cohort) {
    case Cohort::All:
      return true;
    case Cohort::AlexaTopList:
      return domain.in_alexa;
    case Cohort::Alexa1000:
      return domain.in_alexa1000;
    case Cohort::TwoWeekMx:
      return domain.in_mx;
  }
  return false;
}

Observation Study::observe_address(const util::IpAddress& address,
                                   scan::TestKind kind,
                                   scan::LabelAllocator& labels,
                                   const std::string& suite) {
  mta::MailHost* host = fleet_.find_host(address);
  if (host == nullptr) return Observation::Inconclusive;

  scan::ProberConfig prober_config;
  prober_config.responder = fleet_.responder();
  scan::Prober prober(prober_config, fleet_.dns(), fleet_.clock());

  const dns::Name mail_from = labels.mail_from_domain(labels.new_id(), suite);
  scan::ProbeResult result = prober.probe(
      *host, "host-" + address.to_string(), mail_from, kind);
  if (result.status == scan::ProbeStatus::Greylisted) {
    fleet_.clock().advance_by(paper::kGreylistBackoff);
    result = prober.probe(*host, "host-" + address.to_string(),
                          labels.mail_from_domain(labels.new_id(), suite),
                          kind);
  }
  if (result.status != scan::ProbeStatus::SpfMeasured) {
    return Observation::Inconclusive;
  }
  return result.vulnerable() ? Observation::Vulnerable
                             : Observation::Compliant;
}

StudyReport Study::run() {
  StudyReport report;
  util::Rng rng(config_.seed);
  util::Rng loss_rng = rng.fork("loss");

  // ---- 1. Initial measurement (2021-10-11) ------------------------------
  scan::CampaignConfig campaign_config;
  campaign_config.prober.responder = fleet_.responder();
  campaign_config.label_seed = config_.seed ^ 0xC0FFEE;
  scan::Campaign campaign(campaign_config, fleet_.dns(), fleet_.clock(),
                          fleet_);
  report.initial = campaign.run(fleet_.targets());

  // Collect vulnerable addresses and the test kind that measured them.
  std::map<util::IpAddress, scan::TestKind> working_test;
  std::vector<util::IpAddress> vulnerable_addresses;
  for (const auto& [address, outcome] : report.initial.addresses) {
    if (!outcome.vulnerable()) continue;
    vulnerable_addresses.push_back(address);
    const bool via_nomsg =
        outcome.nomsg.has_value() &&
        outcome.nomsg->status == scan::ProbeStatus::SpfMeasured;
    working_test.emplace(address, via_nomsg ? scan::TestKind::NoMsg
                                            : scan::TestKind::BlankMsg);
  }
  report.initially_vulnerable_addresses = vulnerable_addresses.size();

  // §6.1's re-measurable inconclusives: SPF evaluation visibly started (the
  // policy fetch was logged) but no macro-expansion probe query concluded.
  std::vector<util::IpAddress> remeasurable;
  for (const auto& [address, outcome] : report.initial.addresses) {
    if (outcome.vulnerable() || outcome.conclusive()) continue;
    const bool fetch_seen =
        (outcome.nomsg.has_value() && outcome.nomsg->saw_policy_fetch) ||
        (outcome.blankmsg.has_value() && outcome.blankmsg->saw_policy_fetch);
    if (fetch_seen) remeasurable.push_back(address);
  }
  report.remeasurable_addresses = remeasurable.size();

  // Vulnerable domains and their vulnerable addresses.
  const auto& domains = fleet_.domains();
  for (std::size_t i = 0; i < domains.size(); ++i) {
    const auto& outcome = report.initial.domains[i];
    if (!outcome.vulnerable) continue;
    DomainTrack track;
    track.domain_index = i;
    for (const auto& address : domains[i].addresses) {
      const auto it = report.initial.addresses.find(address);
      if (it != report.initial.addresses.end() && it->second.vulnerable()) {
        track.vulnerable_addresses.push_back(address);
      }
    }
    report.tracks.push_back(std::move(track));
  }
  report.initially_vulnerable_domains = report.tracks.size();

  // ---- 2. Private-notification campaign (sent 2021-11-15) ---------------
  NotificationConfig notification_config = config_.notification;
  notification_config.seed = config_.seed ^ 0xA07E5;
  NotificationCampaign notifications(notification_config);
  for (const auto& track : report.tracks) {
    notifications.add_domain(domains[track.domain_index].name,
                             track.vulnerable_addresses);
  }
  notifications.send();
  report.notification = notifications.stats();

  // ---- 3. Patch decisions per vulnerable address -------------------------
  PatchModelConfig patch_config = config_.patch_model;
  patch_config.seed = config_.seed ^ 0x9A7C4;
  PatchModel patch_model(patch_config);
  std::map<util::IpAddress, PatchDecision> patch_plan;
  for (const auto& address : vulnerable_addresses) {
    const auto& info = fleet_.info(address);
    const mta::MailHost* host = fleet_.find_host(address);
    PatchContext context;
    context.tld = info.tld;
    context.in_mx_set = info.in_mx_set;
    context.provider_pool = info.provider_pool;
    context.domains_hosted = std::max<std::size_t>(1, info.domains_hosted);
    context.named_top_provider =
        info.provider_pool && info.best_rank != 0 && info.best_rank <= 1000 &&
        host != nullptr && !host->profile().rejects_spf_fail &&
        info.domains_hosted <= 3;  // the hand-built §7.5 provider farms
    context.notification_opened =
        notifications.address_operator_opened(address);
    patch_plan.emplace(address, patch_model.decide(context));
  }

  // ---- 4. Longitudinal rounds --------------------------------------------
  report.round_times = measurement_round_times();
  scan::LabelAllocator labels(util::Rng(config_.seed ^ 0x1ABE15),
                              fleet_.responder().base);

  std::map<util::IpAddress, Series> series;
  for (const auto& address : vulnerable_addresses) {
    series[address] = Series(report.round_times.size(),
                             Observation::Inconclusive);
  }
  std::set<util::IpAddress> blacklisted;

  for (std::size_t round = 0; round < report.round_times.size(); ++round) {
    const util::SimTime round_time = report.round_times[round];
    fleet_.clock().advance_to(round_time);
    const std::string suite = labels.new_suite();

    const bool in_window1 = round_time <= paper::kMeasurementsPaused;

    for (const auto& address : vulnerable_addresses) {
      mta::MailHost* host = fleet_.find_host(address);
      if (host == nullptr) continue;

      // Patch events due by this round.
      const PatchDecision& decision = patch_plan.at(address);
      if (decision.will_patch && !host->is_patched() &&
          decision.patch_time <= round_time) {
        host->apply_patch();
      }

      // Loss process: permanent blacklisting plus transient failures. New
      // blacklisting only hits still-vulnerable hosts — patched operators
      // are the attentive ones, and the paper's patched curves stay smooth.
      if (blacklisted.count(address) == 0 && !host->is_patched()) {
        const auto& info = fleet_.info(address);
        const bool high_profile =
            info.best_rank != 0 && info.best_rank <= 1000;
        const double rate = high_profile && in_window1
                                ? config_.top1000_blacklist_rate
                                : config_.blacklist_rate;
        if (loss_rng.bernoulli(rate)) {
          blacklisted.insert(address);
          host->set_blacklisted(true);
        }
      }
      if (blacklisted.count(address) > 0) continue;  // stays Inconclusive
      if (loss_rng.bernoulli(config_.transient_failure_rate)) continue;

      series[address][round] = observe_address(
          address, working_test.at(address), labels, suite);
    }

    // Re-measure the §6.1 inconclusive cohort until each address resolves.
    for (auto it = remeasurable.begin(); it != remeasurable.end();) {
      const Observation observation =
          observe_address(*it, scan::TestKind::BlankMsg, labels, suite);
      if (observation == Observation::Vulnerable) {
        ++report.remeasurable_resolved_vulnerable;
        it = remeasurable.erase(it);
      } else if (observation == Observation::Compliant) {
        ++report.remeasurable_resolved_compliant;
        it = remeasurable.erase(it);
      } else {
        ++it;
      }
    }
  }

  for (auto& [address, observation_series] : series) {
    report.inference.set_series(address, std::move(observation_series));
  }

  // ---- 5. Final snapshot with re-resolved addresses (§7.2) --------------
  fleet_.clock().advance_by(util::kHour);
  const std::string snapshot_suite = labels.new_suite();
  std::map<util::IpAddress, Observation> snapshot;
  for (const auto& address : vulnerable_addresses) {
    mta::MailHost* host = fleet_.find_host(address);
    if (host == nullptr) {
      snapshot[address] = Observation::Inconclusive;
      continue;
    }
    if (host->blacklisted() &&
        loss_rng.bernoulli(config_.snapshot_recovery_rate)) {
      // The domain's MX re-resolved to a fresh front that has never seen the
      // scanner: measurement works again.
      host->set_blacklisted(false);
    }
    snapshot[address] = observe_address(address, working_test.at(address),
                                        labels, snapshot_suite);
  }

  // Final per-domain classification (Fig 2).
  for (auto& track : report.tracks) {
    bool any_vulnerable = false;
    bool all_known_patched = true;
    bool any_known = false;
    for (const auto& address : track.vulnerable_addresses) {
      // Prefer the snapshot; fall back to the last inferred state.
      Observation observation = snapshot.at(address);
      if (observation == Observation::Inconclusive) {
        const auto& states = report.inference.states(address);
        const InferredState last = states.back();
        if (is_vulnerable(last)) {
          observation = Observation::Vulnerable;
        } else if (is_patched(last)) {
          observation = Observation::Compliant;
        }
      }
      switch (observation) {
        case Observation::Vulnerable:
          any_vulnerable = true;
          any_known = true;
          break;
        case Observation::Compliant:
          any_known = true;
          break;
        case Observation::Inconclusive:
          all_known_patched = false;
          break;
      }
    }
    if (any_vulnerable) {
      track.final_status = FinalStatus::Vulnerable;
    } else if (any_known && all_known_patched) {
      track.final_status = FinalStatus::Patched;
    } else {
      track.final_status = FinalStatus::Unknown;
    }
  }

  // ---- 6. Notification funnel outcomes (§7.7) ---------------------------
  for (const auto& group : notifications.groups()) {
    const auto patched_by = [&](util::SimTime deadline) {
      for (const auto& address : group.addresses) {
        const auto& decision = patch_plan.at(address);
        if (!decision.will_patch || decision.patch_time > deadline) {
          return false;
        }
      }
      return true;
    };
    if (group.opened) {
      ++report.opened_groups;
      if (patched_by(paper::kFinalMeasurement)) {
        ++report.opened_eventually_patched;
      }
      if (patched_by(paper::kPublicDisclosure) &&
          !patched_by(paper::kPrivateNotification)) {
        ++report.opened_patched_between_disclosures;
      }
    } else if (!group.delivered) {
      if (patched_by(paper::kPublicDisclosure) &&
          !patched_by(paper::kPrivateNotification)) {
        ++report.bounced_patched_between_disclosures;
      }
    }
  }

  return report;
}

StudyReport::DomainRoundCounts Study::domain_counts_at(
    const StudyReport& report, const population::Fleet& fleet,
    std::size_t round, Cohort cohort) {
  StudyReport::DomainRoundCounts counts;
  const auto& domains = fleet.domains();
  for (const auto& track : report.tracks) {
    if (!in_cohort(domains[track.domain_index], cohort)) continue;
    ++counts.total;

    bool all_conclusive = true;
    bool any_vulnerable = false;
    bool all_patched = true;
    bool any_known = false;
    for (const auto& address : track.vulnerable_addresses) {
      const InferredState state = report.inference.states(address).at(round);
      if (state == InferredState::Unknown) {
        all_conclusive = false;
        all_patched = false;
        continue;
      }
      any_known = true;
      if (state == InferredState::InferredVulnerable ||
          state == InferredState::InferredPatched) {
        all_conclusive = false;
      }
      if (is_vulnerable(state)) {
        any_vulnerable = true;
        all_patched = false;
      }
    }
    if (all_conclusive && any_known) ++counts.measured;
    if (any_vulnerable) {
      ++counts.inferable;
      ++counts.vulnerable;
    } else if (any_known && all_patched) {
      ++counts.inferable;
      ++counts.patched;
    }
  }
  return counts;
}

}  // namespace spfail::longitudinal
