#include "longitudinal/study.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "population/paper_constants.hpp"
#include "scan/prober.hpp"
#include "util/thread_pool.hpp"

namespace spfail::longitudinal {

namespace {

namespace paper = population::paper;

std::vector<util::SimTime> measurement_round_times() {
  std::vector<util::SimTime> times;
  for (util::SimTime t = paper::kLongitudinalStart;
       t <= paper::kMeasurementsPaused; t += paper::kMeasurementCadence) {
    times.push_back(t);
  }
  for (util::SimTime t = paper::kMeasurementsResumed;
       t <= paper::kFinalMeasurement; t += paper::kMeasurementCadence) {
    times.push_back(t);
  }
  return times;
}

// One scheduled observation; built serially (so the loss-process RNG draws
// stay in sorted address order) and executed by whichever shard owns it.
struct ObserveJob {
  util::IpAddress address;
  scan::TestKind kind = scan::TestKind::NoMsg;
  std::uint64_t slot = 0;
};

}  // namespace

std::string to_string(Cohort cohort) {
  switch (cohort) {
    case Cohort::All:
      return "All domains";
    case Cohort::AlexaTopList:
      return "Alexa Top List";
    case Cohort::Alexa1000:
      return "Alexa Top 1000";
    case Cohort::TwoWeekMx:
      return "2-Week MX";
  }
  return "?";
}

Study::Study(population::Fleet& fleet, StudyConfig config)
    : fleet_(fleet), config_(config), plan_(config_.faults) {
  faults::RetryConfig retry = config_.retry;
  if (retry.max_attempts == 0) {
    // The legacy schedule: one greylist retry after the paper's backoff.
    retry.max_attempts = 2;
    retry.base_backoff = paper::kGreylistBackoff;
    retry.multiplier = 1.0;
    retry.max_backoff = paper::kGreylistBackoff;
    retry.jitter = 0.0;
  }
  retry_ = faults::RetryPolicy(retry);
}

bool Study::in_cohort(const population::DomainRecord& domain, Cohort cohort) {
  switch (cohort) {
    case Cohort::All:
      return true;
    case Cohort::AlexaTopList:
      return domain.in_alexa;
    case Cohort::Alexa1000:
      return domain.in_alexa1000;
    case Cohort::TwoWeekMx:
      return domain.in_mx;
  }
  return false;
}

Observation Study::observe_address(scan::Prober& prober,
                                   const util::IpAddress& address,
                                   scan::TestKind kind,
                                   const scan::LabelAllocator& labels,
                                   const std::string& suite,
                                   std::uint64_t slot,
                                   std::uint64_t fault_round,
                                   faults::DegradationReport& deg) {
  mta::MailHost* host = fleet_.find_host(address);
  if (host == nullptr) return Observation::Inconclusive;

  const std::string recipient = "host-" + address.to_string();
  scan::ProbeResult result;
  int attempts = 0;
  bool saw_transient = false;
  for (;;) {
    const faults::FaultDecision fault = plan_.probe_decision(
        address, fault_round, static_cast<std::uint64_t>(attempts));
    switch (fault.kind) {
      case faults::FaultKind::SmtpTempfail:
        ++deg.injected_tempfail;
        break;
      case faults::FaultKind::ConnectionDrop:
        ++deg.injected_drop;
        break;
      case faults::FaultKind::LatencySpike:
        ++deg.injected_latency;
        deg.latency_injected += fault.latency;
        break;
      default:
        break;
    }
    const std::uint64_t label_slot = attempts == 0 ? slot : slot + 1;
    ++attempts;
    ++deg.probe_attempts;
    result = prober.probe(*host, recipient,
                          labels.indexed_mail_from(label_slot, suite), kind,
                          fault);
    if (!scan::is_transient(result.status)) break;
    saw_transient = true;
    if (!retry_.allow_retry(attempts, /*budget_left=*/1)) break;
    ++deg.retries;
    fleet_.clock().advance_by(retry_.backoff(address, fault_round,
                                             attempts - 1));
  }
  if (saw_transient) {
    ++deg.transient_addresses;
    if (scan::is_transient(result.status)) {
      ++deg.exhausted;
    } else {
      ++deg.recovered;
    }
  }
  if (result.status != scan::ProbeStatus::SpfMeasured) {
    return Observation::Inconclusive;
  }
  return result.vulnerable() ? Observation::Vulnerable
                             : Observation::Compliant;
}

StudyReport Study::run() {
  StudyReport report;
  util::Rng rng(config_.seed);
  util::Rng loss_rng = rng.fork("loss");

  // One pool for the whole study: the initial campaign, every longitudinal
  // round, and the snapshot all shard their work lists over it.
  util::ThreadPool pool(config_.threads);

  // ---- 1. Initial measurement (2021-10-11) ------------------------------
  scan::CampaignConfig campaign_config;
  campaign_config.prober.responder = fleet_.responder();
  campaign_config.label_seed = config_.seed ^ 0xC0FFEE;
  campaign_config.pool = &pool;
  campaign_config.faults = config_.faults;
  campaign_config.retry = config_.retry;
  campaign_config.trace = config_.trace;
  scan::Campaign campaign(campaign_config, fleet_.dns(), fleet_.clock(),
                          fleet_);
  report.initial = campaign.run(fleet_.targets());
  report.degradation.merge(report.initial.degradation);

  // Everything downstream walks outcomes in ascending address order: label
  // slots, RNG draw order, and report assembly all key off these positions.
  const std::vector<const scan::AddressOutcome*> initial_sorted =
      report.initial.sorted_outcomes();

  // Collect vulnerable addresses and the test kind that measured them.
  std::unordered_map<util::IpAddress, scan::TestKind, util::IpAddressHash>
      working_test;
  working_test.reserve(initial_sorted.size());
  std::vector<util::IpAddress> vulnerable_addresses;
  for (const scan::AddressOutcome* outcome : initial_sorted) {
    if (!outcome->vulnerable()) continue;
    vulnerable_addresses.push_back(outcome->address);
    const bool via_nomsg =
        outcome->nomsg.has_value() &&
        outcome->nomsg->status == scan::ProbeStatus::SpfMeasured;
    working_test.emplace(outcome->address, via_nomsg
                                               ? scan::TestKind::NoMsg
                                               : scan::TestKind::BlankMsg);
  }
  report.initially_vulnerable_addresses = vulnerable_addresses.size();

  // §6.1's re-measurable inconclusives: SPF evaluation visibly started (the
  // policy fetch was logged) but no macro-expansion probe query concluded.
  // Each carries its stable label slot — master indices continue past the
  // vulnerable block so slots stay unique within a suite.
  std::vector<std::pair<util::IpAddress, std::uint64_t>> remeasurable;
  for (const scan::AddressOutcome* outcome : initial_sorted) {
    if (outcome->vulnerable() || outcome->conclusive()) continue;
    const bool fetch_seen =
        (outcome->nomsg.has_value() && outcome->nomsg->saw_policy_fetch) ||
        (outcome->blankmsg.has_value() &&
         outcome->blankmsg->saw_policy_fetch);
    if (fetch_seen) {
      const std::uint64_t master_index =
          vulnerable_addresses.size() + remeasurable.size();
      remeasurable.emplace_back(outcome->address, 2 * master_index);
    }
  }
  report.remeasurable_addresses = remeasurable.size();

  // Vulnerable domains and their vulnerable addresses.
  const auto& domains = fleet_.domains();
  for (std::size_t i = 0; i < domains.size(); ++i) {
    const auto& outcome = report.initial.domains[i];
    if (!outcome.vulnerable) continue;
    DomainTrack track;
    track.domain_index = i;
    for (const auto& address : domains[i].addresses) {
      const auto it = report.initial.addresses.find(address);
      if (it != report.initial.addresses.end() && it->second.vulnerable()) {
        track.vulnerable_addresses.push_back(address);
      }
    }
    report.tracks.push_back(std::move(track));
  }
  report.initially_vulnerable_domains = report.tracks.size();

  // ---- 2. Private-notification campaign (sent 2021-11-15) ---------------
  NotificationConfig notification_config = config_.notification;
  notification_config.seed = config_.seed ^ 0xA07E5;
  NotificationCampaign notifications(notification_config);
  for (const auto& track : report.tracks) {
    notifications.add_domain(domains[track.domain_index].name,
                             track.vulnerable_addresses);
  }
  notifications.send();
  report.notification = notifications.stats();

  // ---- 3. Patch decisions per vulnerable address -------------------------
  PatchModelConfig patch_config = config_.patch_model;
  patch_config.seed = config_.seed ^ 0x9A7C4;
  PatchModel patch_model(patch_config);
  std::unordered_map<util::IpAddress, PatchDecision, util::IpAddressHash>
      patch_plan;
  patch_plan.reserve(vulnerable_addresses.size());
  for (const auto& address : vulnerable_addresses) {
    const auto& info = fleet_.info(address);
    const mta::MailHost* host = fleet_.find_host(address);
    PatchContext context;
    context.tld = info.tld;
    context.in_mx_set = info.in_mx_set;
    context.provider_pool = info.provider_pool;
    context.domains_hosted = std::max<std::size_t>(1, info.domains_hosted);
    context.named_top_provider =
        info.provider_pool && info.best_rank != 0 && info.best_rank <= 1000 &&
        host != nullptr && !host->profile().rejects_spf_fail &&
        info.domains_hosted <= 3;  // the hand-built §7.5 provider farms
    context.notification_opened =
        notifications.address_operator_opened(address);
    patch_plan.emplace(address, patch_model.decide(context));
  }

  // ---- 4. Longitudinal rounds --------------------------------------------
  report.round_times = measurement_round_times();
  scan::LabelAllocator labels(util::Rng(config_.seed ^ 0x1ABE15),
                              fleet_.responder().base);

  std::unordered_map<util::IpAddress, Series, util::IpAddressHash> series;
  series.reserve(vulnerable_addresses.size());
  for (const auto& address : vulnerable_addresses) {
    series.emplace(address, Series(report.round_times.size(),
                                   Observation::Inconclusive));
  }
  std::unordered_set<util::IpAddress, util::IpAddressHash> blacklisted;
  blacklisted.reserve(vulnerable_addresses.size());

  // Shard a job batch over the pool. Each worker runs a private clock lane
  // and a private query-log lane, plus one prober reused across its slice;
  // the merge folds clock offsets (their sum is exactly the serial advance)
  // and splices lane logs back in shard — i.e. address — order.
  const auto run_batch = [&](const std::vector<ObserveJob>& jobs,
                             std::vector<Observation>& results,
                             const std::string& suite,
                             std::uint64_t fault_round) {
    results.assign(jobs.size(), Observation::Inconclusive);
    if (jobs.empty()) return;
    const std::size_t shard_count = pool.shard_count(jobs.size());
    std::vector<dns::QueryLog> logs(shard_count);
    std::vector<util::SimTime> advances(shard_count, 0);
    std::vector<faults::DegradationReport> degs(shard_count);
    std::vector<net::WireTrace> traces(shard_count);
    pool.parallel_for_shards(
        jobs.size(),
        [&](std::size_t shard, std::size_t begin, std::size_t end) {
          util::SimClock::Lane clock_lane(fleet_.clock());
          dns::AuthoritativeServer::LogLane log_lane(fleet_.dns(),
                                                     logs[shard]);
          scan::ProberConfig prober_config;
          prober_config.responder = fleet_.responder();
          net::Transport transport(fleet_.clock());
          scan::Prober prober(prober_config, fleet_.dns(), transport);
          for (std::size_t i = begin; i < end; ++i) {
            std::optional<net::WireTrace::Lane> lane;
            if (config_.trace != nullptr) {
              lane.emplace(traces[shard], jobs[i].slot, fleet_.clock());
            }
            results[i] = observe_address(prober, jobs[i].address,
                                         jobs[i].kind, labels, suite,
                                         jobs[i].slot, fault_round,
                                         degs[shard]);
          }
          advances[shard] = clock_lane.offset();
        });
    util::SimTime total_advance = 0;
    for (const util::SimTime advance : advances) total_advance += advance;
    fleet_.clock().advance_by(total_advance);
    for (auto& log : logs) {
      fleet_.dns().query_log().splice(std::move(log));
    }
    for (const auto& deg : degs) report.degradation.merge(deg);
    if (config_.trace != nullptr) {
      // Shard order is job — i.e. master — order, the serial sequence.
      for (auto& trace : traces) config_.trace->splice(std::move(trace));
    }
  };

  std::vector<ObserveJob> jobs;
  std::vector<Observation> results;
  for (std::size_t round = 0; round < report.round_times.size(); ++round) {
    const util::SimTime round_time = report.round_times[round];
    fleet_.clock().advance_to(round_time);
    const std::string suite = labels.new_suite();

    const bool in_window1 = round_time <= paper::kMeasurementsPaused;

    // Serial pre-pass in address order: patch events and the loss process
    // draw here, so the RNG sequence is independent of sharding; survivors
    // become this round's job list.
    jobs.clear();
    jobs.reserve(vulnerable_addresses.size());
    for (std::size_t i = 0; i < vulnerable_addresses.size(); ++i) {
      const util::IpAddress& address = vulnerable_addresses[i];
      mta::MailHost* host = fleet_.find_host(address);
      if (host == nullptr) continue;

      // Patch events due by this round.
      const PatchDecision& decision = patch_plan.at(address);
      if (decision.will_patch && !host->is_patched() &&
          decision.patch_time <= round_time) {
        host->apply_patch();
      }

      // Loss process: permanent blacklisting plus transient failures. New
      // blacklisting only hits still-vulnerable hosts — patched operators
      // are the attentive ones, and the paper's patched curves stay smooth.
      if (blacklisted.count(address) == 0 && !host->is_patched()) {
        const auto& info = fleet_.info(address);
        const bool high_profile =
            info.best_rank != 0 && info.best_rank <= 1000;
        const double rate = high_profile && in_window1
                                ? config_.top1000_blacklist_rate
                                : config_.blacklist_rate;
        if (loss_rng.bernoulli(rate)) {
          blacklisted.insert(address);
          host->set_blacklisted(true);
        }
      }
      if (blacklisted.count(address) > 0) continue;  // stays Inconclusive
      if (loss_rng.bernoulli(config_.transient_failure_rate)) continue;

      jobs.push_back(ObserveJob{address, working_test.at(address), 2 * i});
    }
    // Fault rounds: the initial campaign owns round 0; each longitudinal
    // round salts the plan with 1 + its index (the two batches below cover
    // disjoint address sets, so they can share the round key).
    run_batch(jobs, results, suite, 1 + round);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      series.at(jobs[j].address)[round] = results[j];
    }

    // Re-measure the §6.1 inconclusive cohort until each address resolves.
    jobs.clear();
    jobs.reserve(remeasurable.size());
    for (const auto& [address, slot] : remeasurable) {
      jobs.push_back(ObserveJob{address, scan::TestKind::BlankMsg, slot});
    }
    run_batch(jobs, results, suite, 1 + round);
    std::size_t kept = 0;
    for (std::size_t j = 0; j < remeasurable.size(); ++j) {
      if (results[j] == Observation::Vulnerable) {
        ++report.remeasurable_resolved_vulnerable;
      } else if (results[j] == Observation::Compliant) {
        ++report.remeasurable_resolved_compliant;
      } else {
        remeasurable[kept++] = remeasurable[j];
      }
    }
    remeasurable.resize(kept);
  }

  for (const auto& address : vulnerable_addresses) {
    report.inference.set_series(address, std::move(series.at(address)));
  }

  // ---- 5. Final snapshot with re-resolved addresses (§7.2) --------------
  fleet_.clock().advance_by(util::kHour);
  const std::string snapshot_suite = labels.new_suite();
  std::unordered_map<util::IpAddress, Observation, util::IpAddressHash>
      snapshot;
  snapshot.reserve(vulnerable_addresses.size());
  jobs.clear();
  jobs.reserve(vulnerable_addresses.size());
  for (std::size_t i = 0; i < vulnerable_addresses.size(); ++i) {
    const util::IpAddress& address = vulnerable_addresses[i];
    mta::MailHost* host = fleet_.find_host(address);
    if (host == nullptr) {
      snapshot.emplace(address, Observation::Inconclusive);
      continue;
    }
    if (host->blacklisted() &&
        loss_rng.bernoulli(config_.snapshot_recovery_rate)) {
      // The domain's MX re-resolved to a fresh front that has never seen the
      // scanner: measurement works again.
      host->set_blacklisted(false);
    }
    jobs.push_back(ObserveJob{address, working_test.at(address), 2 * i});
  }
  run_batch(jobs, results, snapshot_suite, 1 + report.round_times.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    snapshot.emplace(jobs[j].address, results[j]);
  }

  // Final per-domain classification (Fig 2).
  for (auto& track : report.tracks) {
    bool any_vulnerable = false;
    bool all_known_patched = true;
    bool any_known = false;
    for (const auto& address : track.vulnerable_addresses) {
      // Prefer the snapshot; fall back to the last inferred state.
      Observation observation = snapshot.at(address);
      if (observation == Observation::Inconclusive) {
        const auto& states = report.inference.states(address);
        const InferredState last = states.back();
        if (is_vulnerable(last)) {
          observation = Observation::Vulnerable;
        } else if (is_patched(last)) {
          observation = Observation::Compliant;
        }
      }
      switch (observation) {
        case Observation::Vulnerable:
          any_vulnerable = true;
          any_known = true;
          break;
        case Observation::Compliant:
          any_known = true;
          break;
        case Observation::Inconclusive:
          all_known_patched = false;
          break;
      }
    }
    if (any_vulnerable) {
      track.final_status = FinalStatus::Vulnerable;
    } else if (any_known && all_known_patched) {
      track.final_status = FinalStatus::Patched;
    } else {
      track.final_status = FinalStatus::Unknown;
    }
  }

  // ---- 6. Notification funnel outcomes (§7.7) ---------------------------
  for (const auto& group : notifications.groups()) {
    const auto patched_by = [&](util::SimTime deadline) {
      for (const auto& address : group.addresses) {
        const auto& decision = patch_plan.at(address);
        if (!decision.will_patch || decision.patch_time > deadline) {
          return false;
        }
      }
      return true;
    };
    if (group.opened) {
      ++report.opened_groups;
      if (patched_by(paper::kFinalMeasurement)) {
        ++report.opened_eventually_patched;
      }
      if (patched_by(paper::kPublicDisclosure) &&
          !patched_by(paper::kPrivateNotification)) {
        ++report.opened_patched_between_disclosures;
      }
    } else if (!group.delivered) {
      if (patched_by(paper::kPublicDisclosure) &&
          !patched_by(paper::kPrivateNotification)) {
        ++report.bounced_patched_between_disclosures;
      }
    }
  }

  return report;
}

StudyReport::DomainRoundCounts Study::domain_counts_at(
    const StudyReport& report, const population::Fleet& fleet,
    std::size_t round, Cohort cohort) {
  StudyReport::DomainRoundCounts counts;
  const auto& domains = fleet.domains();
  for (const auto& track : report.tracks) {
    if (!in_cohort(domains[track.domain_index], cohort)) continue;
    ++counts.total;

    bool all_conclusive = true;
    bool any_vulnerable = false;
    bool all_patched = true;
    bool any_known = false;
    for (const auto& address : track.vulnerable_addresses) {
      const InferredState state = report.inference.states(address).at(round);
      if (state == InferredState::Unknown) {
        all_conclusive = false;
        all_patched = false;
        continue;
      }
      any_known = true;
      if (state == InferredState::InferredVulnerable ||
          state == InferredState::InferredPatched) {
        all_conclusive = false;
      }
      if (is_vulnerable(state)) {
        any_vulnerable = true;
        all_patched = false;
      }
    }
    if (all_conclusive && any_known) ++counts.measured;
    if (any_vulnerable) {
      ++counts.inferable;
      ++counts.vulnerable;
    } else if (any_known && all_patched) {
      ++counts.inferable;
      ++counts.patched;
    }
  }
  return counts;
}

}  // namespace spfail::longitudinal
