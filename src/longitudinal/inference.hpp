// The §7.6 inference rules over longitudinal observations.
//
// Not every address yields a conclusive result in every round. The paper
// fills gaps with two monotonicity rules grounded in the assumption that MTAs
// do not regress after patching:
//   1. an address measured VULNERABLE at time T is inferred vulnerable for
//      every round from the beginning of measurements through T;
//   2. an address measured PATCHED (compliant) at time T is inferred patched
//      for every round from T through the end of measurements.
// Rounds outside both spans stay INCONCLUSIVE.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/clock.hpp"
#include "util/ip.hpp"

namespace spfail::longitudinal {

enum class Observation {
  Vulnerable,    // conclusive: fingerprint seen
  Compliant,     // conclusive: RFC-compliant expansion seen (i.e. patched)
  Inconclusive,  // no conclusive result this round
};

std::string to_string(Observation observation);

enum class InferredState {
  MeasuredVulnerable,
  MeasuredPatched,
  InferredVulnerable,  // gap filled by rule 1
  InferredPatched,     // gap filled by rule 2
  Unknown,             // outside both inference spans
};

bool is_vulnerable(InferredState state);
bool is_patched(InferredState state);
bool is_conclusive_or_inferred(InferredState state);

// One address's observation series, indexed by round.
using Series = std::vector<Observation>;

// Apply the two rules to one series. The output has the same length.
std::vector<InferredState> infer(const Series& series);

// A convenience aggregate over many addresses.
class InferenceTable {
 public:
  void set_series(const util::IpAddress& address, Series series);
  const std::vector<InferredState>& states(const util::IpAddress& address) const;

  std::size_t rounds() const noexcept { return rounds_; }
  std::size_t addresses() const noexcept { return inferred_.size(); }

  // Counts at one round index across all addresses.
  struct RoundCounts {
    std::size_t measured_vulnerable = 0;
    std::size_t measured_patched = 0;
    std::size_t inferred_vulnerable = 0;
    std::size_t inferred_patched = 0;
    std::size_t unknown = 0;

    std::size_t measured() const {
      return measured_vulnerable + measured_patched;
    }
    std::size_t inferable() const {
      return measured() + inferred_vulnerable + inferred_patched;
    }
    std::size_t vulnerable() const {
      return measured_vulnerable + inferred_vulnerable;
    }
    std::size_t patched() const {
      return measured_patched + inferred_patched;
    }
  };
  RoundCounts counts_at(std::size_t round) const;

 private:
  std::size_t rounds_ = 0;
  std::map<util::IpAddress, std::vector<InferredState>> inferred_;
};

}  // namespace spfail::longitudinal
