// Package-manager response timeline (paper §7.8, Table 6).
//
// Two reference CVEs: CVE-2021-20314 (Jeitner et al.'s stack overflow,
// disclosed 2021-08-11) and CVE-2021-33912/33913 (this paper's heap
// overflows, disclosed 2022-01-19). Several package managers picked up the
// authors' fixes while packaging the *earlier* CVE's patch, which Table 6
// marks with an asterisk ("0*").
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "util/clock.hpp"

namespace spfail::longitudinal {

inline constexpr util::SimTime kCve20314Disclosure =
    util::at_midnight(2021, 8, 11);
inline constexpr util::SimTime kCve33912Disclosure =
    util::at_midnight(2022, 1, 19);
// The study window ends 2022-02-14; Table 6 renders still-unpatched entries
// as "N+ (Unpatched)" relative to each disclosure.
inline constexpr util::SimTime kTableCutoff = util::at_midnight(2022, 3, 30);

struct PackageManagerRecord {
  std::string_view name;
  std::optional<util::SimTime> patched_20314;
  std::optional<util::SimTime> patched_33912;
  // The 33912/13 fix shipped inside the 20314 package update (the "0*" rows).
  bool fix_bundled_with_earlier = false;
  // Whether the libSPF2 package had an assigned maintainer (§7.8: mostly
  // orphaned, a likely factor in never-patched rows).
  bool package_orphaned = true;
};

std::span<const PackageManagerRecord> package_manager_table();

// Render one Table 6 cell: "0 (2021-08-11)", "42 (2021-09-22)",
// "0* (2021-09-22)", or "230+ (Unpatched)".
std::string patch_latency_cell(const PackageManagerRecord& record,
                               bool for_33912);

}  // namespace spfail::longitudinal
