// The full four-month longitudinal study (paper §5.3, §7).
//
// Orchestrates: the October 11 initial measurement; the private-notification
// campaign; per-address patch decisions; the measurement-loss (blacklisting)
// process; two windows of every-2-days re-measurement; the §7.6 inference
// pass; and the February 2022 snapshot with re-resolved addresses (§7.2).
//
// The run is decomposed at round boundaries so it can be checkpointed
// (DESIGN.md §11): begin() performs everything up to the first longitudinal
// round and returns the loop-carried State, run_round() executes one round,
// finish() runs the snapshot and final roll-ups. run() is the classic
// one-shot composition. capture()/restore() serialise State to/from a
// snapshot::StudySnapshot; a restored run continues byte-identically.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "longitudinal/inference.hpp"
#include "longitudinal/notification.hpp"
#include "longitudinal/patch_model.hpp"
#include "net/wire_trace.hpp"
#include "population/fleet.hpp"
#include "scan/campaign.hpp"
#include "scan/probe_engine.hpp"
#include "scan/shard_runner.hpp"
#include "snapshot/snapshot.hpp"
#include "util/thread_pool.hpp"

namespace spfail::longitudinal {

class DistHooks;

struct StudyConfig {
  std::uint64_t seed = 20211011;
  NotificationConfig notification;
  PatchModelConfig patch_model;

  // Worker threads for the sharded scan engine (initial campaign, the 34
  // longitudinal rounds, final snapshot). 0 resolves SPFAIL_THREADS /
  // hardware concurrency. The StudyReport is bit-identical at any count.
  int threads = 0;
  // Wave fan-out policy for every batch (DESIGN.md §16); threaded into the
  // campaign too. Byte-identical at any policy/steal mode.
  util::SchedulerOptions sched;

  // Loss process (per round, per still-measurable vulnerable address).
  double transient_failure_rate = 0.05;
  double blacklist_rate = 0.004;
  // Top-1000 / provider infrastructure blacklists scanners faster (Fig 8's
  // mid-November losses).
  double top1000_blacklist_rate = 0.05;

  // §7.2: fraction of measurement-lost hosts the snapshot's re-resolved
  // addresses recover (changed IPs shed the scanner blacklist).
  double snapshot_recovery_rate = 0.75;

  // Fault injection for the whole scan apparatus: the initial campaign, the
  // 34 longitudinal rounds, and the snapshot. Rate 0 keeps the study
  // byte-identical to a build without the fault layer. `retry`'s zero
  // sentinel derives the legacy schedule (one greylist retry after the
  // paper's 8-minute backoff).
  faults::FaultConfig faults;
  faults::RetryConfig retry;

  // Structured wire capture for the whole study (initial campaign, every
  // longitudinal batch, the snapshot), appended in execution order. Each
  // observation records under its stable label-slot lane id, so the trace is
  // bit-identical at any thread count. Not owned; null = off.
  net::WireTrace* trace = nullptr;

  // Metrics destination for the whole study (DESIGN.md §12): threaded into
  // the initial campaign and installed as per-shard lanes around every
  // longitudinal batch, merged in shard order; the serial round pre-pass
  // books its own gauges/counters directly. Rides in capture()/restore() so
  // a resumed run's metric output is byte-identical. Not owned; null = off.
  obs::Registry* metrics = nullptr;

  // Distributed execution hooks (DESIGN.md §15): when set, every parallel
  // batch — the initial campaign's waves and each longitudinal observation
  // batch — is handed to the coordinator instead of the thread pool, and
  // host residue capture goes through it too. The serial control plane (loss
  // RNG, breaker, patch events, roll-ups) always stays in this process. Not
  // owned; null = single-process.
  DistHooks* dist = nullptr;
};

// Which domain set a series or total refers to.
enum class Cohort { All, AlexaTopList, Alexa1000, TwoWeekMx };
std::string to_string(Cohort cohort);

// Final Fig-2 style classification of an initially vulnerable domain.
enum class FinalStatus { Patched, Vulnerable, Unknown };

struct DomainTrack {
  std::size_t domain_index = 0;  // into Fleet::domains()
  std::vector<util::IpAddress> vulnerable_addresses;
  FinalStatus final_status = FinalStatus::Unknown;  // after the snapshot
};

struct StudyReport {
  // Initial measurement.
  scan::CampaignReport initial;
  std::size_t initially_vulnerable_addresses = 0;
  std::size_t initially_vulnerable_domains = 0;
  // §6.1: addresses whose initial result was inconclusive but potentially
  // re-measurable (SPF activity started — the policy TXT was fetched — but
  // no conclusive probe query arrived). These join every longitudinal
  // round alongside the vulnerable set (the paper's 721 addresses).
  std::size_t remeasurable_addresses = 0;
  std::size_t remeasurable_resolved_vulnerable = 0;
  std::size_t remeasurable_resolved_compliant = 0;

  // Longitudinal rounds.
  std::vector<util::SimTime> round_times;
  InferenceTable inference;  // per-address, per-round

  // Vulnerable-domain tracking.
  std::vector<DomainTrack> tracks;

  // Study-wide degradation accounting: the initial campaign's report merged
  // with every longitudinal batch and the snapshot.
  faults::DegradationReport degradation;

  // Notification funnel (§7.7).
  NotificationStats notification;
  std::size_t opened_groups = 0;
  std::size_t opened_eventually_patched = 0;
  std::size_t opened_patched_between_disclosures = 0;
  std::size_t bounced_patched_between_disclosures = 0;

  // --- derived series ---

  // Domain-level state at one round (Fig 5/6/7/8 inputs).
  struct DomainRoundCounts {
    std::size_t measured = 0;    // all vulnerable addresses conclusive
    std::size_t inferable = 0;   // status known incl. inference
    std::size_t vulnerable = 0;  // of the inferable
    std::size_t patched = 0;     // of the inferable
    std::size_t total = 0;       // cohort size
  };
};

class Study {
 public:
  Study(population::Fleet& fleet, StudyConfig config = {});

  // One longitudinal observation to run: which address, which test kind, and
  // the address's stable label slot (master index doubled).
  struct ObserveJob {
    util::IpAddress address;
    scan::TestKind kind = scan::TestKind::NoMsg;
    std::uint64_t slot = 0;
  };

  // Round-scoped parameters of one observation batch, decided serially
  // before the batch fans out.
  struct ObserveContext {
    std::string suite;
    std::uint64_t fault_round = 0;
    bool tracing = false;
    bool metrics = false;
  };

  // Everything one observation slice produces; merged like a campaign wave
  // slice (advances sum, logs splice in order, traces splice by lane).
  struct ObserveSliceResult {
    std::vector<Observation> results;  // in job order for the slice
    dns::QueryLog log;
    util::SimTime advance = 0;
    faults::DegradationReport deg;
    net::WireTrace trace;
    obs::Registry metrics;
  };

  // Execute one contiguous observation slice — the exact work of one pool
  // shard. Self-contained (builds its own label allocator from the study
  // seed; indexed_mail_from is a pure function of construction seed + slot),
  // so a dist worker can run it without the coordinator's State.
  ObserveSliceResult run_observe_slice(std::span<const ObserveJob> jobs,
                                       const ObserveContext& ctx);

  // Scheduler-driven variant (DESIGN.md §16): split the slice into batches
  // on `pool` under config_.sched and merge the per-batch results — in batch
  // (job) order — into ONE slice result identical to a serial
  // run_observe_slice call. A dist worker routes its assigned slice through
  // this, so in-worker execution also exercises the work-stealing scheduler.
  ObserveSliceResult run_observe_slice_scheduled(
      std::span<const ObserveJob> jobs, const ObserveContext& ctx,
      util::ThreadPool& pool);

  // Everything the study loop carries between round boundaries. Built by
  // begin() or restore(); advanced by run_round(); consumed by finish().
  // The derived members (vulnerable set, notifications, patch plan, tracks)
  // are pure functions of report.initial, so capture() serialises only the
  // loop-carried core and restore() recomputes the rest.
  struct State {
    StudyReport report;
    util::Rng loss_rng{0};
    std::size_t next_round = 0;  // == completed longitudinal rounds

    std::vector<util::IpAddress> vulnerable_addresses;  // ascending order
    std::unordered_map<util::IpAddress, scan::TestKind, util::IpAddressHash>
        working_test;
    std::vector<std::pair<util::IpAddress, std::uint64_t>> remeasurable;
    std::unordered_map<util::IpAddress, PatchDecision, util::IpAddressHash>
        patch_plan;
    std::optional<NotificationCampaign> notifications;
    std::optional<scan::LabelAllocator> labels;
    std::uint64_t suites_issued = 0;
    std::unordered_map<util::IpAddress, Series, util::IpAddressHash> series;
    std::unordered_set<util::IpAddress, util::IpAddressHash> blacklisted;
    std::unique_ptr<util::ThreadPool> pool;
  };

  // Initial measurement + notification campaign + patch planning; leaves the
  // state poised before longitudinal round 0.
  State begin();

  // Execute longitudinal round state.next_round (a round-time advance, the
  // serial loss/patch pre-pass, the sharded vulnerable batch, and the §6.1
  // re-measurable batch), then step the round counter.
  void run_round(State& state);

  std::size_t total_rounds() const { return round_times_.size(); }

  // The paper's longitudinal round count (the two every-2-days measurement
  // windows), without needing a Study instance — the scenario per-round
  // series and the scan service pace themselves against it.
  static std::size_t standard_round_count();
  bool rounds_remaining(const State& state) const {
    return state.next_round < round_times_.size();
  }

  // The §7.2 snapshot, final classification, and notification-funnel
  // roll-up; consumes the state.
  StudyReport finish(State&& state);

  // Run everything; expensive. Idempotence is not supported — construct a
  // fresh Fleet and Study per run.
  StudyReport run();

  // Serialise the loop-carried state at a round boundary. Legal after
  // begin() and between run_round() calls — never after finish().
  snapshot::StudySnapshot capture(const State& state) const;

  // Rebuild a State from a snapshot taken by an identically configured run
  // (same fleet seed/scale, study seed, fault plan, tracing). The fleet must
  // be freshly constructed. Throws snapshot::SnapshotError on any
  // configuration mismatch or inconsistency.
  State restore(const snapshot::StudySnapshot& snap);

  // The meta block capture() stamps and restore() verifies.
  snapshot::SnapshotMeta meta() const;

  // --- post-run series helpers (valid on the returned report) ---
  static StudyReport::DomainRoundCounts domain_counts_at(
      const StudyReport& report, const population::Fleet& fleet,
      std::size_t round, Cohort cohort);

  static bool in_cohort(const population::DomainRecord& domain, Cohort cohort);

 private:
  // One longitudinal observation of `address`, run on the calling worker's
  // prober via the shared ProbeEngine. `slot` is the address's stable master
  // index doubled: the first attempt uses label slot `slot`, every retry
  // (greylist or injected fault) uses `slot + 1`, so labels never depend on
  // execution order. `fault_round` salts the fault-plan key (1 + round
  // index; the initial campaign owns round 0) and `deg` is the owning
  // shard's degradation accumulator.
  Observation observe_address(scan::Prober& prober,
                              const util::IpAddress& address,
                              scan::TestKind kind,
                              const scan::LabelAllocator& labels,
                              const std::string& suite, std::uint64_t slot,
                              std::uint64_t fault_round,
                              faults::DegradationReport& deg);

  // Shard one job batch over the state's pool (per-worker clock, query-log,
  // degradation, and trace lanes; deterministic merge).
  void run_batch(State& state, const std::vector<ObserveJob>& jobs,
                 std::vector<Observation>& results, const std::string& suite,
                 std::uint64_t fault_round);

  // Recompute everything derivable from state.report.initial: the
  // vulnerable/working-test/re-measurable sets, domain tracks, notification
  // campaign, patch plan, label allocator, series map, and worker pool.
  // Shared by begin() and restore().
  void derive_from_initial(State& state);

  population::Fleet& fleet_;
  StudyConfig config_;
  faults::FaultPlan plan_;
  faults::RetryPolicy retry_;
  scan::ProbeEngine engine_;
  std::vector<util::SimTime> round_times_;
};

// The seam the distributed coordinator implements (DESIGN.md §15). It is a
// campaign ShardRunner plus the two study-specific operations: observation
// batches and host-residue capture (checkpoints need residues that live in
// worker processes). Implementations receive the same Study/Campaign object
// that would have run the work locally and must return slices that merge to
// the identical result.
class DistHooks : public scan::ShardRunner {
 public:
  // Execute a longitudinal observation batch; returned slices concatenate to
  // the job list, in job order.
  virtual std::vector<Study::ObserveSliceResult> run_observe(
      Study& study, std::span<const Study::ObserveJob> jobs,
      const Study::ObserveContext& ctx) = 0;

  // Collect canonical host residue (snapshot::capture_host_state) for the
  // given addresses, in input order; an address with no live host yields no
  // entry for that position — the result marks presence per address.
  virtual std::vector<std::optional<snapshot::StudySnapshot::HostState>>
  capture_hosts(const std::vector<util::IpAddress>& addresses) = 0;
};

}  // namespace spfail::longitudinal
