// Pluggable executor for a campaign's parallel probe waves (DESIGN.md §15).
//
// Campaign::run splits each wave into slices — contiguous, address-ordered
// sub-ranges of the master work list — and by default executes them on a
// thread pool. A ShardRunner replaces that execution step: the distributed
// coordinator implements it by shipping slices to worker processes over
// pipes. The contract is the same the pool satisfies: return one
// WaveSliceResult / RequeueSliceResult per slice, covering the input items
// exactly once, in master (address) order across the returned vector. The
// campaign's merge is agnostic to where the slices ran, which is what makes
// a 1-process run and an N-worker run byte-identical.
#pragma once

#include <span>
#include <vector>

#include "scan/campaign.hpp"

namespace spfail::scan {

class ShardRunner {
 public:
  virtual ~ShardRunner() = default;

  // Execute the two-wave probe pass over `items` (the full master list, in
  // ascending address order). Returned slices concatenate to the item list.
  virtual std::vector<WaveSliceResult> run_wave(
      Campaign& campaign, std::span<const WaveItem> items,
      const WaveContext& ctx) = 0;

  // Execute the inconclusive re-queue pass; `items` carry the current
  // outcomes, returned slices carry the mutated copies in item order.
  virtual std::vector<RequeueSliceResult> run_requeue(
      Campaign& campaign, std::span<const RequeueItem> items,
      const WaveContext& ctx) = 0;
};

}  // namespace spfail::scan
