// Unique measurement labels (paper section 5.1).
//
// Each tested server gets a 4–5 character alphanumeric <id>; each test suite
// gets its own <suite> label. Together they (a) tie every DNS query back to
// the exact server and test that caused it and (b) defeat resolver caches, so
// every lookup reaches the authoritative server.
#pragma once

#include <set>
#include <string>

#include "dns/name.hpp"
#include "util/rng.hpp"

namespace spfail::scan {

class LabelAllocator {
 public:
  LabelAllocator(util::Rng rng, dns::Name base)
      : rng_(std::move(rng)), base_(std::move(base)) {}

  // A fresh suite label (one per measurement round).
  std::string new_suite();

  // A fresh per-target id, unique within this allocator's lifetime.
  std::string new_id();

  // The MAIL FROM domain for a given id under the given suite:
  // <id>.<suite>.<base>.
  dns::Name mail_from_domain(const std::string& id,
                             const std::string& suite) const;

  const dns::Name& base() const noexcept { return base_; }

 private:
  util::Rng rng_;
  dns::Name base_;
  std::set<std::string> issued_ids_;
  std::set<std::string> issued_suites_;
};

}  // namespace spfail::scan
