// Unique measurement labels (paper section 5.1).
//
// Each tested server gets a 4–5 character alphanumeric <id>; each test suite
// gets its own <suite> label. Together they (a) tie every DNS query back to
// the exact server and test that caused it and (b) defeat resolver caches, so
// every lookup reaches the authoritative server.
#pragma once

#include <set>
#include <string>

#include "dns/name.hpp"
#include "util/rng.hpp"

namespace spfail::scan {

class LabelAllocator {
 public:
  LabelAllocator(util::Rng rng, dns::Name base);

  // A fresh suite label (one per measurement round).
  std::string new_suite();

  // A fresh per-target id, unique within this allocator's lifetime.
  std::string new_id();

  // The MAIL FROM domain for a given id under the given suite:
  // <id>.<suite>.<base>.
  dns::Name mail_from_domain(const std::string& id,
                             const std::string& suite) const;

  // --- order-free labels for the sharded scan path ---
  //
  // The serial allocator hands out ids in call order, which would make
  // labels depend on worker scheduling. Sharded scans instead derive the id
  // for work slot `slot` (address index * lanes + attempt) through a keyed
  // bijection of the slot index: any thread computes it without shared
  // state, two slots never collide, and the id looks like the paper's
  // random 5-character alphanumerics. Slots repeat per suite (the suite
  // label disambiguates rounds), and must stay below 2^25 (~33.5M — an
  // order of magnitude above the paper's full-scale address count).
  std::string indexed_id(std::uint64_t slot) const;
  dns::Name indexed_mail_from(std::uint64_t slot,
                              const std::string& suite) const {
    return mail_from_domain(indexed_id(slot), suite);
  }

  const dns::Name& base() const noexcept { return base_; }

 private:
  util::Rng rng_;
  dns::Name base_;
  std::uint64_t index_key_ = 0;  // keys the indexed_id bijection
  std::set<std::string> issued_ids_;
  std::set<std::string> issued_suites_;
};

}  // namespace spfail::scan
