// The SMTP prober: one NoMsg or BlankMsg test against one MTA address
// (paper section 5.1).
//
//   NoMsg   — drive the transaction up to the DATA command, then terminate
//             before transmitting any message. Guarantees nothing is
//             delivered; detects SPF-at-MAIL-FROM validators.
//   BlankMsg — send DATA then immediately the end-of-data marker: an entirely
//             empty message. Detects validators that defer SPF until a
//             message exists.
//
// The verdict is read from the authoritative DNS server's query log: a
// conclusive measurement is an observed macro-expansion probe query under the
// test's unique MAIL FROM domain.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dns/server.hpp"
#include "faults/fault.hpp"
#include "mta/host.hpp"
#include "net/transport.hpp"
#include "scan/labels.hpp"
#include "scan/test_responder.hpp"
#include "spfvuln/fingerprint.hpp"

namespace spfail::scan {

enum class TestKind { NoMsg, BlankMsg };

std::string to_string(TestKind kind);

// How far the SMTP dialog got, and what the DNS log revealed.
enum class ProbeStatus {
  ConnectionRefused,  // TCP connect failed
  SmtpFailure,        // dialog failed before the test could complete
  Greylisted,         // 451 — retry after the host's greylist delay
  TempFailed,         // transient 4xx (421/450/452 class) — retryable
  Dropped,            // connection lost mid-dialog — retryable
  SpfMeasured,        // >=1 macro-expansion probe query observed
  SpfNotMeasured,     // dialog fine, but no SPF activity for our domain
};

std::string to_string(ProbeStatus status);

// Transient statuses the retry engine re-attempts (greylisting, injected
// tempfails, dropped connections). Everything else is terminal for a round.
constexpr bool is_transient(ProbeStatus status) noexcept {
  return status == ProbeStatus::Greylisted ||
         status == ProbeStatus::TempFailed || status == ProbeStatus::Dropped;
}

struct ProbeResult {
  TestKind kind = TestKind::NoMsg;
  ProbeStatus status = ProbeStatus::SmtpFailure;
  util::IpAddress target;
  dns::Name mail_from_domain;

  // Every distinct behaviour observed (multi-stack hosts show several).
  std::set<spfvuln::SpfBehavior> behaviors;

  // Whether the policy TXT fetch itself was seen (SPF started).
  bool saw_policy_fetch = false;
  // SMTP reply code that ended the dialog (0 if the dialog completed).
  int failing_code = 0;
  // The recipient username that was finally accepted (empty if none).
  std::string accepted_username;
  // The fault injected into this attempt (FaultKind::None when clean).
  faults::FaultKind injected = faults::FaultKind::None;

  bool vulnerable() const {
    return behaviors.count(spfvuln::SpfBehavior::VulnerableLibspf2) > 0;
  }
  bool conclusive() const { return status == ProbeStatus::SpfMeasured; }
};

struct ProberConfig {
  TestResponderConfig responder;
  util::IpAddress scanner_address = util::IpAddress::v4(198, 51, 100, 10);
  std::string helo_identity = "scanner.spf-test.dns-lab.org";
};

class Prober {
 public:
  // `server` is the authoritative server whose query log we read;
  // `transport` carries the SMTP dialog (charging the per-frame time cost,
  // applying fault decisions, and recording wire frames).
  Prober(ProberConfig config, dns::AuthoritativeServer& server,
         net::Transport& transport)
      : config_(std::move(config)), server_(server), transport_(transport) {}

  // Run one test. `target_recipient_domain` is the mail domain under test
  // (the RCPT TO domain); `mail_from_domain` is the unique test domain.
  // `fault` is a resolved fault-plan decision for this attempt, handed to
  // the transport: tempfails and drops preempt the host at the chosen stage
  // (the failure is the network's, not the host's), latency spikes stretch
  // the dialog.
  ProbeResult probe(mta::MailHost& host, const std::string& recipient_domain,
                    const dns::Name& mail_from_domain, TestKind kind,
                    const faults::FaultDecision& fault = {});

 private:
  ProberConfig config_;
  dns::AuthoritativeServer& server_;
  net::Transport& transport_;
};

}  // namespace spfail::scan
