#include "scan/campaign.hpp"

#include <algorithm>

namespace spfail::scan {

std::string to_string(AddressVerdict verdict) {
  switch (verdict) {
    case AddressVerdict::Refused:
      return "refused";
    case AddressVerdict::SmtpFailure:
      return "smtp-failure";
    case AddressVerdict::Measured:
      return "measured";
    case AddressVerdict::NotMeasured:
      return "not-measured";
  }
  return "?";
}

bool AddressOutcome::erroneous_but_not_vulnerable() const {
  if (vulnerable()) return false;
  for (const auto behavior : behaviors) {
    if (spfvuln::is_erroneous(behavior)) return true;
  }
  return false;
}

std::size_t CampaignReport::count_verdict(AddressVerdict verdict) const {
  std::size_t n = 0;
  for (const auto& [addr, outcome] : addresses) {
    if (outcome.verdict == verdict) ++n;
  }
  return n;
}

std::size_t CampaignReport::vulnerable_addresses() const {
  std::size_t n = 0;
  for (const auto& [addr, outcome] : addresses) n += outcome.vulnerable();
  return n;
}

std::size_t CampaignReport::vulnerable_domains() const {
  std::size_t n = 0;
  for (const auto& d : domains) n += d.vulnerable;
  return n;
}

Campaign::Campaign(CampaignConfig config, dns::AuthoritativeServer& server,
                   util::SimClock& clock, HostRegistry& registry)
    : config_(std::move(config)),
      server_(server),
      clock_(clock),
      registry_(registry),
      labels_(util::Rng(config_.label_seed), config_.prober.responder.base) {}

ProbeResult Campaign::probe_with_greylist_retry(
    mta::MailHost& host, const std::string& recipient_domain,
    const dns::Name& mail_from, TestKind kind) {
  Prober prober(config_.prober, server_, clock_);
  ProbeResult result = prober.probe(host, recipient_domain, mail_from, kind);
  for (int attempt = 0;
       result.status == ProbeStatus::Greylisted &&
       attempt < config_.max_greylist_retries;
       ++attempt) {
    // The paper: wait eight minutes before re-attempting a greylisted host.
    clock_.advance_by(config_.greylist_backoff);
    result = prober.probe(host, recipient_domain, mail_from, kind);
  }
  return result;
}

CampaignReport Campaign::run(const std::vector<TargetDomain>& targets) {
  CampaignReport report;
  report.suite_label = labels_.new_suite();

  // 1. Deduplicate addresses, remembering a recipient domain for each (the
  //    first domain that listed the address — used for RCPT TO).
  std::map<util::IpAddress, std::string> recipient_for;
  for (const auto& target : targets) {
    for (const auto& address : target.addresses) {
      recipient_for.emplace(address, target.domain);
    }
  }

  // 2. Wave 1: NoMsg over every unique address. The concurrency cap means
  //    wall-clock advances by (gap / cap) per test on average; the clock
  //    model below approximates 250 parallel scanner lanes.
  const util::SimTime per_test_advance =
      std::max<util::SimTime>(1, config_.inter_connection_gap /
                                     config_.max_concurrent_connections);

  std::vector<util::IpAddress> want_blankmsg;
  for (const auto& [address, recipient_domain] : recipient_for) {
    clock_.advance_by(per_test_advance);
    AddressOutcome outcome;
    outcome.address = address;

    mta::MailHost* host = registry_.find_host(address);
    if (host == nullptr) {
      outcome.verdict = AddressVerdict::Refused;
      report.addresses.emplace(address, std::move(outcome));
      continue;
    }

    const dns::Name mail_from =
        labels_.mail_from_domain(labels_.new_id(), report.suite_label);
    const ProbeResult nomsg = probe_with_greylist_retry(
        *host, recipient_domain, mail_from, TestKind::NoMsg);
    outcome.nomsg = nomsg;

    switch (nomsg.status) {
      case ProbeStatus::ConnectionRefused:
        outcome.verdict = AddressVerdict::Refused;
        break;
      case ProbeStatus::SpfMeasured:
        outcome.verdict = AddressVerdict::Measured;
        outcome.behaviors = nomsg.behaviors;
        // The paper retried almost all NoMsg successes with BlankMsg too —
        // but only those that had NOT yet yielded a conclusive measurement
        // feed wave 2 here.
        break;
      case ProbeStatus::SpfNotMeasured:
        outcome.verdict = AddressVerdict::NotMeasured;
        want_blankmsg.push_back(address);
        break;
      case ProbeStatus::Greylisted:  // retries exhausted
      case ProbeStatus::SmtpFailure:
        outcome.verdict = AddressVerdict::SmtpFailure;
        // A mid-dialog failure can still be followed by a BlankMsg attempt
        // when the failure left room for SPF-after-DATA (e.g. the RCPT
        // ladder ran dry): the paper's wave 2 covered those too.
        if (nomsg.failing_code == 550) want_blankmsg.push_back(address);
        break;
    }
    report.addresses.emplace(address, std::move(outcome));
  }

  // 3. Wave 2: BlankMsg for addresses that accepted SMTP but showed no SPF.
  for (const auto& address : want_blankmsg) {
    clock_.advance_by(per_test_advance);
    AddressOutcome& outcome = report.addresses.at(address);
    mta::MailHost* host = registry_.find_host(address);
    if (host == nullptr) continue;

    const dns::Name mail_from =
        labels_.mail_from_domain(labels_.new_id(), report.suite_label);
    const ProbeResult blankmsg = probe_with_greylist_retry(
        *host, recipient_for.at(address), mail_from, TestKind::BlankMsg);
    outcome.blankmsg = blankmsg;

    if (blankmsg.status == ProbeStatus::SpfMeasured) {
      outcome.verdict = AddressVerdict::Measured;
      outcome.behaviors.insert(blankmsg.behaviors.begin(),
                               blankmsg.behaviors.end());
    } else if (outcome.verdict == AddressVerdict::NotMeasured &&
               blankmsg.status == ProbeStatus::SmtpFailure) {
      outcome.verdict = AddressVerdict::SmtpFailure;
    }
  }

  // 4. Domain roll-up.
  report.domains.reserve(targets.size());
  for (const auto& target : targets) {
    DomainOutcome domain_outcome;
    domain_outcome.domain = target.domain;
    domain_outcome.addresses = target.addresses;
    for (const auto& address : target.addresses) {
      const auto it = report.addresses.find(address);
      if (it == report.addresses.end()) continue;
      const AddressOutcome& outcome = it->second;
      if (outcome.verdict == AddressVerdict::Refused) {
        domain_outcome.any_refused = true;
      }
      if (outcome.conclusive()) {
        domain_outcome.any_measured = true;
        domain_outcome.behaviors.insert(outcome.behaviors.begin(),
                                        outcome.behaviors.end());
      }
      if (outcome.vulnerable()) domain_outcome.vulnerable = true;
    }
    report.domains.push_back(std::move(domain_outcome));
  }
  return report;
}

CampaignReport Campaign::run_addresses(
    const std::vector<util::IpAddress>& addresses) {
  std::vector<TargetDomain> targets;
  targets.reserve(addresses.size());
  for (const auto& address : addresses) {
    // Recipient domain is synthesised from the address; longitudinal rounds
    // only need per-address verdicts, not domain roll-ups.
    targets.push_back(TargetDomain{"host-" + address.to_string(), {address}});
  }
  return run(targets);
}

}  // namespace spfail::scan
