#include "scan/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "obs/lane.hpp"
#include "scan/shard_runner.hpp"
#include "util/concurrent_table.hpp"
#include "util/intern.hpp"
#include "util/rng.hpp"

namespace spfail::scan {

namespace {

// Adapts the legacy vector-of-TargetDomain interface onto the streaming
// TargetSource core; the vector overload of run() is now just this wrapper.
class VectorTargetSource final : public TargetSource {
 public:
  explicit VectorTargetSource(const std::vector<TargetDomain>& targets)
      : targets_(targets) {}

  std::size_t domain_count() const override { return targets_.size(); }

  std::size_t address_upper_bound() const override {
    std::size_t n = 0;
    for (const auto& target : targets_) n += target.addresses.size();
    return n;
  }

  void for_each(
      const std::function<void(std::string_view,
                               std::span<const util::IpAddress>)>& fn)
      const override {
    for (const auto& target : targets_) fn(target.domain, target.addresses);
  }

 private:
  const std::vector<TargetDomain>& targets_;
};

// Provider grouping for the circuit breaker: IPv4 /24, IPv6 by the hash of
// the textual form (tagged into a disjoint key space). Computed from merged
// whole-wave results only — never from per-shard streaks, which would vary
// with the thread count.
std::uint64_t provider_group(const util::IpAddress& address) {
  if (address.is_v4()) return address.v4_value() >> 8;
  return util::fnv1a(address.to_string()) | (1ULL << 63);
}

// Serial reference dedupe: first-listing domain wins, items come out in
// ascending address order with recipients interned into `recipients` (which
// must outlive the returned items — they view its arena).
std::vector<WaveItem> dedupe_serial(const TargetSource& targets,
                                    util::Interner& recipients) {
  std::unordered_map<util::IpAddress, util::Symbol, util::IpAddressHash>
      recipient_for;
  recipient_for.reserve(targets.address_upper_bound());
  targets.for_each([&](std::string_view domain,
                       std::span<const util::IpAddress> addresses) {
    if (addresses.empty()) return;
    const util::Symbol name = recipients.intern(domain);
    for (const auto& address : addresses) {
      recipient_for.emplace(address, name);
    }
  });
  std::vector<const std::pair<const util::IpAddress, util::Symbol>*> order;
  order.reserve(recipient_for.size());
  for (const auto& entry : recipient_for) order.push_back(&entry);
  std::sort(order.begin(), order.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  std::vector<WaveItem> items;
  items.reserve(order.size());
  for (const auto* entry : order) {
    items.push_back(WaveItem{entry->first, recipients.view(entry->second)});
  }
  return items;
}

// Concurrent dedupe over a lock-free table (DESIGN.md §16), same output as
// dedupe_serial byte for byte. A serial walk flattens the (domain, address)
// edges, then workers race CAS-min claims of the flat position into a
// ConcurrentTable keyed by address hash: the minimum position is the first
// listing, i.e. exactly the entry emplace() would have kept. The claim is
// order-free (min is commutative), so the steal schedule is invisible.
// Addresses are wider than the u64 key, so a hit verifies the full address
// and re-probes under a salted key on a genuine 64-bit collision.
std::vector<WaveItem> dedupe_concurrent(const TargetSource& targets,
                                        util::Interner& recipients,
                                        util::ThreadPool& pool,
                                        const util::SchedulerOptions& sched) {
  // Phase A (serial): flatten the walk. flat position i carries the address
  // and the Symbol of the domain that listed it.
  std::vector<util::IpAddress> flat_addrs;
  std::vector<util::Symbol> flat_name;
  flat_addrs.reserve(targets.address_upper_bound());
  flat_name.reserve(targets.address_upper_bound());
  targets.for_each([&](std::string_view domain,
                       std::span<const util::IpAddress> addresses) {
    if (addresses.empty()) return;
    const util::Symbol name = recipients.intern(domain);
    for (const auto& address : addresses) {
      flat_addrs.push_back(address);
      flat_name.push_back(name);
    }
  });

  struct DedupeSlot {
    util::IpAddress address;                 // published pre-Ready, immutable
    std::atomic<std::uint64_t> claim{0};     // CAS-min of the flat position
  };
  constexpr std::uint64_t kSaltStep = 0x9E3779B97F4A7C15ULL;
  constexpr int kMaxSalt = 4;
  util::ConcurrentTable<DedupeSlot> table(flat_addrs.size());

  // Phase B (parallel): claim every flat position. Throws TableFullError on
  // a blown sizing bound (impossible while the table is sized to the flat
  // list) — the caller falls back to the serial path.
  pool.parallel_for_slices(
      flat_addrs.size(), sched,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const util::IpAddress& address = flat_addrs[i];
          const std::uint64_t hash = util::IpAddressHash{}(address);
          for (int salt = 0;; ++salt) {
            if (salt > kMaxSalt) {
              throw util::TableFullError("dedupe salt chain exhausted");
            }
            const std::uint64_t key =
                hash + static_cast<std::uint64_t>(salt) * kSaltStep;
            const auto found = table.find_or_insert(key, [&](DedupeSlot& s) {
              s.address = address;
              s.claim.store(i, std::memory_order_relaxed);
            });
            if (found.inserted) break;
            if (found.payload->address == address) {
              std::atomic<std::uint64_t>& claim = found.payload->claim;
              std::uint64_t cur = claim.load(std::memory_order_relaxed);
              while (static_cast<std::uint64_t>(i) < cur &&
                     !claim.compare_exchange_weak(
                         cur, i, std::memory_order_acq_rel,
                         std::memory_order_relaxed)) {
              }
              break;
            }
            // 64-bit collision with a different address: re-probe salted.
          }
        }
      });

  // Phase C (quiescent): collect winners and restore address order.
  std::vector<std::pair<util::IpAddress, std::uint64_t>> winners;
  winners.reserve(table.size());
  table.for_each([&](std::uint64_t, const DedupeSlot& slot) {
    winners.emplace_back(slot.address,
                         slot.claim.load(std::memory_order_relaxed));
  });
  std::sort(winners.begin(), winners.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<WaveItem> items;
  items.reserve(winners.size());
  for (const auto& [address, claim] : winners) {
    items.push_back(WaveItem{address, recipients.view(flat_name[claim])});
  }
  return items;
}

// Derive the effective retry policy. The zero sentinel maps the legacy
// greylist knobs onto the engine: 1 + max_greylist_retries attempts at a
// flat, unjittered greylist_backoff — the exact clock schedule of the old
// probe_with_greylist_retry loop, so a rate-0 run stays byte-identical.
faults::RetryConfig effective_retry(const CampaignConfig& config) {
  faults::RetryConfig retry = config.retry;
  if (retry.max_attempts == 0) {
    retry.max_attempts = 1 + config.max_greylist_retries;
    retry.base_backoff = config.greylist_backoff;
    retry.multiplier = 1.0;
    retry.max_backoff = config.greylist_backoff;
    retry.jitter = 0.0;
  }
  return retry;
}

}  // namespace

std::string to_string(AddressVerdict verdict) {
  switch (verdict) {
    case AddressVerdict::Refused:
      return "refused";
    case AddressVerdict::SmtpFailure:
      return "smtp-failure";
    case AddressVerdict::Measured:
      return "measured";
    case AddressVerdict::NotMeasured:
      return "not-measured";
  }
  return "?";
}

bool AddressOutcome::erroneous_but_not_vulnerable() const {
  if (vulnerable()) return false;
  for (const auto behavior : behaviors) {
    if (spfvuln::is_erroneous(behavior)) return true;
  }
  return false;
}

std::vector<const AddressOutcome*> CampaignReport::sorted_outcomes() const {
  std::vector<const AddressOutcome*> out;
  out.reserve(addresses.size());
  for (const auto& [address, outcome] : addresses) out.push_back(&outcome);
  std::sort(out.begin(), out.end(),
            [](const AddressOutcome* a, const AddressOutcome* b) {
              return a->address < b->address;
            });
  return out;
}

std::size_t CampaignReport::count_verdict(AddressVerdict verdict) const {
  std::size_t n = 0;
  for (const auto& [addr, outcome] : addresses) {
    if (outcome.verdict == verdict) ++n;
  }
  return n;
}

std::size_t CampaignReport::vulnerable_addresses() const {
  std::size_t n = 0;
  for (const auto& [addr, outcome] : addresses) n += outcome.vulnerable();
  return n;
}

std::size_t CampaignReport::vulnerable_domains() const {
  std::size_t n = 0;
  for (const auto& d : domains) n += d.vulnerable;
  return n;
}

Campaign::Campaign(CampaignConfig config, dns::AuthoritativeServer& server,
                   util::SimClock& clock, HostRegistry& registry)
    : config_(std::move(config)),
      server_(server),
      clock_(clock),
      registry_(registry),
      labels_(util::Rng(config_.label_seed), config_.prober.responder.base),
      plan_(config_.faults),
      retry_(effective_retry(config_)),
      engine_(plan_, retry_, clock_) {}

ProbeResult Campaign::probe_settled(Prober& prober, mta::MailHost& host,
                                    std::string_view recipient_domain,
                                    const dns::Name& mail_from, TestKind kind,
                                    std::uint64_t round,
                                    AddressOutcome& outcome,
                                    faults::DegradationReport& deg) {
  ProbeRequest request;
  request.address = outcome.address;
  request.recipient_domain = recipient_domain;
  // The campaign keeps one label per test across retries; labels only differ
  // per attempt in the longitudinal per-observation path.
  request.mail_from = mail_from;
  request.retry_mail_from = mail_from;
  request.kind = kind;
  request.fault_round = round;
  request.first_attempt = static_cast<std::uint64_t>(outcome.probe_attempts);
  request.retry_budget =
      retry_.config().per_address_budget - outcome.retries_used;
  const ProbeOutcome settled = engine_.run(prober, host, request, deg);
  outcome.probe_attempts += settled.attempts;
  outcome.retries_used += settled.retries;
  outcome.saw_transient = outcome.saw_transient || settled.saw_transient;
  return settled.result;
}

CampaignReport Campaign::run(const std::vector<TargetDomain>& targets) {
  return run(VectorTargetSource(targets));
}

WaveSliceResult Campaign::run_wave_slice(std::span<const WaveItem> items,
                                         std::size_t base,
                                         const WaveContext& ctx) {
  WaveSliceResult out;
  out.outcomes.reserve(items.size());
  util::SimClock::Lane clock_lane(clock_);
  dns::AuthoritativeServer::LogLane log_lane(server_, out.log);
  std::optional<obs::MetricsLane> metrics_lane;
  if (ctx.metrics) metrics_lane.emplace(out.metrics);
  net::Transport transport(clock_);
  Prober prober(config_.prober, server_, transport);  // one per slice, reused

  // Wave 1: NoMsg over the slice. Label slots and trace lanes derive from the
  // master-order position base + k, never from the slice layout.
  std::vector<std::size_t> want_blankmsg;
  for (std::size_t k = 0; k < items.size(); ++k) {
    const std::size_t i = base + k;
    const auto& [address, recipient] = items[k];
    clock_.advance_by(ctx.per_test_advance);
    AddressOutcome outcome;
    outcome.address = address;

    mta::MailHost* host = registry_.find_host(address);
    if (host == nullptr) {
      outcome.verdict = AddressVerdict::Refused;
      out.outcomes.push_back(std::move(outcome));
      continue;
    }

    std::optional<net::WireTrace::Lane> lane;
    if (ctx.tracing) lane.emplace(out.wave1, 2 * i, clock_);
    const dns::Name mail_from = labels_.indexed_mail_from(2 * i, ctx.suite);
    const ProbeResult nomsg =
        probe_settled(prober, *host, recipient, mail_from, TestKind::NoMsg,
                      ctx.round, outcome, out.deg);
    lane.reset();
    registry_.release_host(address);
    outcome.nomsg = nomsg;

    switch (nomsg.status) {
      case ProbeStatus::ConnectionRefused:
        outcome.verdict = AddressVerdict::Refused;
        break;
      case ProbeStatus::SpfMeasured:
        outcome.verdict = AddressVerdict::Measured;
        outcome.behaviors = nomsg.behaviors;
        // The paper retried almost all NoMsg successes with BlankMsg too —
        // but only those that had NOT yet yielded a conclusive measurement
        // feed wave 2 here.
        break;
      case ProbeStatus::SpfNotMeasured:
        outcome.verdict = AddressVerdict::NotMeasured;
        want_blankmsg.push_back(k);
        break;
      case ProbeStatus::Greylisted:  // retries exhausted
      case ProbeStatus::TempFailed:
      case ProbeStatus::Dropped:
      case ProbeStatus::SmtpFailure:
        outcome.verdict = AddressVerdict::SmtpFailure;
        // A mid-dialog failure can still be followed by a BlankMsg attempt
        // when the failure left room for SPF-after-DATA (e.g. the RCPT
        // ladder ran dry): the paper's wave 2 covered those too.
        if (nomsg.failing_code == 550) want_blankmsg.push_back(k);
        break;
    }
    out.outcomes.push_back(std::move(outcome));
  }

  // Wave 2: BlankMsg for addresses that accepted SMTP but showed no SPF.
  for (const std::size_t k : want_blankmsg) {
    const std::size_t i = base + k;
    clock_.advance_by(ctx.per_test_advance);
    AddressOutcome& outcome = out.outcomes[k];
    mta::MailHost* host = registry_.find_host(outcome.address);
    if (host == nullptr) continue;

    std::optional<net::WireTrace::Lane> lane;
    if (ctx.tracing) lane.emplace(out.wave2, 2 * i + 1, clock_);
    const dns::Name mail_from = labels_.indexed_mail_from(2 * i + 1, ctx.suite);
    const ProbeResult blankmsg =
        probe_settled(prober, *host, items[k].recipient, mail_from,
                      TestKind::BlankMsg, ctx.round, outcome, out.deg);
    lane.reset();
    registry_.release_host(outcome.address);
    outcome.blankmsg = blankmsg;

    if (blankmsg.status == ProbeStatus::SpfMeasured) {
      outcome.verdict = AddressVerdict::Measured;
      outcome.behaviors.insert(blankmsg.behaviors.begin(),
                               blankmsg.behaviors.end());
    } else if (outcome.verdict == AddressVerdict::NotMeasured &&
               blankmsg.status == ProbeStatus::SmtpFailure) {
      outcome.verdict = AddressVerdict::SmtpFailure;
    }
  }
  out.advance = clock_lane.offset();
  return out;
}

RequeueSliceResult Campaign::run_requeue_slice(
    std::span<const RequeueItem> items, const WaveContext& ctx) {
  RequeueSliceResult out;
  out.outcomes.reserve(items.size());
  util::SimClock::Lane clock_lane(clock_);
  dns::AuthoritativeServer::LogLane log_lane(server_, out.log);
  std::optional<obs::MetricsLane> metrics_lane;
  if (ctx.metrics) metrics_lane.emplace(out.metrics);
  net::Transport transport(clock_);
  Prober prober(config_.prober, server_, transport);
  for (const RequeueItem& rq : items) {
    const std::size_t i = rq.index;
    const std::string_view recipient_domain = rq.item.recipient;
    AddressOutcome outcome = rq.outcome;
    mta::MailHost* host = registry_.find_host(rq.item.address);
    if (host == nullptr) {
      out.outcomes.push_back(std::move(outcome));
      continue;
    }

    const TestKind pending = *outcome.pending_transient();
    if (pending == TestKind::NoMsg) {
      clock_.advance_by(ctx.per_test_advance);
      std::optional<net::WireTrace::Lane> lane;
      if (ctx.tracing) lane.emplace(out.trace, 2 * i, clock_);
      const dns::Name mail_from = labels_.indexed_mail_from(2 * i, ctx.suite);
      const ProbeResult nomsg =
          probe_settled(prober, *host, recipient_domain, mail_from,
                        TestKind::NoMsg, ctx.round, outcome, out.deg);
      lane.reset();
      outcome.nomsg = nomsg;
      switch (nomsg.status) {
        case ProbeStatus::ConnectionRefused:
          outcome.verdict = AddressVerdict::Refused;
          break;
        case ProbeStatus::SpfMeasured:
          outcome.verdict = AddressVerdict::Measured;
          outcome.behaviors = nomsg.behaviors;
          break;
        case ProbeStatus::SpfNotMeasured:
          outcome.verdict = AddressVerdict::NotMeasured;
          break;
        case ProbeStatus::Greylisted:
        case ProbeStatus::TempFailed:
        case ProbeStatus::Dropped:
        case ProbeStatus::SmtpFailure:
          outcome.verdict = AddressVerdict::SmtpFailure;
          break;
      }
    }
    // A settled NoMsg that wants the message-bearing test (either it just
    // recovered to "no SPF seen", or BlankMsg itself was the stuck test)
    // gets the wave-2 treatment inline.
    const bool want_blank =
        pending == TestKind::BlankMsg ||
        (outcome.nomsg && !is_transient(outcome.nomsg->status) &&
         (outcome.nomsg->status == ProbeStatus::SpfNotMeasured ||
          outcome.nomsg->failing_code == 550));
    if (want_blank) {
      clock_.advance_by(ctx.per_test_advance);
      std::optional<net::WireTrace::Lane> lane;
      if (ctx.tracing) lane.emplace(out.trace, 2 * i + 1, clock_);
      const dns::Name mail_from =
          labels_.indexed_mail_from(2 * i + 1, ctx.suite);
      const ProbeResult blankmsg =
          probe_settled(prober, *host, recipient_domain, mail_from,
                        TestKind::BlankMsg, ctx.round, outcome, out.deg);
      lane.reset();
      outcome.blankmsg = blankmsg;
      if (blankmsg.status == ProbeStatus::SpfMeasured) {
        outcome.verdict = AddressVerdict::Measured;
        outcome.behaviors.insert(blankmsg.behaviors.begin(),
                                 blankmsg.behaviors.end());
      } else if (outcome.verdict == AddressVerdict::NotMeasured &&
                 blankmsg.status == ProbeStatus::SmtpFailure) {
        outcome.verdict = AddressVerdict::SmtpFailure;
      }
    }
    registry_.release_host(rq.item.address);
    if (!outcome.pending_transient()) ++out.recovered;
    out.outcomes.push_back(std::move(outcome));
  }
  out.advance = clock_lane.offset();
  return out;
}

CampaignReport Campaign::run(const TargetSource& targets) {
  CampaignReport report;
  report.suite_label = labels_.new_suite();
  const std::uint64_t round = next_round_++;
  report.degradation.configured_rate = plan_.config().rate;

  // The worker pool comes first: the concurrent dedupe below runs on it.
  // Fork safety (DESIGN.md §15): when a ShardRunner is attached the
  // coordinator forks workers, so no pool — and no threads at all — may
  // exist in this process; every parallel phase then takes its serial path.
  std::optional<util::ThreadPool> owned_pool;
  util::ThreadPool* pool = config_.pool;
  if (config_.runner == nullptr && pool == nullptr) {
    owned_pool.emplace(config_.threads);
    pool = &*owned_pool;
  }

  // 1. Deduplicate addresses, remembering a recipient domain for each (the
  //    first domain that listed the address — used for RCPT TO). Domain names
  //    are interned once (DESIGN.md §14): the dedupe carries a 4-byte Symbol
  //    per address instead of a heap string copy. With a pool, the dedupe
  //    races CAS-min claims through a lock-free table (DESIGN.md §16) —
  //    byte-identical to the serial walk.
  //
  //    The result is the master work list, in ascending address order.
  //    Slices are contiguous runs of this list, so every address (and with
  //    it every host: hosts are keyed by address) belongs to exactly one
  //    worker at a time, and the merge below reassembles results in address
  //    order — bit-identical at any thread count. Probe labels derive from
  //    the position in this list, never from allocation order.
  util::Interner recipients;  // outlives every item view below
  std::vector<WaveItem> items;
  if (pool != nullptr) {
    try {
      items = dedupe_concurrent(targets, recipients, *pool, config_.sched);
    } catch (const util::TableFullError&) {
      items = dedupe_serial(targets, recipients);
    }
  } else {
    items = dedupe_serial(targets, recipients);
  }

  // 2+3. The two probe waves, sliced. The concurrency cap means wall-clock
  //    advances by (gap / cap) per test on average; each worker accumulates
  //    that 250-lane model on a private clock lane, and the lane offsets sum
  //    to exactly the serial advance.
  const util::SimTime per_test_advance =
      std::max<util::SimTime>(1, config_.inter_connection_gap /
                                     config_.max_concurrent_connections);

  WaveContext ctx;
  ctx.suite = report.suite_label;
  ctx.round = round;
  ctx.per_test_advance = per_test_advance;
  ctx.tracing = config_.trace != nullptr;
  ctx.metrics = config_.metrics != nullptr;

  std::vector<WaveSliceResult> slices;
  if (config_.runner != nullptr) {
    slices = config_.runner->run_wave(*this, items, ctx);
  } else {
    slices.resize(pool->slice_count(items.size(), config_.sched));
    pool->parallel_for_slices(
        items.size(), config_.sched,
        [&](std::size_t slice, std::size_t begin, std::size_t end) {
          slices[slice] = run_wave_slice(
              std::span<const WaveItem>(items).subspan(begin, end - begin),
              begin, ctx);
        });
  }

  // Merge: fold lane clocks back into the shared one (the sum reproduces the
  // serial advance), drain lane query logs in slice — i.e. address — order,
  // and reassemble the report.
  util::SimTime total_advance = 0;
  report.addresses.reserve(items.size());
  for (auto& slice : slices) {
    total_advance += slice.advance;
    server_.query_log().splice(std::move(slice.log));
    report.degradation.merge(slice.deg);
    if (config_.metrics != nullptr) config_.metrics->merge(slice.metrics);
    for (auto& outcome : slice.outcomes) {
      const util::IpAddress address = outcome.address;
      report.addresses.emplace(address, std::move(outcome));
    }
  }
  clock_.advance_by(total_advance);

  // Canonical trace order is wave-major, then master (address) order within
  // the wave — exactly the sequence a single-threaded run records.
  if (ctx.tracing) {
    for (auto& slice : slices) config_.trace->splice(std::move(slice.wave1));
    for (auto& slice : slices) config_.trace->splice(std::move(slice.wave2));
  }

  // 3b. Circuit breaker + inconclusive re-queue wave (fault layer only).
  //
  // Addresses whose retries exhausted mid-wave get one more pass after a
  // cool-down — unless their provider group (/24) looks systemically sick,
  // in which case the breaker opens and the group is skipped. Group stats
  // come from the complete merged wave results, so the decision (and with it
  // the whole report) is independent of the thread count.
  if (plan_.enabled()) {
    // Per-group tested/transient tallies. With a pool they accumulate
    // through a lock-free table of atomic counters (DESIGN.md §16) — the
    // group key IS the u64 table key, so no wide-key verify is needed, and
    // sums are order-free, so the steal schedule is invisible. The serial
    // fallback (runner attached: no threads may exist pre-fork) computes the
    // same tallies.
    std::unordered_map<std::uint64_t, std::pair<std::size_t, std::size_t>>
        group_stats;  // group -> {tested, transient}
    const auto tally_serial = [&] {
      for (const auto& item : items) {
        const auto it = report.addresses.find(item.address);
        if (it == report.addresses.end()) continue;
        auto& stats = group_stats[provider_group(item.address)];
        ++stats.first;
        if (it->second.pending_transient()) ++stats.second;
      }
    };
    if (pool != nullptr) {
      struct GroupStats {
        std::atomic<std::uint32_t> tested{0};
        std::atomic<std::uint32_t> transient{0};
      };
      util::ConcurrentTable<GroupStats> groups(items.size());
      try {
        pool->parallel_for_slices(
            items.size(), config_.sched,
            [&](std::size_t, std::size_t begin, std::size_t end) {
              for (std::size_t i = begin; i < end; ++i) {
                const auto it = report.addresses.find(items[i].address);
                if (it == report.addresses.end()) continue;
                GroupStats* stats =
                    groups.find_or_insert(provider_group(items[i].address))
                        .payload;
                stats->tested.fetch_add(1, std::memory_order_relaxed);
                if (it->second.pending_transient()) {
                  stats->transient.fetch_add(1, std::memory_order_relaxed);
                }
              }
            });
        groups.for_each([&](std::uint64_t group, const GroupStats& stats) {
          group_stats[group] = {
              stats.tested.load(std::memory_order_relaxed),
              stats.transient.load(std::memory_order_relaxed)};
        });
      } catch (const util::TableFullError&) {
        group_stats.clear();
        tally_serial();
      }
    } else {
      tally_serial();
    }
    std::unordered_set<std::uint64_t> open_groups;
    for (const auto& [group, stats] : group_stats) {
      const auto [tested, transient] = stats;
      if (transient >= static_cast<std::size_t>(config_.breaker_min_transient) &&
          static_cast<double>(transient) >=
              config_.breaker_min_share * static_cast<double>(tested)) {
        open_groups.insert(group);
      }
    }
    report.degradation.breaker_trips += open_groups.size();

    // Re-queue candidates, in master (address) order so labels and fault
    // keys line up across thread counts.
    std::vector<std::size_t> requeue;
    for (std::size_t i = 0; i < items.size(); ++i) {
      const auto it = report.addresses.find(items[i].address);
      if (it == report.addresses.end()) continue;
      if (!it->second.pending_transient()) continue;
      if (open_groups.count(provider_group(items[i].address)) > 0) {
        ++report.degradation.breaker_skipped;
        continue;
      }
      requeue.push_back(i);
    }

    if (!requeue.empty()) {
      clock_.advance_by(config_.requeue_backoff);
      std::vector<RequeueItem> rq_items;
      rq_items.reserve(requeue.size());
      for (const std::size_t i : requeue) {
        RequeueItem item;
        item.index = i;
        item.item = items[i];
        item.outcome = report.addresses.find(items[i].address)->second;
        rq_items.push_back(std::move(item));
      }

      std::vector<RequeueSliceResult> rq_slices;
      if (config_.runner != nullptr) {
        rq_slices = config_.runner->run_requeue(*this, rq_items, ctx);
      } else {
        rq_slices.resize(pool->slice_count(rq_items.size(), config_.sched));
        pool->parallel_for_slices(
            rq_items.size(), config_.sched,
            [&](std::size_t slice, std::size_t begin, std::size_t end) {
              rq_slices[slice] = run_requeue_slice(
                  std::span<const RequeueItem>(rq_items).subspan(begin,
                                                                 end - begin),
                  ctx);
            });
      }

      util::SimTime rq_advance = 0;
      for (auto& slice : rq_slices) {
        rq_advance += slice.advance;
        server_.query_log().splice(std::move(slice.log));
        report.degradation.merge(slice.deg);
        report.degradation.requeue_recovered += slice.recovered;
        if (ctx.tracing) config_.trace->splice(std::move(slice.trace));
        if (config_.metrics != nullptr) config_.metrics->merge(slice.metrics);
        for (auto& outcome : slice.outcomes) {
          report.addresses.find(outcome.address)->second = std::move(outcome);
        }
      }
      clock_.advance_by(rq_advance);
      report.degradation.requeued += requeue.size();
    }
  }

  // Final degradation accounting: every address that ever went transient is
  // either recovered (settled) or exhausted (still pending) — the invariant
  // the test suite checks.
  for (const auto& [address, outcome] : report.addresses) {
    ++report.degradation.addresses_tested;
    if (outcome.conclusive()) ++report.degradation.conclusive;
    if (outcome.saw_transient) {
      ++report.degradation.transient_addresses;
      if (outcome.pending_transient()) {
        ++report.degradation.exhausted;
      } else {
        ++report.degradation.recovered;
      }
    }
  }

  // Serial round roll-up into the master registry: counters accumulate
  // across rounds, the gauges snapshot this round (the per-round JSONL
  // stream is what gives them a time axis).
  if (config_.metrics != nullptr) {
    obs::Registry& m = *config_.metrics;
    m.counter("campaign_rounds_total") += 1;
    m.counter("campaign_addresses_tested_total") +=
        report.degradation.addresses_tested;
    m.counter("campaign_conclusive_total") += report.degradation.conclusive;
    m.counter("campaign_breaker_trips_total") +=
        report.degradation.breaker_trips;
    m.counter("campaign_requeued_total") += report.degradation.requeued;
    m.counter("campaign_requeue_recovered_total") +=
        report.degradation.requeue_recovered;
    m.gauge("campaign_round_addresses") =
        static_cast<std::int64_t>(report.degradation.addresses_tested);
    m.gauge("campaign_round_conclusive") =
        static_cast<std::int64_t>(report.degradation.conclusive);
  }

  // 4. Domain roll-up: a second streaming walk over the same source.
  report.domains.reserve(targets.domain_count());
  targets.for_each([&](std::string_view domain,
                       std::span<const util::IpAddress> addresses) {
    DomainOutcome domain_outcome;
    domain_outcome.domain = std::string(domain);
    domain_outcome.addresses.assign(addresses.begin(), addresses.end());
    for (const auto& address : addresses) {
      const auto it = report.addresses.find(address);
      if (it == report.addresses.end()) continue;
      const AddressOutcome& outcome = it->second;
      if (outcome.verdict == AddressVerdict::Refused) {
        domain_outcome.any_refused = true;
      }
      if (outcome.conclusive()) {
        domain_outcome.any_measured = true;
        domain_outcome.behaviors.insert(outcome.behaviors.begin(),
                                        outcome.behaviors.end());
      }
      if (outcome.vulnerable()) domain_outcome.vulnerable = true;
    }
    report.domains.push_back(std::move(domain_outcome));
  });
  return report;
}

WaveSliceResult Campaign::run_wave_slice_scheduled(
    std::span<const WaveItem> items, std::size_t base, const WaveContext& ctx,
    util::ThreadPool& pool) {
  const std::size_t slices = pool.slice_count(items.size(), config_.sched);
  if (slices <= 1) return run_wave_slice(items, base, ctx);
  std::vector<WaveSliceResult> parts(slices);
  pool.parallel_for_slices(
      items.size(), config_.sched,
      [&](std::size_t slice, std::size_t begin, std::size_t end) {
        parts[slice] =
            run_wave_slice(items.subspan(begin, end - begin), base + begin,
                           ctx);
      });
  // Fold in batch (master) order into one result indistinguishable from a
  // serial run_wave_slice over the whole span: outcomes concatenate, lane
  // advances sum (the shared clock stays untouched — the caller merges it),
  // logs/traces splice, counters merge.
  WaveSliceResult out;
  std::size_t total = 0;
  for (const auto& part : parts) total += part.outcomes.size();
  out.outcomes.reserve(total);
  for (auto& part : parts) {
    for (auto& outcome : part.outcomes) {
      out.outcomes.push_back(std::move(outcome));
    }
    out.log.splice(std::move(part.log));
    out.advance += part.advance;
    out.deg.merge(part.deg);
    out.wave1.splice(std::move(part.wave1));
    out.wave2.splice(std::move(part.wave2));
    out.metrics.merge(part.metrics);
  }
  return out;
}

RequeueSliceResult Campaign::run_requeue_slice_scheduled(
    std::span<const RequeueItem> items, const WaveContext& ctx,
    util::ThreadPool& pool) {
  const std::size_t slices = pool.slice_count(items.size(), config_.sched);
  if (slices <= 1) return run_requeue_slice(items, ctx);
  std::vector<RequeueSliceResult> parts(slices);
  pool.parallel_for_slices(
      items.size(), config_.sched,
      [&](std::size_t slice, std::size_t begin, std::size_t end) {
        parts[slice] = run_requeue_slice(items.subspan(begin, end - begin),
                                         ctx);
      });
  RequeueSliceResult out;
  std::size_t total = 0;
  for (const auto& part : parts) total += part.outcomes.size();
  out.outcomes.reserve(total);
  for (auto& part : parts) {
    for (auto& outcome : part.outcomes) {
      out.outcomes.push_back(std::move(outcome));
    }
    out.log.splice(std::move(part.log));
    out.advance += part.advance;
    out.deg.merge(part.deg);
    out.recovered += part.recovered;
    out.trace.splice(std::move(part.trace));
    out.metrics.merge(part.metrics);
  }
  return out;
}

CampaignReport Campaign::run_addresses(
    const std::vector<util::IpAddress>& addresses) {
  std::vector<TargetDomain> targets;
  targets.reserve(addresses.size());
  for (const auto& address : addresses) {
    // Recipient domain is synthesised from the address; longitudinal rounds
    // only need per-address verdicts, not domain roll-ups.
    targets.push_back(TargetDomain{"host-" + address.to_string(), {address}});
  }
  return run(targets);
}

}  // namespace spfail::scan
