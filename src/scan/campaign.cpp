#include "scan/campaign.hpp"

#include <algorithm>
#include <optional>
#include <unordered_set>
#include <utility>

#include "obs/lane.hpp"
#include "scan/shard_runner.hpp"
#include "util/intern.hpp"
#include "util/rng.hpp"

namespace spfail::scan {

namespace {

// Adapts the legacy vector-of-TargetDomain interface onto the streaming
// TargetSource core; the vector overload of run() is now just this wrapper.
class VectorTargetSource final : public TargetSource {
 public:
  explicit VectorTargetSource(const std::vector<TargetDomain>& targets)
      : targets_(targets) {}

  std::size_t domain_count() const override { return targets_.size(); }

  std::size_t address_upper_bound() const override {
    std::size_t n = 0;
    for (const auto& target : targets_) n += target.addresses.size();
    return n;
  }

  void for_each(
      const std::function<void(std::string_view,
                               std::span<const util::IpAddress>)>& fn)
      const override {
    for (const auto& target : targets_) fn(target.domain, target.addresses);
  }

 private:
  const std::vector<TargetDomain>& targets_;
};

// Provider grouping for the circuit breaker: IPv4 /24, IPv6 by the hash of
// the textual form (tagged into a disjoint key space). Computed from merged
// whole-wave results only — never from per-shard streaks, which would vary
// with the thread count.
std::uint64_t provider_group(const util::IpAddress& address) {
  if (address.is_v4()) return address.v4_value() >> 8;
  return util::fnv1a(address.to_string()) | (1ULL << 63);
}

// Derive the effective retry policy. The zero sentinel maps the legacy
// greylist knobs onto the engine: 1 + max_greylist_retries attempts at a
// flat, unjittered greylist_backoff — the exact clock schedule of the old
// probe_with_greylist_retry loop, so a rate-0 run stays byte-identical.
faults::RetryConfig effective_retry(const CampaignConfig& config) {
  faults::RetryConfig retry = config.retry;
  if (retry.max_attempts == 0) {
    retry.max_attempts = 1 + config.max_greylist_retries;
    retry.base_backoff = config.greylist_backoff;
    retry.multiplier = 1.0;
    retry.max_backoff = config.greylist_backoff;
    retry.jitter = 0.0;
  }
  return retry;
}

}  // namespace

std::string to_string(AddressVerdict verdict) {
  switch (verdict) {
    case AddressVerdict::Refused:
      return "refused";
    case AddressVerdict::SmtpFailure:
      return "smtp-failure";
    case AddressVerdict::Measured:
      return "measured";
    case AddressVerdict::NotMeasured:
      return "not-measured";
  }
  return "?";
}

bool AddressOutcome::erroneous_but_not_vulnerable() const {
  if (vulnerable()) return false;
  for (const auto behavior : behaviors) {
    if (spfvuln::is_erroneous(behavior)) return true;
  }
  return false;
}

std::vector<const AddressOutcome*> CampaignReport::sorted_outcomes() const {
  std::vector<const AddressOutcome*> out;
  out.reserve(addresses.size());
  for (const auto& [address, outcome] : addresses) out.push_back(&outcome);
  std::sort(out.begin(), out.end(),
            [](const AddressOutcome* a, const AddressOutcome* b) {
              return a->address < b->address;
            });
  return out;
}

std::size_t CampaignReport::count_verdict(AddressVerdict verdict) const {
  std::size_t n = 0;
  for (const auto& [addr, outcome] : addresses) {
    if (outcome.verdict == verdict) ++n;
  }
  return n;
}

std::size_t CampaignReport::vulnerable_addresses() const {
  std::size_t n = 0;
  for (const auto& [addr, outcome] : addresses) n += outcome.vulnerable();
  return n;
}

std::size_t CampaignReport::vulnerable_domains() const {
  std::size_t n = 0;
  for (const auto& d : domains) n += d.vulnerable;
  return n;
}

Campaign::Campaign(CampaignConfig config, dns::AuthoritativeServer& server,
                   util::SimClock& clock, HostRegistry& registry)
    : config_(std::move(config)),
      server_(server),
      clock_(clock),
      registry_(registry),
      labels_(util::Rng(config_.label_seed), config_.prober.responder.base),
      plan_(config_.faults),
      retry_(effective_retry(config_)),
      engine_(plan_, retry_, clock_) {}

ProbeResult Campaign::probe_settled(Prober& prober, mta::MailHost& host,
                                    std::string_view recipient_domain,
                                    const dns::Name& mail_from, TestKind kind,
                                    std::uint64_t round,
                                    AddressOutcome& outcome,
                                    faults::DegradationReport& deg) {
  ProbeRequest request;
  request.address = outcome.address;
  request.recipient_domain = recipient_domain;
  // The campaign keeps one label per test across retries; labels only differ
  // per attempt in the longitudinal per-observation path.
  request.mail_from = mail_from;
  request.retry_mail_from = mail_from;
  request.kind = kind;
  request.fault_round = round;
  request.first_attempt = static_cast<std::uint64_t>(outcome.probe_attempts);
  request.retry_budget =
      retry_.config().per_address_budget - outcome.retries_used;
  const ProbeOutcome settled = engine_.run(prober, host, request, deg);
  outcome.probe_attempts += settled.attempts;
  outcome.retries_used += settled.retries;
  outcome.saw_transient = outcome.saw_transient || settled.saw_transient;
  return settled.result;
}

CampaignReport Campaign::run(const std::vector<TargetDomain>& targets) {
  return run(VectorTargetSource(targets));
}

WaveSliceResult Campaign::run_wave_slice(std::span<const WaveItem> items,
                                         std::size_t base,
                                         const WaveContext& ctx) {
  WaveSliceResult out;
  out.outcomes.reserve(items.size());
  util::SimClock::Lane clock_lane(clock_);
  dns::AuthoritativeServer::LogLane log_lane(server_, out.log);
  std::optional<obs::MetricsLane> metrics_lane;
  if (ctx.metrics) metrics_lane.emplace(out.metrics);
  net::Transport transport(clock_);
  Prober prober(config_.prober, server_, transport);  // one per slice, reused

  // Wave 1: NoMsg over the slice. Label slots and trace lanes derive from the
  // master-order position base + k, never from the slice layout.
  std::vector<std::size_t> want_blankmsg;
  for (std::size_t k = 0; k < items.size(); ++k) {
    const std::size_t i = base + k;
    const auto& [address, recipient] = items[k];
    clock_.advance_by(ctx.per_test_advance);
    AddressOutcome outcome;
    outcome.address = address;

    mta::MailHost* host = registry_.find_host(address);
    if (host == nullptr) {
      outcome.verdict = AddressVerdict::Refused;
      out.outcomes.push_back(std::move(outcome));
      continue;
    }

    std::optional<net::WireTrace::Lane> lane;
    if (ctx.tracing) lane.emplace(out.wave1, 2 * i, clock_);
    const dns::Name mail_from = labels_.indexed_mail_from(2 * i, ctx.suite);
    const ProbeResult nomsg =
        probe_settled(prober, *host, recipient, mail_from, TestKind::NoMsg,
                      ctx.round, outcome, out.deg);
    lane.reset();
    registry_.release_host(address);
    outcome.nomsg = nomsg;

    switch (nomsg.status) {
      case ProbeStatus::ConnectionRefused:
        outcome.verdict = AddressVerdict::Refused;
        break;
      case ProbeStatus::SpfMeasured:
        outcome.verdict = AddressVerdict::Measured;
        outcome.behaviors = nomsg.behaviors;
        // The paper retried almost all NoMsg successes with BlankMsg too —
        // but only those that had NOT yet yielded a conclusive measurement
        // feed wave 2 here.
        break;
      case ProbeStatus::SpfNotMeasured:
        outcome.verdict = AddressVerdict::NotMeasured;
        want_blankmsg.push_back(k);
        break;
      case ProbeStatus::Greylisted:  // retries exhausted
      case ProbeStatus::TempFailed:
      case ProbeStatus::Dropped:
      case ProbeStatus::SmtpFailure:
        outcome.verdict = AddressVerdict::SmtpFailure;
        // A mid-dialog failure can still be followed by a BlankMsg attempt
        // when the failure left room for SPF-after-DATA (e.g. the RCPT
        // ladder ran dry): the paper's wave 2 covered those too.
        if (nomsg.failing_code == 550) want_blankmsg.push_back(k);
        break;
    }
    out.outcomes.push_back(std::move(outcome));
  }

  // Wave 2: BlankMsg for addresses that accepted SMTP but showed no SPF.
  for (const std::size_t k : want_blankmsg) {
    const std::size_t i = base + k;
    clock_.advance_by(ctx.per_test_advance);
    AddressOutcome& outcome = out.outcomes[k];
    mta::MailHost* host = registry_.find_host(outcome.address);
    if (host == nullptr) continue;

    std::optional<net::WireTrace::Lane> lane;
    if (ctx.tracing) lane.emplace(out.wave2, 2 * i + 1, clock_);
    const dns::Name mail_from = labels_.indexed_mail_from(2 * i + 1, ctx.suite);
    const ProbeResult blankmsg =
        probe_settled(prober, *host, items[k].recipient, mail_from,
                      TestKind::BlankMsg, ctx.round, outcome, out.deg);
    lane.reset();
    registry_.release_host(outcome.address);
    outcome.blankmsg = blankmsg;

    if (blankmsg.status == ProbeStatus::SpfMeasured) {
      outcome.verdict = AddressVerdict::Measured;
      outcome.behaviors.insert(blankmsg.behaviors.begin(),
                               blankmsg.behaviors.end());
    } else if (outcome.verdict == AddressVerdict::NotMeasured &&
               blankmsg.status == ProbeStatus::SmtpFailure) {
      outcome.verdict = AddressVerdict::SmtpFailure;
    }
  }
  out.advance = clock_lane.offset();
  return out;
}

RequeueSliceResult Campaign::run_requeue_slice(
    std::span<const RequeueItem> items, const WaveContext& ctx) {
  RequeueSliceResult out;
  out.outcomes.reserve(items.size());
  util::SimClock::Lane clock_lane(clock_);
  dns::AuthoritativeServer::LogLane log_lane(server_, out.log);
  std::optional<obs::MetricsLane> metrics_lane;
  if (ctx.metrics) metrics_lane.emplace(out.metrics);
  net::Transport transport(clock_);
  Prober prober(config_.prober, server_, transport);
  for (const RequeueItem& rq : items) {
    const std::size_t i = rq.index;
    const std::string_view recipient_domain = rq.item.recipient;
    AddressOutcome outcome = rq.outcome;
    mta::MailHost* host = registry_.find_host(rq.item.address);
    if (host == nullptr) {
      out.outcomes.push_back(std::move(outcome));
      continue;
    }

    const TestKind pending = *outcome.pending_transient();
    if (pending == TestKind::NoMsg) {
      clock_.advance_by(ctx.per_test_advance);
      std::optional<net::WireTrace::Lane> lane;
      if (ctx.tracing) lane.emplace(out.trace, 2 * i, clock_);
      const dns::Name mail_from = labels_.indexed_mail_from(2 * i, ctx.suite);
      const ProbeResult nomsg =
          probe_settled(prober, *host, recipient_domain, mail_from,
                        TestKind::NoMsg, ctx.round, outcome, out.deg);
      lane.reset();
      outcome.nomsg = nomsg;
      switch (nomsg.status) {
        case ProbeStatus::ConnectionRefused:
          outcome.verdict = AddressVerdict::Refused;
          break;
        case ProbeStatus::SpfMeasured:
          outcome.verdict = AddressVerdict::Measured;
          outcome.behaviors = nomsg.behaviors;
          break;
        case ProbeStatus::SpfNotMeasured:
          outcome.verdict = AddressVerdict::NotMeasured;
          break;
        case ProbeStatus::Greylisted:
        case ProbeStatus::TempFailed:
        case ProbeStatus::Dropped:
        case ProbeStatus::SmtpFailure:
          outcome.verdict = AddressVerdict::SmtpFailure;
          break;
      }
    }
    // A settled NoMsg that wants the message-bearing test (either it just
    // recovered to "no SPF seen", or BlankMsg itself was the stuck test)
    // gets the wave-2 treatment inline.
    const bool want_blank =
        pending == TestKind::BlankMsg ||
        (outcome.nomsg && !is_transient(outcome.nomsg->status) &&
         (outcome.nomsg->status == ProbeStatus::SpfNotMeasured ||
          outcome.nomsg->failing_code == 550));
    if (want_blank) {
      clock_.advance_by(ctx.per_test_advance);
      std::optional<net::WireTrace::Lane> lane;
      if (ctx.tracing) lane.emplace(out.trace, 2 * i + 1, clock_);
      const dns::Name mail_from =
          labels_.indexed_mail_from(2 * i + 1, ctx.suite);
      const ProbeResult blankmsg =
          probe_settled(prober, *host, recipient_domain, mail_from,
                        TestKind::BlankMsg, ctx.round, outcome, out.deg);
      lane.reset();
      outcome.blankmsg = blankmsg;
      if (blankmsg.status == ProbeStatus::SpfMeasured) {
        outcome.verdict = AddressVerdict::Measured;
        outcome.behaviors.insert(blankmsg.behaviors.begin(),
                                 blankmsg.behaviors.end());
      } else if (outcome.verdict == AddressVerdict::NotMeasured &&
                 blankmsg.status == ProbeStatus::SmtpFailure) {
        outcome.verdict = AddressVerdict::SmtpFailure;
      }
    }
    registry_.release_host(rq.item.address);
    if (!outcome.pending_transient()) ++out.recovered;
    out.outcomes.push_back(std::move(outcome));
  }
  out.advance = clock_lane.offset();
  return out;
}

CampaignReport Campaign::run(const TargetSource& targets) {
  CampaignReport report;
  report.suite_label = labels_.new_suite();
  const std::uint64_t round = next_round_++;
  report.degradation.configured_rate = plan_.config().rate;

  // 1. Deduplicate addresses, remembering a recipient domain for each (the
  //    first domain that listed the address — used for RCPT TO). Domain names
  //    are interned once (DESIGN.md §14): the dedupe map carries a 4-byte
  //    Symbol per address instead of a heap string copy.
  util::Interner recipients;
  std::unordered_map<util::IpAddress, util::Symbol, util::IpAddressHash>
      recipient_for;
  recipient_for.reserve(targets.address_upper_bound());
  targets.for_each([&](std::string_view domain,
                       std::span<const util::IpAddress> addresses) {
    if (addresses.empty()) return;
    const util::Symbol name = recipients.intern(domain);
    for (const auto& address : addresses) {
      recipient_for.emplace(address, name);
    }
  });

  // The sharded work list, in ascending address order. Shards are contiguous
  // slices of this list, so every address (and with it every host: hosts are
  // keyed by address) belongs to exactly one worker, and the merge below
  // reassembles results in address order — bit-identical at any thread
  // count. Probe labels derive from the position in this list, never from
  // allocation order.
  std::vector<const std::pair<const util::IpAddress, util::Symbol>*> order;
  order.reserve(recipient_for.size());
  for (const auto& entry : recipient_for) order.push_back(&entry);
  std::sort(order.begin(), order.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });

  // 2+3. The two probe waves, sharded. The concurrency cap means wall-clock
  //    advances by (gap / cap) per test on average; each worker accumulates
  //    that 250-lane model on a private clock lane, and the lane offsets sum
  //    to exactly the serial advance.
  const util::SimTime per_test_advance =
      std::max<util::SimTime>(1, config_.inter_connection_gap /
                                     config_.max_concurrent_connections);

  WaveContext ctx;
  ctx.suite = report.suite_label;
  ctx.round = round;
  ctx.per_test_advance = per_test_advance;
  ctx.tracing = config_.trace != nullptr;
  ctx.metrics = config_.metrics != nullptr;

  // The master work list as slice-ready items: views into the interner above,
  // which outlives every slice call in this function.
  std::vector<WaveItem> items;
  items.reserve(order.size());
  for (const auto* entry : order) {
    items.push_back(WaveItem{entry->first, recipients.view(entry->second)});
  }

  std::optional<util::ThreadPool> owned_pool;
  util::ThreadPool* pool = config_.pool;
  if (config_.runner == nullptr && pool == nullptr) {
    owned_pool.emplace(config_.threads);
    pool = &*owned_pool;
  }

  std::vector<WaveSliceResult> slices;
  if (config_.runner != nullptr) {
    slices = config_.runner->run_wave(*this, items, ctx);
  } else {
    slices.resize(pool->shard_count(items.size()));
    pool->parallel_for_shards(
        items.size(),
        [&](std::size_t shard, std::size_t begin, std::size_t end) {
          slices[shard] = run_wave_slice(
              std::span<const WaveItem>(items).subspan(begin, end - begin),
              begin, ctx);
        });
  }

  // Merge: fold lane clocks back into the shared one (the sum reproduces the
  // serial advance), drain lane query logs in slice — i.e. address — order,
  // and reassemble the report.
  util::SimTime total_advance = 0;
  report.addresses.reserve(order.size());
  for (auto& slice : slices) {
    total_advance += slice.advance;
    server_.query_log().splice(std::move(slice.log));
    report.degradation.merge(slice.deg);
    if (config_.metrics != nullptr) config_.metrics->merge(slice.metrics);
    for (auto& outcome : slice.outcomes) {
      const util::IpAddress address = outcome.address;
      report.addresses.emplace(address, std::move(outcome));
    }
  }
  clock_.advance_by(total_advance);

  // Canonical trace order is wave-major, then master (address) order within
  // the wave — exactly the sequence a single-threaded run records.
  if (ctx.tracing) {
    for (auto& slice : slices) config_.trace->splice(std::move(slice.wave1));
    for (auto& slice : slices) config_.trace->splice(std::move(slice.wave2));
  }

  // 3b. Circuit breaker + inconclusive re-queue wave (fault layer only).
  //
  // Addresses whose retries exhausted mid-wave get one more pass after a
  // cool-down — unless their provider group (/24) looks systemically sick,
  // in which case the breaker opens and the group is skipped. Group stats
  // come from the complete merged wave results, so the decision (and with it
  // the whole report) is independent of the thread count.
  if (plan_.enabled()) {
    std::unordered_map<std::uint64_t, std::pair<std::size_t, std::size_t>>
        group_stats;  // group -> {tested, transient}
    for (const auto* entry : order) {
      const auto it = report.addresses.find(entry->first);
      if (it == report.addresses.end()) continue;
      auto& stats = group_stats[provider_group(entry->first)];
      ++stats.first;
      if (it->second.pending_transient()) ++stats.second;
    }
    std::unordered_set<std::uint64_t> open_groups;
    for (const auto& [group, stats] : group_stats) {
      const auto [tested, transient] = stats;
      if (transient >= static_cast<std::size_t>(config_.breaker_min_transient) &&
          static_cast<double>(transient) >=
              config_.breaker_min_share * static_cast<double>(tested)) {
        open_groups.insert(group);
      }
    }
    report.degradation.breaker_trips += open_groups.size();

    // Re-queue candidates, in master (address) order so labels and fault
    // keys line up across thread counts.
    std::vector<std::size_t> requeue;
    for (std::size_t i = 0; i < order.size(); ++i) {
      const auto it = report.addresses.find(order[i]->first);
      if (it == report.addresses.end()) continue;
      if (!it->second.pending_transient()) continue;
      if (open_groups.count(provider_group(order[i]->first)) > 0) {
        ++report.degradation.breaker_skipped;
        continue;
      }
      requeue.push_back(i);
    }

    if (!requeue.empty()) {
      clock_.advance_by(config_.requeue_backoff);
      std::vector<RequeueItem> rq_items;
      rq_items.reserve(requeue.size());
      for (const std::size_t i : requeue) {
        RequeueItem item;
        item.index = i;
        item.item = items[i];
        item.outcome = report.addresses.find(items[i].address)->second;
        rq_items.push_back(std::move(item));
      }

      std::vector<RequeueSliceResult> rq_slices;
      if (config_.runner != nullptr) {
        rq_slices = config_.runner->run_requeue(*this, rq_items, ctx);
      } else {
        rq_slices.resize(pool->shard_count(rq_items.size()));
        pool->parallel_for_shards(
            rq_items.size(),
            [&](std::size_t shard, std::size_t begin, std::size_t end) {
              rq_slices[shard] = run_requeue_slice(
                  std::span<const RequeueItem>(rq_items).subspan(begin,
                                                                 end - begin),
                  ctx);
            });
      }

      util::SimTime rq_advance = 0;
      for (auto& slice : rq_slices) {
        rq_advance += slice.advance;
        server_.query_log().splice(std::move(slice.log));
        report.degradation.merge(slice.deg);
        report.degradation.requeue_recovered += slice.recovered;
        if (ctx.tracing) config_.trace->splice(std::move(slice.trace));
        if (config_.metrics != nullptr) config_.metrics->merge(slice.metrics);
        for (auto& outcome : slice.outcomes) {
          report.addresses.find(outcome.address)->second = std::move(outcome);
        }
      }
      clock_.advance_by(rq_advance);
      report.degradation.requeued += requeue.size();
    }
  }

  // Final degradation accounting: every address that ever went transient is
  // either recovered (settled) or exhausted (still pending) — the invariant
  // the test suite checks.
  for (const auto& [address, outcome] : report.addresses) {
    ++report.degradation.addresses_tested;
    if (outcome.conclusive()) ++report.degradation.conclusive;
    if (outcome.saw_transient) {
      ++report.degradation.transient_addresses;
      if (outcome.pending_transient()) {
        ++report.degradation.exhausted;
      } else {
        ++report.degradation.recovered;
      }
    }
  }

  // Serial round roll-up into the master registry: counters accumulate
  // across rounds, the gauges snapshot this round (the per-round JSONL
  // stream is what gives them a time axis).
  if (config_.metrics != nullptr) {
    obs::Registry& m = *config_.metrics;
    m.counter("campaign_rounds_total") += 1;
    m.counter("campaign_addresses_tested_total") +=
        report.degradation.addresses_tested;
    m.counter("campaign_conclusive_total") += report.degradation.conclusive;
    m.counter("campaign_breaker_trips_total") +=
        report.degradation.breaker_trips;
    m.counter("campaign_requeued_total") += report.degradation.requeued;
    m.counter("campaign_requeue_recovered_total") +=
        report.degradation.requeue_recovered;
    m.gauge("campaign_round_addresses") =
        static_cast<std::int64_t>(report.degradation.addresses_tested);
    m.gauge("campaign_round_conclusive") =
        static_cast<std::int64_t>(report.degradation.conclusive);
  }

  // 4. Domain roll-up: a second streaming walk over the same source.
  report.domains.reserve(targets.domain_count());
  targets.for_each([&](std::string_view domain,
                       std::span<const util::IpAddress> addresses) {
    DomainOutcome domain_outcome;
    domain_outcome.domain = std::string(domain);
    domain_outcome.addresses.assign(addresses.begin(), addresses.end());
    for (const auto& address : addresses) {
      const auto it = report.addresses.find(address);
      if (it == report.addresses.end()) continue;
      const AddressOutcome& outcome = it->second;
      if (outcome.verdict == AddressVerdict::Refused) {
        domain_outcome.any_refused = true;
      }
      if (outcome.conclusive()) {
        domain_outcome.any_measured = true;
        domain_outcome.behaviors.insert(outcome.behaviors.begin(),
                                        outcome.behaviors.end());
      }
      if (outcome.vulnerable()) domain_outcome.vulnerable = true;
    }
    report.domains.push_back(std::move(domain_outcome));
  });
  return report;
}

CampaignReport Campaign::run_addresses(
    const std::vector<util::IpAddress>& addresses) {
  std::vector<TargetDomain> targets;
  targets.reserve(addresses.size());
  for (const auto& address : addresses) {
    // Recipient domain is synthesised from the address; longitudinal rounds
    // only need per-address verdicts, not domain roll-ups.
    targets.push_back(TargetDomain{"host-" + address.to_string(), {address}});
  }
  return run(targets);
}

}  // namespace spfail::scan
