#include "scan/prober.hpp"

#include "scan/usernames.hpp"

namespace spfail::scan {

std::string to_string(TestKind kind) {
  return kind == TestKind::NoMsg ? "NoMsg" : "BlankMsg";
}

std::string to_string(ProbeStatus status) {
  switch (status) {
    case ProbeStatus::ConnectionRefused:
      return "connection-refused";
    case ProbeStatus::SmtpFailure:
      return "smtp-failure";
    case ProbeStatus::Greylisted:
      return "greylisted";
    case ProbeStatus::TempFailed:
      return "temp-failed";
    case ProbeStatus::Dropped:
      return "dropped";
    case ProbeStatus::SpfMeasured:
      return "spf-measured";
    case ProbeStatus::SpfNotMeasured:
      return "spf-not-measured";
  }
  return "?";
}

ProbeResult Prober::probe(mta::MailHost& host,
                          const std::string& recipient_domain,
                          const dns::Name& mail_from_domain, TestKind kind,
                          const faults::FaultDecision& fault) {
  ProbeResult result;
  result.kind = kind;
  result.target = host.address();
  result.mail_from_domain = mail_from_domain;
  result.injected = fault.kind;

  // Remember where the query log stood so we only read our own test's
  // entries (the unique label makes collisions impossible anyway; the cursor
  // keeps repeated tests of the same label honest).
  const std::size_t log_cursor = server_.query_log().size();

  auto session = host.connect(config_.scanner_address);
  if (!session.has_value()) {
    result.status = ProbeStatus::ConnectionRefused;
    return result;
  }

  // Each SMTP exchange costs a little simulated time.
  const auto step = [&] { clock_.advance_by(1); };

  // A latency spike stretches the dialog but changes nothing else.
  if (fault.kind == faults::FaultKind::LatencySpike) {
    clock_.advance_by(fault.latency);
  }

  // Injected network failures preempt the host at the chosen stage: the
  // command is charged (step) but never reaches the MTA.
  const auto inject_here = [&](faults::SmtpStage stage) {
    if (!fault.fails_probe() || fault.stage != stage) return false;
    step();
    if (fault.kind == faults::FaultKind::SmtpTempfail) {
      result.failing_code = fault.smtp_code;
      result.status = ProbeStatus::TempFailed;
    } else {
      session->force_close();
      result.status = ProbeStatus::Dropped;
    }
    return true;
  };

  const auto finish_with_log_verdict = [&](bool dialog_ok, int code) {
    // Read the authoritative log for this test's unique domain (in sharded
    // runs this is the worker's lane log; same cursor semantics).
    const spfvuln::FingerprintClassifier classifier(mail_from_domain,
                                                    config_.responder.macro);
    server_.query_log().for_each_under_from(
        log_cursor, mail_from_domain, [&](const dns::QueryLogEntry& entry) {
          if (entry.qname == mail_from_domain &&
              entry.qtype == dns::RRType::TXT) {
            result.saw_policy_fetch = true;
            return;
          }
          const auto behavior = classifier.classify(entry.qname);
          if (behavior.has_value()) result.behaviors.insert(*behavior);
        });
    if (!result.behaviors.empty()) {
      result.status = ProbeStatus::SpfMeasured;
    } else if (dialog_ok) {
      result.status = ProbeStatus::SpfNotMeasured;
    } else {
      result.failing_code = code;
      result.status = ProbeStatus::SmtpFailure;
    }
  };

  // --- HELO ---
  if (inject_here(faults::SmtpStage::Helo)) return result;
  step();
  const smtp::Reply banner = session->greeting();
  if (!banner.positive()) {
    finish_with_log_verdict(false, banner.code);
    return result;
  }
  step();
  const smtp::Reply hello = session->respond("EHLO " + config_.helo_identity);
  if (!hello.positive()) {
    finish_with_log_verdict(false, hello.code);
    return result;
  }

  // --- MAIL FROM (this is where the unique domain goes) ---
  if (inject_here(faults::SmtpStage::MailFrom)) return result;
  step();
  const std::string mail_from = std::string(kUsernameLadder[0]) + "@" +
                                mail_from_domain.to_string();
  const smtp::Reply mail = session->respond("MAIL FROM:<" + mail_from + ">");
  if (mail.code == 451) {
    result.status = ProbeStatus::Greylisted;
    return result;
  }
  if (mail.code == 450) {
    // 450 4.4.3-style temporary lookup failure (the host's resolver path
    // hiccuped) — transient, worth a retry.
    result.failing_code = mail.code;
    result.status = ProbeStatus::TempFailed;
    return result;
  }
  if (!mail.positive()) {
    // Rejection after MAIL FROM frequently *is* the SPF check firing
    // (the served policy ends in -all on purpose); the log decides.
    finish_with_log_verdict(false, mail.code);
    return result;
  }

  // --- RCPT TO: walk the username ladder until one is accepted ---
  if (inject_here(faults::SmtpStage::RcptTo)) return result;
  bool rcpt_accepted = false;
  int last_code = 0;
  for (const std::string_view username : kUsernameLadder) {
    step();
    const smtp::Reply rcpt = session->respond(
        "RCPT TO:<" + std::string(username) + "@" + recipient_domain + ">");
    last_code = rcpt.code;
    if (rcpt.positive()) {
      rcpt_accepted = true;
      result.accepted_username = std::string(username);
      break;
    }
    if (rcpt.code == 451) {
      result.status = ProbeStatus::Greylisted;
      return result;
    }
    if (rcpt.code == 450) {
      result.failing_code = rcpt.code;
      result.status = ProbeStatus::TempFailed;
      return result;
    }
    if (rcpt.code == 421 || session->closed()) {
      finish_with_log_verdict(false, rcpt.code);
      return result;
    }
  }
  if (!rcpt_accepted) {
    finish_with_log_verdict(false, last_code);
    return result;
  }

  // --- DATA ---
  if (inject_here(faults::SmtpStage::Data)) return result;
  step();
  const smtp::Reply data = session->respond("DATA");
  if (!data.intermediate()) {
    finish_with_log_verdict(false, data.code);
    return result;
  }

  if (kind == TestKind::NoMsg) {
    // Terminate before transmitting any message content: drop the
    // connection. Nothing can possibly be delivered.
    finish_with_log_verdict(true, 0);
    return result;
  }

  // BlankMsg: transmit the end-of-data marker immediately — an entirely
  // empty message (no headers, no subject, no body). A rejection of the
  // blank message is still an SMTP failure for funnel accounting (though
  // any SPF queries already issued decide the verdict first).
  step();
  const smtp::Reply accepted = session->respond(".");
  step();
  session->respond("QUIT");
  finish_with_log_verdict(accepted.positive(), accepted.code);
  return result;
}

}  // namespace spfail::scan
