#include "scan/prober.hpp"

#include <optional>

#include "obs/lane.hpp"
#include "scan/usernames.hpp"

namespace spfail::scan {

std::string to_string(TestKind kind) {
  return kind == TestKind::NoMsg ? "NoMsg" : "BlankMsg";
}

std::string to_string(ProbeStatus status) {
  switch (status) {
    case ProbeStatus::ConnectionRefused:
      return "connection-refused";
    case ProbeStatus::SmtpFailure:
      return "smtp-failure";
    case ProbeStatus::Greylisted:
      return "greylisted";
    case ProbeStatus::TempFailed:
      return "temp-failed";
    case ProbeStatus::Dropped:
      return "dropped";
    case ProbeStatus::SpfMeasured:
      return "spf-measured";
    case ProbeStatus::SpfNotMeasured:
      return "spf-not-measured";
  }
  return "?";
}

ProbeResult Prober::probe(mta::MailHost& host,
                          const std::string& recipient_domain,
                          const dns::Name& mail_from_domain, TestKind kind,
                          const faults::FaultDecision& fault) {
  ProbeResult result;
  result.kind = kind;
  result.target = host.address();
  result.mail_from_domain = mail_from_domain;
  result.injected = fault.kind;

  // Remember where the query log stood so we only read our own test's
  // entries (the unique label makes collisions impossible anyway; the cursor
  // keeps repeated tests of the same label honest).
  const std::size_t log_cursor = server_.query_log().size();

  // Each dialog stage runs under a ScopedTimer charged to the simulated
  // clock; a stage that returns early (fault, rejection) still closes its
  // scope, so the stage histograms cover failed dialogs too.
  const auto sim_now = [this] { return transport_.now(); };

  auto session = [&]() -> std::optional<smtp::ServerSession> {
    const obs::ScopedTimer timer("probe_stage_sim_seconds", sim_now,
                                 {{"stage", "connect"}});
    return host.connect(config_.scanner_address);
  }();
  if (!session.has_value()) {
    result.status = ProbeStatus::ConnectionRefused;
    return result;
  }

  // The transport owns dialog timing (per-frame cost), fault application
  // (tempfails/drops fire at their stage inside the channel; a latency
  // spike is charged at connection setup) and wire-frame capture.
  net::SmtpChannel channel =
      transport_.open(*session, net::Endpoint::ip(config_.scanner_address),
                      net::Endpoint::ip(host.address()), fault);

  // An exchange the channel's fault preempted ends the dialog: the failure
  // is the network's, not the host's.
  const auto faulted = [&](const smtp::Reply& reply) {
    if (channel.dropped()) {
      result.status = ProbeStatus::Dropped;
      return true;
    }
    if (channel.last_injected()) {
      result.failing_code = reply.code;
      result.status = ProbeStatus::TempFailed;
      return true;
    }
    return false;
  };

  const auto finish_with_log_verdict = [&](bool dialog_ok, int code) {
    // Read the authoritative log for this test's unique domain (in sharded
    // runs this is the worker's lane log; same cursor semantics).
    const spfvuln::FingerprintClassifier classifier(mail_from_domain,
                                                    config_.responder.macro);
    server_.query_log().for_each_under_from(
        log_cursor, mail_from_domain, [&](const dns::QueryLogEntry& entry) {
          if (entry.qname == mail_from_domain &&
              entry.qtype == dns::RRType::TXT) {
            result.saw_policy_fetch = true;
            return;
          }
          const auto behavior = classifier.classify(entry.qname);
          if (behavior.has_value()) result.behaviors.insert(*behavior);
        });
    if (!result.behaviors.empty()) {
      result.status = ProbeStatus::SpfMeasured;
    } else if (dialog_ok) {
      result.status = ProbeStatus::SpfNotMeasured;
    } else {
      result.failing_code = code;
      result.status = ProbeStatus::SmtpFailure;
    }
  };

  // --- HELO ---
  {
    const obs::ScopedTimer timer("probe_stage_sim_seconds", sim_now,
                                 {{"stage", "helo"}});
    const smtp::Reply banner = channel.greeting();
    if (faulted(banner)) return result;
    if (!banner.positive()) {
      finish_with_log_verdict(false, banner.code);
      return result;
    }
    const smtp::Reply hello = channel.send("EHLO " + config_.helo_identity);
    if (!hello.positive()) {
      finish_with_log_verdict(false, hello.code);
      return result;
    }
  }

  // --- MAIL FROM (this is where the unique domain goes) ---
  {
    const obs::ScopedTimer timer("probe_stage_sim_seconds", sim_now,
                                 {{"stage", "mail"}});
    const std::string mail_from = std::string(kUsernameLadder[0]) + "@" +
                                  mail_from_domain.to_string();
    const smtp::Reply mail = channel.send("MAIL FROM:<" + mail_from + ">");
    if (faulted(mail)) return result;
    if (mail.code == 451) {
      result.status = ProbeStatus::Greylisted;
      return result;
    }
    if (mail.code == 450) {
      // 450 4.4.3-style temporary lookup failure (the host's resolver path
      // hiccuped) — transient, worth a retry.
      result.failing_code = mail.code;
      result.status = ProbeStatus::TempFailed;
      return result;
    }
    if (!mail.positive()) {
      // Rejection after MAIL FROM frequently *is* the SPF check firing
      // (the served policy ends in -all on purpose); the log decides.
      finish_with_log_verdict(false, mail.code);
      return result;
    }
  }

  // --- RCPT TO: walk the username ladder until one is accepted ---
  bool rcpt_accepted = false;
  int last_code = 0;
  {
    const obs::ScopedTimer timer("probe_stage_sim_seconds", sim_now,
                                 {{"stage", "rcpt"}});
    for (const std::string_view username : kUsernameLadder) {
      const smtp::Reply rcpt = channel.send(
          "RCPT TO:<" + std::string(username) + "@" + recipient_domain + ">");
      if (faulted(rcpt)) return result;
      last_code = rcpt.code;
      if (rcpt.positive()) {
        rcpt_accepted = true;
        result.accepted_username = std::string(username);
        break;
      }
      if (rcpt.code == 451) {
        result.status = ProbeStatus::Greylisted;
        return result;
      }
      if (rcpt.code == 450) {
        result.failing_code = rcpt.code;
        result.status = ProbeStatus::TempFailed;
        return result;
      }
      if (rcpt.code == 421 || channel.closed()) {
        finish_with_log_verdict(false, rcpt.code);
        return result;
      }
    }
    if (!rcpt_accepted) {
      finish_with_log_verdict(false, last_code);
      return result;
    }
  }

  // --- DATA ---
  const obs::ScopedTimer timer("probe_stage_sim_seconds", sim_now,
                               {{"stage", "data"}});
  const smtp::Reply data = channel.send("DATA");
  if (faulted(data)) return result;
  if (!data.intermediate()) {
    finish_with_log_verdict(false, data.code);
    return result;
  }

  if (kind == TestKind::NoMsg) {
    // Terminate before transmitting any message content: drop the
    // connection. Nothing can possibly be delivered.
    finish_with_log_verdict(true, 0);
    return result;
  }

  // BlankMsg: transmit the end-of-data marker immediately — an entirely
  // empty message (no headers, no subject, no body). A rejection of the
  // blank message is still an SMTP failure for funnel accounting (though
  // any SPF queries already issued decide the verdict first).
  const smtp::Reply accepted = channel.send(".");
  channel.send("QUIT");
  finish_with_log_verdict(accepted.positive(), accepted.code);
  return result;
}

}  // namespace spfail::scan
