#include "scan/test_responder.hpp"

namespace spfail::scan {

std::string test_policy_text(const TestResponderConfig& config,
                             const dns::Name& mail_from_domain) {
  const std::string domain = mail_from_domain.to_string();
  return "v=spf1 a:" + config.macro + "." + domain + " a:b." + domain +
         " -all";
}

TestResponderConfig install_test_responder(dns::AuthoritativeServer& server,
                                           TestResponderConfig config) {
  const TestResponderConfig installed = config;
  server.add_responder(
      installed.base,
      [installed](const dns::Name& qname, dns::RRType qtype)
          -> std::optional<std::vector<dns::ResourceRecord>> {
        const auto relative = qname.labels_relative_to(installed.base);
        switch (qtype) {
          case dns::RRType::TXT: {
            // Serve the templated policy for <id>.<suite> fetches; serve the
            // probe-mail rejection DMARC policy (§6.2) for _dmarc fetches;
            // TXT for probe names (deeper labels) answers NODATA.
            if (relative.size() == 2) {
              return std::vector{dns::ResourceRecord::txt(
                  qname, test_policy_text(installed, qname))};
            }
            if (!relative.empty() && relative.front() == "_dmarc") {
              return std::vector{
                  dns::ResourceRecord::txt(qname, "v=DMARC1; p=reject")};
            }
            return std::vector<dns::ResourceRecord>{};
          }
          case dns::RRType::A:
            if (relative.empty()) return std::vector<dns::ResourceRecord>{};
            return std::vector{
                dns::ResourceRecord::a(qname, installed.answer_v4)};
          case dns::RRType::AAAA:
            // NODATA: the scan runs over v4, and v6 probes add no signal.
            return std::vector<dns::ResourceRecord>{};
          case dns::RRType::MX:
            return std::vector<dns::ResourceRecord>{};
          default:
            return std::vector<dns::ResourceRecord>{};
        }
      });
  return installed;
}

}  // namespace spfail::scan
