#include "scan/labels.hpp"

namespace spfail::scan {

std::string LabelAllocator::new_suite() {
  while (true) {
    std::string suite = "t" + rng_.token(3);
    if (issued_suites_.insert(suite).second) return suite;
  }
}

std::string LabelAllocator::new_id() {
  while (true) {
    // 4- or 5-character alphanumeric, as in the paper.
    std::string id = rng_.token(rng_.bernoulli(0.5) ? 4 : 5);
    if (issued_ids_.insert(id).second) return id;
  }
}

dns::Name LabelAllocator::mail_from_domain(const std::string& id,
                                           const std::string& suite) const {
  return base_.child(suite).child(id);
}

}  // namespace spfail::scan
