#include "scan/labels.hpp"

#include <stdexcept>

namespace spfail::scan {

namespace {

constexpr std::uint64_t kSlotBits = 25;
constexpr std::uint64_t kSlotMask = (1ULL << kSlotBits) - 1;

// Invertible mixing of a 25-bit value, keyed: odd multiplication mod 2^25,
// xor-shift, and keyed addition are each bijections on [0, 2^25).
constexpr std::uint64_t permute_slot(std::uint64_t x,
                                     std::uint64_t key) noexcept {
  for (int round = 0; round < 3; ++round) {
    x = (x * 0x9E3779B1ULL) & kSlotMask;  // odd => invertible mod 2^25
    x ^= x >> 13;
    x = (x + (key >> (round * 21))) & kSlotMask;
  }
  return x;
}

}  // namespace

LabelAllocator::LabelAllocator(util::Rng rng, dns::Name base)
    : rng_(std::move(rng)), base_(std::move(base)) {
  // Key the indexed-id bijection off a labelled fork so the draw stays
  // stable no matter how many suites/ids are allocated later.
  index_key_ = rng_.fork("indexed-ids")();
}

std::string LabelAllocator::indexed_id(std::uint64_t slot) const {
  if (slot > kSlotMask) {
    throw std::out_of_range("LabelAllocator::indexed_id: slot exceeds 2^25");
  }
  std::uint64_t mixed = permute_slot(slot, index_key_);
  // Same base-32 alphabet as util::Rng::token — 5 chars hold the 25 bits.
  static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz234567";
  std::string id(5, 'a');
  for (std::size_t i = 0; i < id.size(); ++i) {
    id[i] = kAlphabet[mixed & 31];
    mixed >>= 5;
  }
  return id;
}

std::string LabelAllocator::new_suite() {
  while (true) {
    std::string suite = "t" + rng_.token(3);
    if (issued_suites_.insert(suite).second) return suite;
  }
}

std::string LabelAllocator::new_id() {
  while (true) {
    // 4- or 5-character alphanumeric, as in the paper.
    std::string id = rng_.token(rng_.bernoulli(0.5) ? 4 : 5);
    if (issued_ids_.insert(id).second) return id;
  }
}

dns::Name LabelAllocator::mail_from_domain(const std::string& id,
                                           const std::string& suite) const {
  return base_.child(suite).child(id);
}

}  // namespace spfail::scan
