#include "scan/probe_engine.hpp"

#include "obs/lane.hpp"

namespace spfail::scan {

ProbeOutcome ProbeEngine::run(Prober& prober, mta::MailHost& host,
                              const ProbeRequest& request,
                              faults::DegradationReport& deg) const {
  ProbeOutcome outcome;
  for (;;) {
    const faults::FaultDecision fault = plan_.probe_decision(
        request.address, request.fault_round,
        request.first_attempt + static_cast<std::uint64_t>(outcome.attempts));
    switch (fault.kind) {
      case faults::FaultKind::SmtpTempfail:
        ++deg.injected_tempfail;
        break;
      case faults::FaultKind::ConnectionDrop:
        ++deg.injected_drop;
        break;
      case faults::FaultKind::LatencySpike:
        ++deg.injected_latency;
        deg.latency_injected += fault.latency;
        break;
      default:
        break;
    }
    const dns::Name& mail_from =
        outcome.attempts == 0 ? request.mail_from : request.retry_mail_from;
    ++outcome.attempts;
    ++deg.probe_attempts;
    obs::count("probe_attempts_total", {{"test", to_string(request.kind)}});
    outcome.result = prober.probe(host, request.recipient_domain, mail_from,
                                  request.kind, fault);
    if (!is_transient(outcome.result.status)) break;
    outcome.saw_transient = true;
    if (!retry_.allow_retry(outcome.attempts,
                            request.retry_budget - outcome.retries)) {
      break;
    }
    ++outcome.retries;
    ++deg.retries;
    obs::count("probe_retries_total");
    // The paper: wait out a backoff (eight minutes for a plain greylist)
    // before re-attempting. Charged to this worker's clock lane.
    clock_.advance_by(retry_.backoff(request.address, request.fault_round,
                                     outcome.attempts - 1));
  }
  obs::count("probe_outcomes_total",
             {{"status", to_string(outcome.result.status)}});
  return outcome;
}

}  // namespace spfail::scan
