// A measurement campaign: the full §5.1/§6.1 procedure over a set of mail
// domains and their MX addresses.
//
// Per round:
//   1. Deduplicate addresses (a host serving many domains is tested once).
//   2. Wave 1: run the NoMsg test against every address, honouring the
//      concurrency cap; greylisted targets are collected, the scanner backs
//      off (8 simulated minutes), and they are retried — matching how a real
//      concurrent scanner batches retries.
//   3. Wave 2: addresses whose NoMsg dialog succeeded but elicited no SPF
//      lookup are retried with BlankMsg.
//   4. Verdicts are rolled up from addresses to domains: a domain is
//      vulnerable if *any* of its addresses is; conclusively non-vulnerable
//      only if all previously-vulnerable addresses now measure compliant.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "scan/prober.hpp"
#include "util/thread_pool.hpp"

namespace spfail::scan {

// Where to find the simulated host behind an address. Implemented by
// population::Fleet; kept abstract so the scanner has no population
// dependency.
class HostRegistry {
 public:
  virtual ~HostRegistry() = default;
  // nullptr means "no host at this address" (connect times out).
  virtual mta::MailHost* find_host(const util::IpAddress& address) = 0;
};

struct TargetDomain {
  std::string domain;
  std::vector<util::IpAddress> addresses;
};

// Final per-address verdict for one round.
enum class AddressVerdict {
  Refused,      // no TCP connection
  SmtpFailure,  // dialog never reached a state where SPF could show
  Measured,     // conclusive: behaviours observed
  NotMeasured,  // SMTP fine but no SPF activity in either test
};

std::string to_string(AddressVerdict verdict);

struct AddressOutcome {
  util::IpAddress address;
  std::optional<ProbeResult> nomsg;
  std::optional<ProbeResult> blankmsg;
  AddressVerdict verdict = AddressVerdict::Refused;
  std::set<spfvuln::SpfBehavior> behaviors;

  bool vulnerable() const {
    return behaviors.count(spfvuln::SpfBehavior::VulnerableLibspf2) > 0;
  }
  bool conclusive() const { return verdict == AddressVerdict::Measured; }
  bool erroneous_but_not_vulnerable() const;
};

struct DomainOutcome {
  std::string domain;
  std::vector<util::IpAddress> addresses;
  bool any_refused = false;
  bool any_measured = false;
  bool vulnerable = false;

  // Observed behaviours over all the domain's addresses.
  std::set<spfvuln::SpfBehavior> behaviors;
};

struct CampaignConfig {
  ProberConfig prober;
  int max_concurrent_connections = 250;          // section 6.1
  util::SimTime inter_connection_gap = 90;       // seconds, same host/domain
  util::SimTime greylist_backoff = 8 * util::kMinute;
  int max_greylist_retries = 1;
  std::uint64_t label_seed = 1;

  // Real worker threads for the sharded scan. 0 resolves SPFAIL_THREADS /
  // hardware concurrency; the report is bit-identical at any count.
  int threads = 0;
  // Optional externally owned pool (the longitudinal study shares one across
  // all its rounds); when null the campaign creates its own per run.
  util::ThreadPool* pool = nullptr;
};

struct CampaignReport {
  std::string suite_label;
  std::unordered_map<util::IpAddress, AddressOutcome, util::IpAddressHash>
      addresses;
  std::vector<DomainOutcome> domains;

  // Outcomes in ascending address order — the stable iteration order for
  // tables, figures, and the longitudinal pipeline (the map itself hashes).
  std::vector<const AddressOutcome*> sorted_outcomes() const;

  // Aggregates.
  std::size_t addresses_tested() const { return addresses.size(); }
  std::size_t count_verdict(AddressVerdict verdict) const;
  std::size_t vulnerable_addresses() const;
  std::size_t vulnerable_domains() const;
};

class Campaign {
 public:
  Campaign(CampaignConfig config, dns::AuthoritativeServer& server,
           util::SimClock& clock, HostRegistry& registry);

  // Run one full measurement round over `targets`.
  CampaignReport run(const std::vector<TargetDomain>& targets);

  // Re-measure only the given addresses (the longitudinal rounds, which per
  // section 6.1 are restricted to previously vulnerable/inconclusive hosts).
  CampaignReport run_addresses(const std::vector<util::IpAddress>& addresses);

 private:
  ProbeResult probe_with_greylist_retry(Prober& prober, mta::MailHost& host,
                                        const std::string& recipient_domain,
                                        const dns::Name& mail_from,
                                        TestKind kind);

  CampaignConfig config_;
  dns::AuthoritativeServer& server_;
  util::SimClock& clock_;
  HostRegistry& registry_;
  LabelAllocator labels_;
};

}  // namespace spfail::scan
