// A measurement campaign: the full §5.1/§6.1 procedure over a set of mail
// domains and their MX addresses.
//
// Per round:
//   1. Deduplicate addresses (a host serving many domains is tested once).
//   2. Wave 1: run the NoMsg test against every address, honouring the
//      concurrency cap; greylisted targets are collected, the scanner backs
//      off (8 simulated minutes), and they are retried — matching how a real
//      concurrent scanner batches retries.
//   3. Wave 2: addresses whose NoMsg dialog succeeded but elicited no SPF
//      lookup are retried with BlankMsg.
//   4. Verdicts are rolled up from addresses to domains: a domain is
//      vulnerable if *any* of its addresses is; conclusively non-vulnerable
//      only if all previously-vulnerable addresses now measure compliant.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "faults/degradation.hpp"
#include "faults/fault.hpp"
#include "faults/retry.hpp"
#include "net/wire_trace.hpp"
#include "obs/metrics.hpp"
#include "scan/probe_engine.hpp"
#include "scan/prober.hpp"
#include "util/thread_pool.hpp"

namespace spfail::scan {

class ShardRunner;

// Where to find the simulated host behind an address. Implemented by
// population::Fleet; kept abstract so the scanner has no population
// dependency.
class HostRegistry {
 public:
  virtual ~HostRegistry() = default;
  // nullptr means "no host at this address" (connect times out).
  virtual mta::MailHost* find_host(const util::IpAddress& address) = 0;

  // Hint that the caller is done probing `address` for now. A lazy registry
  // (population::Fleet in streaming mode, DESIGN.md §14) evicts the
  // materialised host, keeping its scanner-visible residue (greylist map,
  // flaky-RNG cursor, patch/blacklist flags) so a later find_host rebuilds
  // it mid-conversation. The default keeps every host live.
  virtual void release_host(const util::IpAddress& address) { (void)address; }
};

struct TargetDomain {
  std::string domain;
  std::vector<util::IpAddress> addresses;
};

// A streaming view over campaign targets (DESIGN.md §14): the campaign walks
// (domain, addresses) pairs twice — once to dedupe addresses, once for the
// domain roll-up — without ever materialising a vector of TargetDomain
// copies. Implementations yield spans/views into their own storage; both
// walks must yield the same sequence.
class TargetSource {
 public:
  virtual ~TargetSource() = default;
  virtual std::size_t domain_count() const = 0;
  // Total addresses over all domains, duplicates included (reserve sizing).
  virtual std::size_t address_upper_bound() const = 0;
  virtual void for_each(
      const std::function<void(std::string_view domain,
                               std::span<const util::IpAddress> addresses)>& fn)
      const = 0;
};

// Final per-address verdict for one round.
enum class AddressVerdict {
  Refused,      // no TCP connection
  SmtpFailure,  // dialog never reached a state where SPF could show
  Measured,     // conclusive: behaviours observed
  NotMeasured,  // SMTP fine but no SPF activity in either test
};

std::string to_string(AddressVerdict verdict);

struct AddressOutcome {
  util::IpAddress address;
  std::optional<ProbeResult> nomsg;
  std::optional<ProbeResult> blankmsg;
  AddressVerdict verdict = AddressVerdict::Refused;
  std::set<spfvuln::SpfBehavior> behaviors;

  // Retry-engine bookkeeping. `probe_attempts` numbers every SMTP dialog
  // driven at this address during the round (it keys the fault plan, so a
  // re-queue pass continues the attempt sequence instead of replaying it).
  int probe_attempts = 0;
  int retries_used = 0;
  bool saw_transient = false;

  bool vulnerable() const {
    return behaviors.count(spfvuln::SpfBehavior::VulnerableLibspf2) > 0;
  }
  bool conclusive() const { return verdict == AddressVerdict::Measured; }
  bool erroneous_but_not_vulnerable() const;

  // Which test is still stuck on a transient failure, if any — the re-queue
  // wave's candidate set. BlankMsg only runs after a settled NoMsg, so at
  // most one test is pending.
  std::optional<TestKind> pending_transient() const {
    if (blankmsg && is_transient(blankmsg->status)) return TestKind::BlankMsg;
    if (nomsg && is_transient(nomsg->status)) return TestKind::NoMsg;
    return std::nullopt;
  }
};

// One unit of wave work: an address plus the recipient domain for RCPT TO.
// The view aliases storage owned by the caller (the campaign's interner, or
// a dist worker's decoded request) and must outlive the slice call.
struct WaveItem {
  util::IpAddress address;
  std::string_view recipient;
};

// Round-scoped parameters a slice executor needs. Everything here is decided
// serially before the wave fans out, so a slice is a pure function of
// (items, base, ctx) plus the host registry's state.
struct WaveContext {
  std::string suite;                  // this round's probe-label suite
  std::uint64_t round = 0;            // fault-plan round salt
  util::SimTime per_test_advance = 0; // concurrency-cap clock model
  bool tracing = false;
  bool metrics = false;
};

// Everything one wave slice produces. Merging slices in master (address)
// order reproduces the serial run byte-for-byte: advances sum, query logs
// splice in order, degradation counters merge, traces splice wave-major.
struct WaveSliceResult {
  std::vector<AddressOutcome> outcomes;  // in item order for the slice
  dns::QueryLog log;
  util::SimTime advance = 0;
  faults::DegradationReport deg;
  // Per-wave wire captures: frames for this slice's tests, each recorded
  // under the test's master-order lane id (2i NoMsg / 2i+1 BlankMsg) with
  // probe-relative timestamps, so the merged trace never depends on the
  // slice layout.
  net::WireTrace wave1;
  net::WireTrace wave2;
  // Slice-local metric lane, merged into CampaignConfig::metrics in order.
  obs::Registry metrics;
};

// One re-queue candidate: its master-order position (label/lane slot base),
// its wave item, and a copy of its current outcome. The slice mutates the
// copy and hands it back; the campaign writes it over the report entry.
struct RequeueItem {
  std::size_t index = 0;
  WaveItem item;
  AddressOutcome outcome;
};

struct RequeueSliceResult {
  std::vector<AddressOutcome> outcomes;  // mutated copies, in item order
  dns::QueryLog log;
  util::SimTime advance = 0;
  faults::DegradationReport deg;
  std::size_t recovered = 0;
  net::WireTrace trace;
  obs::Registry metrics;
};

struct DomainOutcome {
  std::string domain;
  std::vector<util::IpAddress> addresses;
  bool any_refused = false;
  bool any_measured = false;
  bool vulnerable = false;

  // Observed behaviours over all the domain's addresses.
  std::set<spfvuln::SpfBehavior> behaviors;
};

struct CampaignConfig {
  ProberConfig prober;
  int max_concurrent_connections = 250;          // section 6.1
  util::SimTime inter_connection_gap = 90;       // seconds, same host/domain
  util::SimTime greylist_backoff = 8 * util::kMinute;
  int max_greylist_retries = 1;
  std::uint64_t label_seed = 1;

  // Real worker threads for the sharded scan. 0 resolves SPFAIL_THREADS /
  // hardware concurrency; the report is bit-identical at any count.
  int threads = 0;
  // How waves fan out over those threads (DESIGN.md §16): Static keeps one
  // contiguous slice per worker, Steal (the resolved default) cuts finer
  // batches and lets idle workers steal them. Byte-identical either way, at
  // any thread count, under any steal schedule.
  util::SchedulerOptions sched;
  // Optional externally owned pool (the longitudinal study shares one across
  // all its rounds); when null the campaign creates its own per run.
  util::ThreadPool* pool = nullptr;

  // Optional slice executor (DESIGN.md §15): when set, the campaign hands
  // each wave's slices to it instead of the thread pool — the distributed
  // coordinator plugs in here. Not owned; null = run on threads.
  ShardRunner* runner = nullptr;

  // --- fault injection & resilience (inert at the default rate 0) ---
  faults::FaultConfig faults;
  // max_attempts == 0 derives the policy from the greylist knobs above
  // (1 + max_greylist_retries attempts, flat greylist_backoff, no jitter),
  // which keeps a rate-0 run byte-identical to the legacy retry loop.
  faults::RetryConfig retry;

  // Structured wire capture (DESIGN.md §10): when set, every SMTP and DNS
  // frame the campaign's probes exchange is recorded here, spliced at merge
  // time in wave-major master (address) order — the JSONL written from the
  // trace is bit-identical at any thread count. Not owned; null = off.
  net::WireTrace* trace = nullptr;

  // Metrics destination (DESIGN.md §12): when set, each worker records into
  // a shard-local obs::Registry behind an obs::MetricsLane, and the shard
  // registries are merged here in shard-index order — totals are
  // thread-count-invariant. Not owned; null = off.
  obs::Registry* metrics = nullptr;

  // Circuit breaker over provider groups (IPv4 /24): a group whose wave
  // results left at least `breaker_min_transient` addresses transient, and
  // where those make up at least `breaker_min_share` of the group's tested
  // addresses, is skipped by the re-queue wave — fail fast instead of
  // hammering a sick provider.
  int breaker_min_transient = 4;
  double breaker_min_share = 0.5;
  // Cool-down the scanner waits out before the inconclusive re-queue wave.
  util::SimTime requeue_backoff = 15 * util::kMinute;
};

struct CampaignReport {
  std::string suite_label;
  std::unordered_map<util::IpAddress, AddressOutcome, util::IpAddressHash>
      addresses;
  std::vector<DomainOutcome> domains;

  // How the round degraded under injected faults (all counters zero when the
  // fault layer is disabled, except the probe/attempt traffic counts).
  faults::DegradationReport degradation;

  // Outcomes in ascending address order — the stable iteration order for
  // tables, figures, and the longitudinal pipeline (the map itself hashes).
  std::vector<const AddressOutcome*> sorted_outcomes() const;

  // Aggregates.
  std::size_t addresses_tested() const { return addresses.size(); }
  std::size_t count_verdict(AddressVerdict verdict) const;
  std::size_t vulnerable_addresses() const;
  std::size_t vulnerable_domains() const;
};

class Campaign {
 public:
  Campaign(CampaignConfig config, dns::AuthoritativeServer& server,
           util::SimClock& clock, HostRegistry& registry);

  // Run one full measurement round over `targets`.
  CampaignReport run(const std::vector<TargetDomain>& targets);

  // Streaming variant: identical output, but targets are walked on demand —
  // a lazy population never holds the whole target vector in memory.
  CampaignReport run(const TargetSource& targets);

  // Re-measure only the given addresses (the longitudinal rounds, which per
  // section 6.1 are restricted to previously vulnerable/inconclusive hosts).
  CampaignReport run_addresses(const std::vector<util::IpAddress>& addresses);

  // Execute one contiguous wave slice: items[k] is master-order position
  // base + k. This is the exact work a pool shard does; a ShardRunner calls
  // it (possibly in another process) to satisfy run_wave. Reentrant across
  // disjoint slices — all mutable state lives in the result or behind lanes.
  WaveSliceResult run_wave_slice(std::span<const WaveItem> items,
                                 std::size_t base, const WaveContext& ctx);

  // Execute one re-queue slice over copies of the candidates' outcomes.
  RequeueSliceResult run_requeue_slice(std::span<const RequeueItem> items,
                                       const WaveContext& ctx);

  // Scheduler-driven slice execution (DESIGN.md §16): split the slice into
  // batches on `pool` under config_.sched and merge the per-batch results —
  // in batch (master) order — back into ONE slice result, indistinguishable
  // from a serial run_wave_slice call. This is how a distributed worker
  // routes its whole assigned slice through the work-stealing scheduler
  // while the coordinator keeps seeing one reply frame per slice.
  WaveSliceResult run_wave_slice_scheduled(std::span<const WaveItem> items,
                                           std::size_t base,
                                           const WaveContext& ctx,
                                           util::ThreadPool& pool);
  RequeueSliceResult run_requeue_slice_scheduled(
      std::span<const RequeueItem> items, const WaveContext& ctx,
      util::ThreadPool& pool);

 private:
  // Adapter over the shared ProbeEngine: builds the ProbeRequest for one
  // test of `outcome`'s address and folds the engine's retry bookkeeping
  // back into the AddressOutcome. Attempt numbers continue across calls via
  // `outcome.probe_attempts`, keeping fault-plan keys fresh on every
  // re-attempt; the round-level retry budget shrinks with `retries_used`.
  ProbeResult probe_settled(Prober& prober, mta::MailHost& host,
                            std::string_view recipient_domain,
                            const dns::Name& mail_from, TestKind kind,
                            std::uint64_t round, AddressOutcome& outcome,
                            faults::DegradationReport& deg);

  CampaignConfig config_;
  dns::AuthoritativeServer& server_;
  util::SimClock& clock_;
  HostRegistry& registry_;
  LabelAllocator labels_;
  faults::FaultPlan plan_;
  faults::RetryPolicy retry_;
  ProbeEngine engine_;
  // Measurement-round counter: run() bumps it, and it salts the fault-plan
  // key so repeated rounds over the same fleet see fresh fault draws. The
  // running round's value travels in WaveContext, never in a member — slice
  // execution must not depend on which process's Campaign instance runs it.
  std::uint64_t next_round_ = 0;
};

}  // namespace spfail::scan
