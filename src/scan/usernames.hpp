// The curated recipient-username ladder (paper section 6.3).
//
// Tried in order; the random token first so that any probe message that does
// land in a mailbox lands in a non-existent or unmonitored one.
#pragma once

#include <array>
#include <string_view>

namespace spfail::scan {

inline constexpr std::array<std::string_view, 14> kUsernameLadder = {
    "mmj7yzdm0tbk", "noreply",     "donotreply", "no-reply",  "postmaster",
    "abuse",        "admin",       "administrator", "newsletters", "alerts",
    "info",         "auto-confirm", "appointments", "service",
};

}  // namespace spfail::scan
