// The measurement domain's dynamic DNS responder (paper section 5.1).
//
// The authors' DNS servers accepted *arbitrary* labels under
// spf-test.dns-lab.org and answered TXT queries with a templated SPF policy
// echoing the unique <id> and <suite> labels back:
//
//   v=spf1 a:%{d1r}.<id>.<suite>.spf-test.dns-lab.org
//          a:b.<id>.<suite>.spf-test.dns-lab.org -all
//
// The first mechanism carries the fingerprint macro; the second ("b.") is a
// control that fires on any SPF evaluation regardless of macro handling.
// Every A/AAAA under the base answers with an address that never matches a
// scanner, so the final SPF result is Fail — by design, so probe mail is
// rejected rather than delivered (section 6.2).
#pragma once

#include "dns/server.hpp"

namespace spfail::scan {

struct TestResponderConfig {
  dns::Name base = dns::Name::from_string("spf-test.dns-lab.org");
  // Address returned for A queries under the base; chosen to fail SPF checks.
  util::IpAddress answer_v4 = util::IpAddress::v4(192, 0, 2, 53);
  std::string macro = "%{d1r}";
};

// Build the SPF policy text served for one <id>.<suite> mail-from domain.
std::string test_policy_text(const TestResponderConfig& config,
                             const dns::Name& mail_from_domain);

// Install the responder on `server`. The returned config echoes what was
// installed (useful for building classifiers later).
TestResponderConfig install_test_responder(dns::AuthoritativeServer& server,
                                           TestResponderConfig config = {});

}  // namespace spfail::scan
