// The single retry-aware probe entry point.
//
// Before this existed the retry/fault/backoff loop lived twice — once as
// Campaign::probe_with_retry (itself the successor of the PR-2-era
// probe_with_greylist_retry shim) and once inlined in
// Study::observe_address — and the two copies had already drifted in how
// they numbered attempts and labelled retries. ProbeEngine collapses both
// into one ProbeRequest → ProbeOutcome call: the caller states *what* to
// probe and under which fault-plan/label/budget coordinates, and the engine
// drives the dialog to a settled state, charging backoff waits to the
// calling worker's clock lane and booking every injection into the shard's
// degradation accumulator.
#pragma once

#include <string>

#include "faults/degradation.hpp"
#include "faults/fault.hpp"
#include "faults/retry.hpp"
#include "scan/prober.hpp"
#include "util/clock.hpp"

namespace spfail::scan {

// One fully specified probe of one address. Attempt numbering and labels are
// explicit inputs so the outcome never depends on worker scheduling:
//   * `first_attempt` continues the fault-plan attempt sequence across waves
//     (a re-queue pass keys fresh fault draws instead of replaying old ones);
//   * `mail_from` labels attempt 0 and `retry_mail_from` every re-attempt —
//     callers that keep one label per test pass the same name twice.
struct ProbeRequest {
  util::IpAddress address;       // fault-plan and backoff key
  std::string recipient_domain;  // RCPT TO domain
  dns::Name mail_from;           // MAIL FROM label for attempt 0
  dns::Name retry_mail_from;     // MAIL FROM label for attempts >= 1
  TestKind kind = TestKind::NoMsg;
  std::uint64_t fault_round = 0;    // salts the fault plan
  std::uint64_t first_attempt = 0;  // fault-plan attempt number of attempt 0
  int retry_budget = 0;             // retries this call may still consume
};

// What the engine did: the settled result plus the retry bookkeeping the
// caller folds into its own accounting (AddressOutcome, DegradationReport).
struct ProbeOutcome {
  ProbeResult result;
  int attempts = 0;  // SMTP dialogs driven by this call
  int retries = 0;   // of those, re-attempts after a transient
  bool saw_transient = false;

  bool settled() const { return !is_transient(result.status); }
};

class ProbeEngine {
 public:
  // All references must outlive the engine. `clock` is the shared simulation
  // clock; backoff waits go through it and are therefore charged to the
  // calling thread's lane when one is active.
  ProbeEngine(const faults::FaultPlan& plan, const faults::RetryPolicy& retry,
              util::SimClock& clock)
      : plan_(plan), retry_(retry), clock_(clock) {}

  // Drive one test dialog to a settled state: retries any transient outcome
  // (greylist 451, injected tempfail/drop, host 450) under the retry policy
  // until it settles, attempts run out, or the request's retry budget is
  // exhausted.
  ProbeOutcome run(Prober& prober, mta::MailHost& host,
                   const ProbeRequest& request,
                   faults::DegradationReport& deg) const;

  const faults::RetryPolicy& retry() const noexcept { return retry_; }

 private:
  const faults::FaultPlan& plan_;
  const faults::RetryPolicy& retry_;
  util::SimClock& clock_;
};

}  // namespace spfail::scan
