// Tests for delegation-aware authoritative answers and the iterative
// RecursiveResolver: root -> TLD -> leaf chains, caching, and failure modes.
#include <gtest/gtest.h>

#include "dns/recursive.hpp"
#include "dns/zonefile.hpp"

namespace spfail::dns {
namespace {

using util::IpAddress;

// Namespace: root "." delegates com -> a.gtld.example; com delegates
// example.com -> ns1.example.com; the leaf holds the data.
class RecursiveFixture : public ::testing::Test {
 protected:
  RecursiveFixture() {
    Zone root_zone(Name::root());
    root_zone.add(ResourceRecord{Name::from_string("com"), RRType::NS,
                                 RRClass::IN, 300,
                                 NsRdata{Name::from_string("a.gtld.example")}});
    root_server_.add_zone(std::move(root_zone));

    Zone com_zone(Name::from_string("com"));
    com_zone.add(ResourceRecord{Name::from_string("example.com"), RRType::NS,
                                RRClass::IN, 300,
                                NsRdata{Name::from_string("ns1.example.com")}});
    tld_server_.add_zone(std::move(com_zone));

    leaf_server_.add_zone(parse_zone_text(R"(
$ORIGIN example.com.
@    IN TXT "v=spf1 mx -all"
@    IN A   192.0.2.80
www  IN A   192.0.2.81
ns1  IN A   192.0.2.53
)",
                                          Name::from_string("example.com")));

    registry_.add(Name::from_string("root-ns.example"), root_server_);
    registry_.add(Name::from_string("a.gtld.example"), tld_server_);
    registry_.add(Name::from_string("ns1.example.com"), leaf_server_);
  }

  RecursiveResolver make_resolver() {
    return RecursiveResolver(registry_, Name::from_string("root-ns.example"),
                             clock_, IpAddress::v4(10, 9, 9, 9));
  }

  AuthoritativeServer root_server_, tld_server_, leaf_server_;
  NameServerRegistry registry_;
  util::SimClock clock_;
};

TEST_F(RecursiveFixture, AuthorityReturnsReferralBelowZoneCut) {
  const Message response = root_server_.handle(
      Message::make_query(1, Name::from_string("www.example.com"), RRType::A),
      IpAddress::v4(1, 1, 1, 1), clock_.now());
  EXPECT_EQ(response.header.rcode, Rcode::NoError);
  EXPECT_FALSE(response.header.aa);
  EXPECT_TRUE(response.answers.empty());
  ASSERT_EQ(response.authorities.size(), 1u);
  EXPECT_EQ(std::get<NsRdata>(response.authorities[0].rdata)
                .nameserver.to_string(),
            "a.gtld.example");
}

TEST_F(RecursiveFixture, GlueIncludedWhenInZone) {
  // The com zone delegates example.com to an in-... actually the glue host
  // ns1.example.com is below the cut, so com cannot serve it; the root's
  // delegation target a.gtld.example is out-of-zone too. Verify a zone that
  // CAN provide glue does: build one inline.
  AuthoritativeServer server;
  server.add_zone(parse_zone_text(R"(
$ORIGIN tld.
sub      IN NS  ns.sub.tld.
ns.sub   IN A   192.0.2.99
)",
                                  Name::from_string("tld")));
  const Message response = server.handle(
      Message::make_query(2, Name::from_string("x.sub.tld"), RRType::A),
      IpAddress::v4(1, 1, 1, 1), clock_.now());
  ASSERT_EQ(response.authorities.size(), 1u);
  ASSERT_EQ(response.additionals.size(), 1u);
  EXPECT_EQ(std::get<ARdata>(response.additionals[0].rdata).address,
            IpAddress::v4(192, 0, 2, 99));
}

TEST_F(RecursiveFixture, ResolvesThroughTwoReferrals) {
  RecursiveResolver resolver = make_resolver();
  const ResolveResult result =
      resolver.resolve(Name::from_string("www.example.com"), RRType::A);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.answers.size(), 1u);
  EXPECT_EQ(std::get<ARdata>(result.answers[0].rdata).address,
            IpAddress::v4(192, 0, 2, 81));
  EXPECT_EQ(resolver.stats().referrals, 2u);  // root -> com -> leaf
  EXPECT_EQ(resolver.stats().queries_sent, 3u);
}

TEST_F(RecursiveFixture, TxtThroughTheChain) {
  RecursiveResolver resolver = make_resolver();
  const ResolveResult result =
      resolver.resolve(Name::from_string("example.com"), RRType::TXT);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.answers.size(), 1u);
  EXPECT_EQ(std::get<TxtRdata>(result.answers[0].rdata).joined(),
            "v=spf1 mx -all");
}

TEST_F(RecursiveFixture, AnswerCacheShortCircuits) {
  RecursiveResolver resolver = make_resolver();
  resolver.resolve(Name::from_string("www.example.com"), RRType::A);
  const std::size_t sent_before = resolver.stats().queries_sent;
  resolver.resolve(Name::from_string("www.example.com"), RRType::A);
  EXPECT_EQ(resolver.stats().queries_sent, sent_before);
  EXPECT_GE(resolver.stats().answers_from_cache, 1u);
}

TEST_F(RecursiveFixture, DelegationCacheSkipsTheRoot) {
  RecursiveResolver resolver = make_resolver();
  resolver.resolve(Name::from_string("www.example.com"), RRType::A);
  const std::size_t sent_before = resolver.stats().queries_sent;
  // A sibling name under the same zone: the learned example.com delegation
  // lets the resolver go straight to the leaf server.
  resolver.resolve(Name::from_string("example.com"), RRType::A);
  EXPECT_EQ(resolver.stats().queries_sent, sent_before + 1);
}

TEST_F(RecursiveFixture, NxDomainFromAuthoritative) {
  RecursiveResolver resolver = make_resolver();
  const ResolveResult result =
      resolver.resolve(Name::from_string("missing.example.com"), RRType::A);
  EXPECT_EQ(result.rcode, Rcode::NxDomain);
}

TEST_F(RecursiveFixture, UnreachableNameserverIsServFail) {
  // Register a namespace whose delegation points at a non-registered host.
  AuthoritativeServer broken_root;
  Zone zone(Name::root());
  zone.add(ResourceRecord{Name::from_string("lost"), RRType::NS, RRClass::IN,
                          300, NsRdata{Name::from_string("ns.nowhere")}});
  broken_root.add_zone(std::move(zone));
  NameServerRegistry registry;
  registry.add(Name::from_string("r.example"), broken_root);
  RecursiveResolver resolver(registry, Name::from_string("r.example"), clock_,
                             IpAddress::v4(1, 1, 1, 1));
  const ResolveResult result =
      resolver.resolve(Name::from_string("x.lost"), RRType::A);
  EXPECT_EQ(result.rcode, Rcode::ServFail);
}

TEST_F(RecursiveFixture, FlushCacheForcesFullWalk) {
  RecursiveResolver resolver = make_resolver();
  resolver.resolve(Name::from_string("www.example.com"), RRType::A);
  resolver.flush_cache();
  const std::size_t sent_before = resolver.stats().queries_sent;
  resolver.resolve(Name::from_string("www.example.com"), RRType::A);
  EXPECT_EQ(resolver.stats().queries_sent, sent_before + 3);
}

}  // namespace
}  // namespace spfail::dns
