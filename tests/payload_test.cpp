#include <gtest/gtest.h>

#include <algorithm>

#include "spfvuln/payload.hpp"

namespace spfail::spfvuln {
namespace {

TEST(Payload, ReversalMeetsRequestedOverflow) {
  for (const std::size_t want : {1u, 8u, 32u, 64u, 100u}) {
    const CraftedPayload payload = craft_reversal_payload(want);
    EXPECT_GE(payload.predicted.overflow_bytes, want) << want;
    EXPECT_TRUE(payload.predicted.length_reassigned);
    EXPECT_LE(payload.attacker_domain.size(), 253u);
  }
}

TEST(Payload, ReversalPrefersSmallDomains) {
  // Asking for 1 byte must not return a monster domain.
  const CraftedPayload small = craft_reversal_payload(1);
  const CraftedPayload large = craft_reversal_payload(100);
  EXPECT_LT(small.attacker_domain.size(), large.attacker_domain.size());
}

TEST(Payload, PaperHundredByteClaimIsAchievable) {
  // §4.1.2: "up to 100 arbitrary characters ... past the end of the buffer".
  EXPECT_GE(max_reversal_overflow(), 100u);
  // And it is bounded: a 253-octet name cannot produce unbounded overflow.
  EXPECT_LT(max_reversal_overflow(), 600u);
}

TEST(Payload, ImpossibleRequestThrows) {
  EXPECT_THROW(craft_reversal_payload(10000), std::invalid_argument);
}

TEST(Payload, UrlEncodeOverflowIsSixPerCharacter) {
  for (const std::size_t chars : {1u, 2u, 5u, 10u}) {
    const CraftedPayload payload = craft_urlencode_payload(chars);
    EXPECT_EQ(payload.predicted.overflow_bytes, 6 * chars) << chars;
    EXPECT_TRUE(payload.predicted.sprintf_overflow);
  }
}

TEST(Payload, RecordsLookLikeSpf) {
  EXPECT_EQ(craft_reversal_payload(10).spf_record.substr(0, 7), "v=spf1 ");
  EXPECT_EQ(craft_urlencode_payload(1).spf_record.substr(0, 7), "v=spf1 ");
}

TEST(Payload, SpilledBytesAreAttackerControlledLabelText) {
  const CraftedPayload payload = craft_reversal_payload(50);
  const ExpansionReport& report = payload.predicted;
  // Reconstruct the spill from the emulated write.
  const std::string spilled(report.output.substr(report.buffer_allocated));
  EXPECT_EQ(spilled.size(), report.overflow_bytes);
  // Every spilled byte is one of the attacker's label characters or a dot.
  EXPECT_TRUE(std::all_of(spilled.begin(), spilled.end(), [](char c) {
    return (c >= 'a' && c <= 'z') || c == '.' || (c >= '0' && c <= '9');
  }));
}

}  // namespace
}  // namespace spfail::spfvuln
