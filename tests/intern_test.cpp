// The §14 interning layer: Symbol assignment determinism, shard-order merge,
// wire round-trips, the QueryLog qname dedupe built on it, the lazy/streaming
// fleet's equivalence to the eager one, and the optional snapshot strings
// section.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dns/query_log.hpp"
#include "population/fleet.hpp"
#include "report/tables.hpp"
#include "scan/campaign.hpp"
#include "session/scan_session.hpp"
#include "snapshot/snapshot.hpp"
#include "util/intern.hpp"

namespace spfail {
namespace {

// ------------------------------------------------------------------ Interner

TEST(Intern, IdsFollowInsertionOrder) {
  util::Interner interner;
  EXPECT_EQ(interner.intern("alpha"), 0u);
  EXPECT_EQ(interner.intern("beta"), 1u);
  EXPECT_EQ(interner.intern("alpha"), 0u);  // repeat: same id
  EXPECT_EQ(interner.intern("gamma"), 2u);
  EXPECT_EQ(interner.view(0), "alpha");
  EXPECT_EQ(interner.view(1), "beta");
  EXPECT_EQ(interner.view(2), "gamma");
  EXPECT_EQ(interner.size(), 3u);
}

TEST(Intern, StatsSeparateHitsFromMisses) {
  util::Interner interner;
  interner.intern("one");
  interner.intern("two");
  interner.intern("one");
  interner.intern("one");
  EXPECT_EQ(interner.misses(), 2u);
  EXPECT_EQ(interner.hits(), 2u);
  EXPECT_EQ(interner.distinct_bytes(), 6u);  // "one" + "two" stored once each
}

TEST(Intern, FindDoesNotInsertOrCount) {
  util::Interner interner;
  interner.intern("present");
  const std::uint64_t hits = interner.hits();
  const std::uint64_t misses = interner.misses();
  EXPECT_EQ(interner.find("present"), 0u);
  EXPECT_EQ(interner.find("absent"), util::kInvalidSymbol);
  EXPECT_EQ(interner.size(), 1u);
  EXPECT_EQ(interner.hits(), hits);
  EXPECT_EQ(interner.misses(), misses);
}

TEST(Intern, ViewsStayValidAcrossArenaGrowth) {
  // Force multiple 64KB chunks and a few rehashes; early views must survive.
  util::Interner interner;
  const std::string_view first = interner.view(interner.intern("the-first"));
  std::vector<std::string> expected;
  for (int i = 0; i < 4000; ++i) {
    expected.push_back("padding-string-number-" + std::to_string(i));
    interner.intern(expected.back());
  }
  EXPECT_EQ(first, "the-first");
  for (int i = 0; i < 4000; ++i) {
    EXPECT_EQ(interner.view(static_cast<util::Symbol>(i + 1)), expected[i]);
  }
}

TEST(InternMerge, RemapTranslatesShardIds) {
  util::Interner master, shard;
  master.intern("shared");
  shard.intern("private");  // shard id 0
  shard.intern("shared");   // shard id 1
  const std::vector<util::Symbol> remap = master.merge(shard);
  ASSERT_EQ(remap.size(), 2u);
  EXPECT_EQ(master.view(remap[0]), "private");
  EXPECT_EQ(master.view(remap[1]), "shared");
  EXPECT_EQ(remap[1], 0u);  // folded onto the pre-existing entry
}

TEST(InternMerge, ContiguousShardFoldMatchesSerialOrder) {
  // The campaign discipline: shards own contiguous slices of a deterministic
  // stream and are folded in shard-index order. The folded table must equal
  // serial interning regardless of how many shards the stream was cut into.
  std::vector<std::string> stream;
  for (int i = 0; i < 200; ++i) stream.push_back("s" + std::to_string(i % 37));

  util::Interner serial;
  for (const auto& s : stream) serial.intern(s);

  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    std::vector<util::Interner> lanes(shards);
    const std::size_t per = (stream.size() + shards - 1) / shards;
    for (std::size_t i = 0; i < stream.size(); ++i) {
      lanes[i / per].intern(stream[i]);
    }
    util::Interner folded;
    for (auto& lane : lanes) folded.merge(lane);
    EXPECT_TRUE(folded == serial) << shards << " shards";
  }
}

TEST(InternCodec, RoundTripPreservesOrderAndStrings) {
  util::Interner interner;
  interner.intern("a");
  interner.intern("");  // empty string is a legal entry
  interner.intern("domain.example.com");
  snapshot::Writer w;
  interner.encode(w);
  snapshot::Reader r(w.bytes());
  const util::Interner decoded = util::Interner::decode(r);
  r.expect_done();
  EXPECT_TRUE(decoded == interner);
  EXPECT_EQ(decoded.view(2), "domain.example.com");
}

TEST(InternCodec, RejectsCorruptedBody) {
  util::Interner interner;
  interner.intern("checksummed-content");
  snapshot::Writer w;
  interner.encode(w);
  std::string bytes(w.bytes());
  bytes[bytes.size() / 2] ^= 0x01;
  snapshot::Reader r(bytes);
  EXPECT_THROW(util::Interner::decode(r), snapshot::SnapshotError);
}

TEST(InternCodec, RejectsDuplicateStrings) {
  // Hand-build a body whose string list repeats an entry: decode must refuse
  // it, because Symbol ids would silently shift for everything after it.
  snapshot::Writer body;
  body.u32(2);
  body.str("dup");
  body.str("dup");
  std::uint64_t checksum = 1469598103934665603ULL;
  for (const char c : body.bytes()) {
    checksum ^= static_cast<std::uint8_t>(c);
    checksum *= 1099511628211ULL;
  }
  snapshot::Writer w;
  w.u32(static_cast<std::uint32_t>(body.bytes().size()));
  w.u64(checksum);
  for (const char c : body.bytes()) w.u8(static_cast<std::uint8_t>(c));
  snapshot::Reader r(w.bytes());
  EXPECT_THROW(util::Interner::decode(r), snapshot::SnapshotError);
}

TEST(InternSync, ConcurrentInternsConverge) {
  util::SyncInterner interner;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&interner] {
      for (int i = 0; i < 200; ++i) {
        interner.intern("shared-" + std::to_string(i % 50));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(interner.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    const std::string text = "shared-" + std::to_string(i);
    EXPECT_EQ(interner.view(interner.intern(text)), text);
  }
}

// ------------------------------------------------------------------ QueryLog

dns::QueryLogEntry entry_for(const std::string& qname, util::SimTime time) {
  dns::QueryLogEntry e;
  e.time = time;
  e.client = util::IpAddress::v4(10, 0, 0, 1);
  e.qname = dns::Name::from_string(qname);
  e.qtype = dns::RRType::TXT;
  return e;
}

TEST(QueryLogDedupe, RepeatedQnamesStoreOneCopy) {
  dns::QueryLog log;
  for (int i = 0; i < 100; ++i) log.record(entry_for("probe.example.com", i));
  log.record(entry_for("other.example.com", 100));
  EXPECT_EQ(log.size(), 101u);
  EXPECT_EQ(log.names().size(), 2u);  // two distinct qnames stored
  EXPECT_EQ(log.names().misses(), 2u);
  EXPECT_EQ(log.names().hits(), 99u);
  // Materialisation still reproduces every entry faithfully.
  const auto entries = log.entries();
  EXPECT_EQ(entries[50].qname.to_string(), "probe.example.com");
  EXPECT_EQ(entries[100].qname.to_string(), "other.example.com");
}

TEST(QueryLogDedupe, ForEachUnderBoundaries) {
  dns::QueryLog log;
  log.record(entry_for("bar.com", 1));      // exact match
  log.record(entry_for("foo.bar.com", 2));  // true subdomain
  log.record(entry_for("xbar.com", 3));     // text suffix but not a subdomain
  log.record(entry_for("ar.com", 4));       // suffix of the suffix
  log.record(entry_for("other.org", 5));

  std::vector<util::SimTime> matched;
  log.for_each_under(dns::Name::from_string("bar.com"),
                     [&](const dns::QueryLogEntry& e) {
                       matched.push_back(e.time);
                     });
  EXPECT_EQ(matched, (std::vector<util::SimTime>{1, 2}));

  std::size_t everything = 0;
  log.for_each_under(dns::Name::root(),
                     [&](const dns::QueryLogEntry&) { ++everything; });
  EXPECT_EQ(everything, 5u);

  std::size_t from_cursor = 0;
  log.for_each_under_from(2, dns::Name::from_string("bar.com"),
                          [&](const dns::QueryLogEntry&) { ++from_cursor; });
  EXPECT_EQ(from_cursor, 0u);  // both matches precede the cursor
}

TEST(QueryLogDedupe, SpliceRemapsSymbols) {
  dns::QueryLog a, b;
  a.record(entry_for("one.example", 1));
  a.record(entry_for("two.example", 2));
  b.record(entry_for("two.example", 3));  // same text, different shard id
  b.record(entry_for("three.example", 4));
  a.splice(std::move(b));
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a.names().size(), 3u);  // union of distinct qnames
  const auto entries = a.entries();
  EXPECT_EQ(entries[2].qname.to_string(), "two.example");
  EXPECT_EQ(entries[3].qname.to_string(), "three.example");
  EXPECT_EQ(entries[2].time, 3);
}

// ------------------------------------------------- lazy fleet ≡ eager fleet

std::string campaign_digest(population::Fleet& fleet, bool streaming) {
  scan::CampaignConfig config;
  config.prober.responder = fleet.responder();
  config.threads = 2;
  scan::Campaign campaign(config, fleet.dns(), fleet.clock(), fleet);
  const scan::CampaignReport report =
      streaming ? campaign.run(fleet.target_source())
                : campaign.run(fleet.targets());
  std::ostringstream os;
  os << report::table3_outcomes(fleet, report)
     << report::table4_breakdown(fleet, report)
     << report::table7_behaviors(fleet, report)
     << "clock=" << fleet.clock().now()
     << " queries=" << fleet.dns().query_log().size();
  return os.str();
}

TEST(InternFleet, LazyStreamingCampaignMatchesEagerMaterialised) {
  population::FleetConfig config;
  config.scale = 0.008;
  population::Fleet eager(config);
  config.lazy_hosts = true;
  population::Fleet lazy(config);

  EXPECT_TRUE(eager.strings() == lazy.strings());
  EXPECT_EQ(lazy.live_hosts(), 0u);  // nothing materialised before probing

  const std::string eager_digest = campaign_digest(eager, /*streaming=*/false);
  const std::string lazy_digest = campaign_digest(lazy, /*streaming=*/true);
  EXPECT_EQ(eager_digest, lazy_digest);
  // Streaming eviction: every probed host was released again.
  EXPECT_EQ(lazy.live_hosts(), 0u);
  EXPECT_EQ(eager.live_hosts(), eager.address_count());
}

TEST(InternFleet, TargetSourceMatchesMaterialisedTargets) {
  population::FleetConfig config;
  config.scale = 0.008;
  population::Fleet fleet(config);
  for (const auto filter :
       {population::Fleet::SetFilter::All,
        population::Fleet::SetFilter::AlexaTopList,
        population::Fleet::SetFilter::Alexa1000,
        population::Fleet::SetFilter::TwoWeekMx}) {
    const auto materialised = fleet.targets(filter);
    const auto view = fleet.target_source(filter);
    EXPECT_EQ(view.domain_count(), materialised.size());
    std::size_t i = 0, addresses = 0;
    view.for_each([&](std::string_view name,
                      std::span<const util::IpAddress> addrs) {
      ASSERT_LT(i, materialised.size());
      EXPECT_EQ(name, materialised[i].domain);
      ASSERT_EQ(addrs.size(), materialised[i].addresses.size());
      for (std::size_t j = 0; j < addrs.size(); ++j) {
        EXPECT_EQ(addrs[j], materialised[i].addresses[j]);
      }
      addresses += addrs.size();
      ++i;
    });
    EXPECT_EQ(i, materialised.size());
    EXPECT_LE(addresses, view.address_upper_bound());
  }
}

// ------------------------------------------------- snapshot strings section

snapshot::StudySnapshot tiny_snapshot() {
  snapshot::StudySnapshot snap;
  snap.meta.kind = snapshot::SnapshotKind::Campaign;
  snap.meta.fleet_seed = 2021;
  snap.meta.scale = 0.01;
  snap.clock_now = 1234;
  snap.initial.suite_label = "suite0";
  return snap;
}

TEST(SnapshotStrings, AbsentSectionKeepsBytesIdentical) {
  const snapshot::StudySnapshot plain = tiny_snapshot();
  const std::string before = plain.encode();

  snapshot::StudySnapshot with = tiny_snapshot();
  with.has_strings = true;
  with.strings.intern("example.com");
  with.strings.intern("example.org");
  const std::string after = with.encode();

  EXPECT_NE(before, after);
  // A writer without the feature produces the exact pre-§14 byte stream.
  EXPECT_EQ(plain.encode(), before);

  const snapshot::StudySnapshot decoded_plain =
      snapshot::StudySnapshot::decode(before);
  EXPECT_FALSE(decoded_plain.has_strings);
  const snapshot::StudySnapshot decoded_with =
      snapshot::StudySnapshot::decode(after);
  ASSERT_TRUE(decoded_with.has_strings);
  EXPECT_TRUE(decoded_with.strings == with.strings);
}

TEST(SnapshotStrings, CoexistsWithMetricsSection) {
  snapshot::StudySnapshot snap = tiny_snapshot();
  snap.has_metrics = true;
  snap.metrics.counter("probes") += 7;
  snap.metric_lines.push_back("{\"phase\":\"initial\"}");
  snap.has_strings = true;
  snap.strings.intern("both-sections");
  const snapshot::StudySnapshot decoded =
      snapshot::StudySnapshot::decode(snap.encode());
  ASSERT_TRUE(decoded.has_metrics);
  ASSERT_TRUE(decoded.has_strings);
  EXPECT_EQ(decoded.metric_lines, snap.metric_lines);
  EXPECT_TRUE(decoded.strings == snap.strings);
}

TEST(SnapshotStrings, CorruptStringsPayloadRejected) {
  snapshot::StudySnapshot snap = tiny_snapshot();
  snap.has_strings = true;
  snap.strings.intern("to-be-corrupted");
  std::string bytes = snap.encode();
  bytes[bytes.size() - 12] ^= 0x01;  // inside the strings payload
  EXPECT_THROW(snapshot::StudySnapshot::decode(bytes),
               snapshot::SnapshotError);
}

TEST(SnapshotStrings, SessionVerifiesInternTableOnResume) {
  const std::string path = testing::TempDir() + "spfail_strings_ckpt.bin";

  session::ScanConfig config;
  config.scale = 0.004;
  config.initial_only = true;
  config.checkpoint_path = path;
  config.checkpoint_strings = true;
  session::ScanSession writer(config);
  writer.initial();

  // The matching fleet resumes fine and the snapshot really carries strings.
  snapshot::StudySnapshot snap =
      snapshot::StudySnapshot::decode(snapshot::load_file(path));
  ASSERT_TRUE(snap.has_strings);
  EXPECT_GT(snap.strings.size(), 0u);
  session::ScanConfig resuming;
  resuming.scale = 0.004;
  resuming.initial_only = true;
  resuming.resume_path = path;
  EXPECT_NO_THROW(session::ScanSession(resuming).initial());

  // Tamper with the embedded table (keeping the snapshot well-formed): the
  // resuming session must refuse the population mismatch.
  snap.strings = util::Interner();
  snap.strings.intern("not-the-fleet's-table");
  snapshot::save_atomically(path, snap.encode());
  session::ScanSession rejecting(resuming);
  EXPECT_THROW(rejecting.initial(), snapshot::SnapshotError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace spfail
