#include <gtest/gtest.h>

#include <set>

#include "util/clock.hpp"
#include "util/encoding.hpp"
#include "util/ip.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace spfail::util {
namespace {

// ---------------------------------------------------------------- Rng

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformSingleValue) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform(5, 5), 5u);
}

TEST(Rng, UniformSignedNegativeRange) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const auto v = rng.uniform_signed(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, Uniform01InRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliApproximatesP) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, ForkIndependentByLabel) {
  Rng parent1(9);
  Rng parent2(9);
  Rng a = parent1.fork("alpha");
  Rng b = parent2.fork("beta");
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkDeterministic) {
  Rng p1(9), p2(9);
  Rng a = p1.fork("x");
  Rng b = p2.fork("x");
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, WeightedIndexHonoursWeights) {
  Rng rng(13);
  const double weights[] = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.weighted_index(weights), 1u);
  }
}

TEST(Rng, WeightedIndexDistribution) {
  Rng rng(17);
  const double weights[] = {1.0, 3.0};
  int counts[2] = {0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_NEAR(counts[1] / 10000.0, 0.75, 0.02);
}

TEST(Rng, WeightedIndexThrowsOnEmpty) {
  Rng rng(1);
  EXPECT_THROW(rng.weighted_index({}), std::invalid_argument);
}

TEST(Rng, TokenFormat) {
  Rng rng(21);
  const std::string t = rng.token(12);
  EXPECT_EQ(t.size(), 12u);
  EXPECT_TRUE(is_alnum(t));
}

TEST(Rng, TokensMostlyUnique) {
  Rng rng(23);
  std::set<std::string> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.token(8));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Rng, ExponentialPositive) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) EXPECT_GT(rng.exponential(2.0), 0.0);
}

TEST(Rng, ExponentialMean) {
  Rng rng(31);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

// ---------------------------------------------------------------- Clock

TEST(Clock, CivilRoundTrip) {
  for (const auto& [y, m, d] : {std::tuple{2021, 10, 11}, {2022, 1, 19},
                                {2022, 2, 14}, {2000, 2, 29}, {1970, 1, 1}}) {
    const auto days = days_from_civil(y, m, d);
    const CivilDate back = civil_from_days(days);
    EXPECT_EQ(back.year, y);
    EXPECT_EQ(back.month, m);
    EXPECT_EQ(back.day, d);
  }
}

TEST(Clock, KnownEpochOffsets) {
  EXPECT_EQ(days_from_civil(1970, 1, 1), 0);
  EXPECT_EQ(days_from_civil(1970, 1, 2), 1);
  EXPECT_EQ(days_from_civil(1969, 12, 31), -1);
}

TEST(Clock, PaperTimelineOrdering) {
  const SimTime initial = at_midnight(2021, 10, 11);
  const SimTime private_notice = at_midnight(2021, 11, 15);
  const SimTime disclosure = at_midnight(2022, 1, 19);
  const SimTime final_measurement = at_midnight(2022, 2, 14);
  EXPECT_LT(initial, private_notice);
  EXPECT_LT(private_notice, disclosure);
  EXPECT_LT(disclosure, final_measurement);
  EXPECT_EQ((private_notice - initial) / kDay, 35);
}

TEST(Clock, FormatDate) {
  EXPECT_EQ(format_date(at_midnight(2021, 10, 11)), "2021-10-11");
  EXPECT_EQ(format_date(at_midnight(2022, 2, 14)), "2022-02-14");
}

TEST(Clock, FormatDatetime) {
  EXPECT_EQ(format_datetime(at_midnight(2022, 1, 19) + 3 * kHour + 5 * kMinute),
            "2022-01-19 03:05:00");
}

TEST(Clock, AdvanceForwardOk) {
  SimClock clock(100);
  clock.advance_by(50);
  EXPECT_EQ(clock.now(), 150);
  clock.advance_to(150);  // no-op advance to the same instant is fine
  EXPECT_EQ(clock.now(), 150);
}

TEST(Clock, AdvanceBackwardThrows) {
  SimClock clock(100);
  EXPECT_THROW(clock.advance_to(99), std::logic_error);
}

// ---------------------------------------------------------------- strings

TEST(Strings, SplitBasic) {
  const auto parts = split("a.b.c", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitEmptyFields) {
  const auto parts = split("a..b", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, SplitAnyMultipleDelims) {
  const auto parts = split_any("a.b-c", ".-");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "b");
}

TEST(Strings, JoinRoundTrip) {
  EXPECT_EQ(join(split("x.y.z", '.'), "."), "x.y.z");
}

TEST(Strings, ToLower) { EXPECT_EQ(to_lower("ExAmPle.COM"), "example.com"); }

TEST(Strings, IEquals) {
  EXPECT_TRUE(iequals("MAIL", "mail"));
  EXPECT_FALSE(iequals("MAIL", "mai"));
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x \r\n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(418842), "418,842");
  EXPECT_EQ(with_commas(-1234567), "-1,234,567");
}

TEST(Strings, Percent) {
  EXPECT_EQ(percent(1, 2), "50%");
  EXPECT_EQ(percent(3, 7, 1), "42.9%");
  EXPECT_EQ(percent(5, 0), "0%");
}

// ---------------------------------------------------------------- encoding

TEST(Encoding, UrlEncodeByte) {
  EXPECT_EQ(url_encode_byte(0x0F), "%0F");
  EXPECT_EQ(url_encode_byte(0xFE), "%FE");
}

TEST(Encoding, UrlEncodePassthrough) {
  EXPECT_EQ(url_encode("abc-XYZ_0.9~"), "abc-XYZ_0.9~");
}

TEST(Encoding, UrlEncodeReserved) {
  EXPECT_EQ(url_encode("a b"), "a%20b");
  EXPECT_EQ(url_encode("a/b"), "a%2Fb");
}

// The crux of CVE-2021-33912: high-bit bytes explode from 3 to 9 characters.
TEST(Encoding, Libspf2SprintfLowBytesNormal) {
  EXPECT_EQ(libspf2_sprintf_encode_byte(0x0F), "%0f");
  EXPECT_EQ(libspf2_sprintf_encode_byte(0x7F), "%7f");
}

TEST(Encoding, Libspf2SprintfHighBytesSignExtend) {
  EXPECT_EQ(libspf2_sprintf_encode_byte(0xFE), "%fffffffe");
  EXPECT_EQ(libspf2_sprintf_encode_byte(0x80), "%ffffff80");
  EXPECT_EQ(libspf2_sprintf_encode_byte(0xFF), "%ffffffff");
}

TEST(Encoding, Libspf2SprintfBoundary) {
  // 0x7F is the last safe value; 0x80 is the first overflowing one.
  EXPECT_EQ(libspf2_sprintf_encode_byte(0x7F).size(), 3u);
  EXPECT_EQ(libspf2_sprintf_encode_byte(0x80).size(), 9u);
}

TEST(Encoding, ToHex) { EXPECT_EQ(to_hex("\x01\xab"), "01ab"); }

// ---------------------------------------------------------------- IpAddress

TEST(Ip, ParseV4) {
  const auto ip = IpAddress::parse("192.0.2.1");
  ASSERT_TRUE(ip.has_value());
  EXPECT_TRUE(ip->is_v4());
  EXPECT_EQ(ip->to_string(), "192.0.2.1");
}

TEST(Ip, ParseV4Invalid) {
  EXPECT_FALSE(IpAddress::parse("192.0.2").has_value());
  EXPECT_FALSE(IpAddress::parse("192.0.2.256").has_value());
  EXPECT_FALSE(IpAddress::parse("a.b.c.d").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3.4.5").has_value());
}

TEST(Ip, ParseV6Full) {
  const auto ip = IpAddress::parse("2001:db8:0:0:0:0:0:1");
  ASSERT_TRUE(ip.has_value());
  EXPECT_TRUE(ip->is_v6());
}

TEST(Ip, ParseV6Compressed) {
  const auto a = IpAddress::parse("2001:db8::1");
  const auto b = IpAddress::parse("2001:db8:0:0:0:0:0:1");
  ASSERT_TRUE(a && b);
  EXPECT_EQ(*a, *b);
}

TEST(Ip, ParseV6Invalid) {
  EXPECT_FALSE(IpAddress::parse("2001:db8::1::2").has_value());
  EXPECT_FALSE(IpAddress::parse("2001:db8:1:2:3:4:5:6:7").has_value());
  EXPECT_FALSE(IpAddress::parse("gggg::1").has_value());
}

TEST(Ip, V4RoundTrip) {
  const auto ip = IpAddress::v4(0xC0000201);
  EXPECT_EQ(ip.to_string(), "192.0.2.1");
  EXPECT_EQ(ip.v4_value(), 0xC0000201u);
}

TEST(Ip, V4ValueThrowsOnV6) {
  const auto ip = IpAddress::parse("::1");
  ASSERT_TRUE(ip.has_value());
  EXPECT_THROW(ip->v4_value(), std::logic_error);
}

TEST(Ip, PrefixMatchV4) {
  const auto net = *IpAddress::parse("192.0.2.0");
  EXPECT_TRUE(IpAddress::v4(192, 0, 2, 200).in_prefix(net, 24));
  EXPECT_FALSE(IpAddress::v4(192, 0, 3, 1).in_prefix(net, 24));
  EXPECT_TRUE(IpAddress::v4(10, 0, 0, 1).in_prefix(net, 0));
}

TEST(Ip, PrefixMatchExact) {
  const auto a = IpAddress::v4(192, 0, 2, 1);
  EXPECT_TRUE(a.in_prefix(a, 32));
  EXPECT_FALSE(IpAddress::v4(192, 0, 2, 2).in_prefix(a, 32));
}

TEST(Ip, PrefixFamilyMismatch) {
  const auto v4 = IpAddress::v4(192, 0, 2, 1);
  const auto v6 = *IpAddress::parse("::1");
  EXPECT_FALSE(v4.in_prefix(v6, 0));
}

TEST(Ip, SpfMacroFormV4) {
  EXPECT_EQ(IpAddress::v4(192, 0, 2, 1).spf_macro_form(), "192.0.2.1");
}

TEST(Ip, SpfMacroFormV6IsNibbles) {
  const auto ip = *IpAddress::parse("2001:db8::1");
  const std::string form = ip.spf_macro_form();
  EXPECT_EQ(form.substr(0, 7), "2.0.0.1");
  EXPECT_EQ(form.back(), '1');
  // 32 nibbles + 31 dots
  EXPECT_EQ(form.size(), 63u);
}

TEST(Ip, ReversePointerV4) {
  EXPECT_EQ(IpAddress::v4(192, 0, 2, 1).reverse_pointer(),
            "1.2.0.192.in-addr.arpa");
}

// ---------------------------------------------------------------- TextTable

TEST(Table, RendersAllCells) {
  TextTable t({"name", "count"}, {Align::Left, Align::Right});
  t.add_row({"com", "230801"});
  t.add_row({"ru", "19844"});
  const std::string out = t.render();
  EXPECT_NE(out.find("com"), std::string::npos);
  EXPECT_NE(out.find("230801"), std::string::npos);
  EXPECT_NE(out.find("ru"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsBadRowWidth) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, ToCsvSkipsRules) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_rule();
  t.add_row({"3", "4,5"});
  std::ostringstream os;
  t.to_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,\"4,5\"\n");
}

TEST(Table, CsvEscaping) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row({"plain", "with,comma", "with\"quote"});
  EXPECT_EQ(os.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

}  // namespace
}  // namespace spfail::util
