// Checkpoint/resume equivalence: a study killed at ANY round boundary and
// restored into a fresh process must finish with byte-identical outputs —
// reports, degradation tables, wire traces — at any thread count. The
// uninterrupted pass captures a snapshot at every boundary; each one is then
// restored and run to completion.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "report/tables.hpp"
#include "session/scan_session.hpp"
#include "util/shutdown.hpp"

namespace spfail {
namespace {

population::FleetConfig small_fleet_config() {
  population::FleetConfig config;
  config.scale = 0.01;
  config.seed = 2021;
  return config;
}

longitudinal::StudyConfig faulted_study_config() {
  longitudinal::StudyConfig config;
  config.faults.rate = 0.02;
  return config;
}

// Every output surface of a finished study, rendered to one string: the
// paper tables, the inference series, the degradation counters. Two runs
// with equal digests produced byte-identical deliverables.
std::string digest(population::Fleet& fleet,
                   const longitudinal::StudyReport& report) {
  std::ostringstream os;
  os << report::fig2_final_distribution(fleet, report) << "\n"
     << report::table5_tld_patch(fleet, report) << "\n"
     << report::notification_funnel(report) << "\n"
     << report::degradation_table(report.degradation) << "\n";
  for (const auto cohort :
       {longitudinal::Cohort::All, longitudinal::Cohort::AlexaTopList,
        longitudinal::Cohort::Alexa1000, longitudinal::Cohort::TwoWeekMx}) {
    for (const double v : report::vulnerability_series(fleet, report, cohort)) {
      os << v << ",";
    }
    os << "\n";
  }
  os << report.remeasurable_addresses << "/"
     << report.remeasurable_resolved_vulnerable << "/"
     << report.remeasurable_resolved_compliant << "\n";
  return os.str();
}

TEST(CheckpointResume, KillAtEveryRoundBoundaryResumesIdentically) {
  // Uninterrupted pass, capturing the encoded snapshot at every boundary.
  population::Fleet fleet(small_fleet_config());
  longitudinal::Study study(fleet, faulted_study_config());
  std::vector<std::string> boundaries;
  longitudinal::Study::State state = study.begin();
  boundaries.push_back(study.capture(state).encode());
  while (study.rounds_remaining(state)) {
    study.run_round(state);
    boundaries.push_back(study.capture(state).encode());
  }
  const longitudinal::StudyReport full = study.finish(std::move(state));
  const std::string expected = digest(fleet, full);
  ASSERT_EQ(boundaries.size(), study.total_rounds() + 1);

  for (std::size_t b = 0; b < boundaries.size(); ++b) {
    SCOPED_TRACE("boundary after round " + std::to_string(b));
    population::Fleet resumed_fleet(small_fleet_config());
    longitudinal::Study resumed(resumed_fleet, faulted_study_config());
    longitudinal::Study::State resumed_state =
        resumed.restore(snapshot::StudySnapshot::decode(boundaries[b]));
    // Restore fidelity: re-capturing immediately reproduces the snapshot.
    EXPECT_EQ(resumed.capture(resumed_state).encode(), boundaries[b]);
    while (resumed.rounds_remaining(resumed_state)) {
      resumed.run_round(resumed_state);
    }
    const longitudinal::StudyReport report =
        resumed.finish(std::move(resumed_state));
    EXPECT_EQ(digest(resumed_fleet, report), expected);
  }
}

TEST(CheckpointResume, ResumeIsThreadCountInvariantIncludingTrace) {
  // Serial uninterrupted run with tracing, snapshotting mid-study.
  net::WireTrace full_trace;
  longitudinal::StudyConfig serial_config = faulted_study_config();
  serial_config.threads = 1;
  serial_config.trace = &full_trace;
  population::Fleet fleet(small_fleet_config());
  longitudinal::Study study(fleet, serial_config);
  longitudinal::Study::State state = study.begin();
  std::string mid;
  while (study.rounds_remaining(state)) {
    study.run_round(state);
    if (state.next_round == 10) mid = study.capture(state).encode();
  }
  const longitudinal::StudyReport full = study.finish(std::move(state));
  std::ostringstream full_jsonl;
  full_trace.write_jsonl(full_jsonl);

  // Resume the mid-study snapshot on four threads.
  net::WireTrace resumed_trace;
  longitudinal::StudyConfig wide_config = faulted_study_config();
  wide_config.threads = 4;
  wide_config.trace = &resumed_trace;
  population::Fleet resumed_fleet(small_fleet_config());
  longitudinal::Study resumed(resumed_fleet, wide_config);
  longitudinal::Study::State resumed_state =
      resumed.restore(snapshot::StudySnapshot::decode(mid));
  while (resumed.rounds_remaining(resumed_state)) {
    resumed.run_round(resumed_state);
  }
  const longitudinal::StudyReport report =
      resumed.finish(std::move(resumed_state));

  EXPECT_EQ(digest(resumed_fleet, report), digest(fleet, full));
  std::ostringstream resumed_jsonl;
  resumed_trace.write_jsonl(resumed_jsonl);
  EXPECT_EQ(resumed_jsonl.str(), full_jsonl.str());
}

TEST(CheckpointResume, RefusesMismatchedConfiguration) {
  population::FleetConfig fleet_config = small_fleet_config();
  fleet_config.scale = 0.004;
  population::Fleet fleet(fleet_config);
  longitudinal::Study study(fleet, faulted_study_config());
  longitudinal::Study::State state = study.begin();
  const snapshot::StudySnapshot snap = study.capture(state);

  {
    // Different study seed.
    longitudinal::StudyConfig other = faulted_study_config();
    other.seed = 7;
    population::Fleet fresh(fleet_config);
    longitudinal::Study mismatched(fresh, other);
    EXPECT_THROW(mismatched.restore(snap), snapshot::SnapshotError);
  }
  {
    // Different fault rate.
    longitudinal::StudyConfig other = faulted_study_config();
    other.faults.rate = 0.5;
    population::Fleet fresh(fleet_config);
    longitudinal::Study mismatched(fresh, other);
    EXPECT_THROW(mismatched.restore(snap), snapshot::SnapshotError);
  }
  {
    // Tracing on where the snapshot was taken without.
    net::WireTrace trace;
    longitudinal::StudyConfig other = faulted_study_config();
    other.trace = &trace;
    population::Fleet fresh(fleet_config);
    longitudinal::Study mismatched(fresh, other);
    EXPECT_THROW(mismatched.restore(snap), snapshot::SnapshotError);
  }
  {
    // Different fleet scale (the fleet itself would differ).
    population::FleetConfig other_fleet = fleet_config;
    other_fleet.scale = 0.008;
    population::Fleet fresh(other_fleet);
    longitudinal::Study mismatched(fresh, faulted_study_config());
    EXPECT_THROW(mismatched.restore(snap), snapshot::SnapshotError);
  }
  {
    // Corrupted round counter beyond the study's actual length.
    snapshot::StudySnapshot bad = snap;
    bad.rounds_done = study.total_rounds() + 1;
    population::Fleet fresh(fleet_config);
    longitudinal::Study mismatched(fresh, faulted_study_config());
    EXPECT_THROW(mismatched.restore(bad), snapshot::SnapshotError);
  }
}

TEST(CheckpointResume, ScanSessionHaltWritesResumableCheckpoint) {
  const std::string path = testing::TempDir() + "spfail_ckpt_session.bin";

  session::ScanConfig base;
  base.scale = 0.004;
  base.faults.rate = 0.02;

  session::ScanConfig halting = base;
  halting.checkpoint_path = path;
  halting.halt_after_rounds = 5;
  session::ScanSession first(halting);
  EXPECT_EQ(first.study(), nullptr);
  EXPECT_TRUE(first.halted());

  session::ScanConfig resuming = base;
  resuming.resume_path = path;
  session::ScanSession second(resuming);
  const longitudinal::StudyReport* resumed = second.study();
  ASSERT_NE(resumed, nullptr);
  EXPECT_FALSE(second.halted());

  session::ScanSession uninterrupted(base);
  const longitudinal::StudyReport* full = uninterrupted.study();
  ASSERT_NE(full, nullptr);
  EXPECT_EQ(digest(second.fleet(), *resumed),
            digest(uninterrupted.fleet(), *full));
  std::remove(path.c_str());
}

TEST(CheckpointResume, TerminationSignalCheckpointsAndResumesIdentically) {
  // A caught SIGINT/SIGTERM behaves like a halt request: the session writes
  // a final checkpoint at the next round boundary, reports interrupted(),
  // and a resumed run finishes byte-identically to an uninterrupted one.
  const std::string path = testing::TempDir() + "spfail_ckpt_signal.bin";

  session::ScanConfig base;
  base.scale = 0.004;
  base.faults.rate = 0.02;

  session::ScanConfig signalled = base;
  signalled.checkpoint_path = path;
  util::request_shutdown();
  session::ScanSession first(signalled);
  EXPECT_EQ(first.study(), nullptr);
  EXPECT_TRUE(first.halted());
  EXPECT_TRUE(first.interrupted());
  util::clear_shutdown();

  session::ScanConfig resuming = base;
  resuming.resume_path = path;
  session::ScanSession second(resuming);
  const longitudinal::StudyReport* resumed = second.study();
  ASSERT_NE(resumed, nullptr);
  EXPECT_FALSE(second.interrupted());

  session::ScanSession uninterrupted(base);
  const longitudinal::StudyReport* full = uninterrupted.study();
  ASSERT_NE(full, nullptr);
  EXPECT_EQ(digest(second.fleet(), *resumed),
            digest(uninterrupted.fleet(), *full));
  std::remove(path.c_str());
}

TEST(CheckpointResume, LazyFleetHaltResumeMatchesUninterruptedEagerRun) {
  // §14 end-to-end: a lazy-hosts study halted mid-run and resumed (with the
  // intern-table integrity section enabled) must deliver the same bytes as
  // an uninterrupted eager-fleet run.
  const std::string path = testing::TempDir() + "spfail_ckpt_lazy.bin";

  session::ScanConfig base;
  base.scale = 0.004;
  base.faults.rate = 0.02;

  session::ScanConfig halting = base;
  halting.lazy_hosts = true;
  halting.checkpoint_path = path;
  halting.checkpoint_strings = true;
  halting.halt_after_rounds = 5;
  session::ScanSession first(halting);
  EXPECT_EQ(first.study(), nullptr);
  EXPECT_TRUE(first.halted());

  session::ScanConfig resuming = base;
  resuming.lazy_hosts = true;
  resuming.resume_path = path;
  session::ScanSession second(resuming);
  const longitudinal::StudyReport* resumed = second.study();
  ASSERT_NE(resumed, nullptr);

  session::ScanSession uninterrupted(base);  // eager fleet, no interruption
  const longitudinal::StudyReport* full = uninterrupted.study();
  ASSERT_NE(full, nullptr);
  EXPECT_EQ(digest(second.fleet(), *resumed),
            digest(uninterrupted.fleet(), *full));
  std::remove(path.c_str());
}

TEST(CheckpointResume, FreshRunDiscardsOrphanedTempCheckpoint) {
  // A writer killed mid-checkpoint leaves <path>.tmp behind; atomic rename
  // means <path> itself is never corrupt. A fresh run must clean up the
  // orphan so it cannot shadow or outlive the real snapshot.
  const std::string path = testing::TempDir() + "spfail_ckpt_orphan.bin";
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << "garbage left by a killed writer";
  }

  session::ScanConfig config;
  config.scale = 0.004;
  config.initial_only = true;
  config.checkpoint_path = path;
  session::ScanSession session(config);
  session.initial();

  EXPECT_FALSE(std::ifstream(tmp).good());
  EXPECT_TRUE(std::ifstream(path).good());
  std::remove(path.c_str());
}

TEST(CheckpointResume, CampaignSnapshotShortCircuitsInitialOnly) {
  const std::string path = testing::TempDir() + "spfail_ckpt_campaign.bin";

  session::ScanConfig config;
  config.scale = 0.004;
  config.initial_only = true;
  config.checkpoint_path = path;
  session::ScanSession first(config);
  const scan::CampaignReport& fresh = first.initial();

  session::ScanConfig resuming;
  resuming.scale = 0.004;
  resuming.initial_only = true;
  resuming.resume_path = path;
  session::ScanSession second(resuming);
  const scan::CampaignReport& restored = second.initial();

  std::ostringstream a, b;
  a << report::table3_outcomes(first.fleet(), fresh)
    << report::table4_breakdown(first.fleet(), fresh)
    << report::table7_behaviors(first.fleet(), fresh);
  b << report::table3_outcomes(second.fleet(), restored)
    << report::table4_breakdown(second.fleet(), restored)
    << report::table7_behaviors(second.fleet(), restored);
  EXPECT_EQ(a.str(), b.str());

  // A study run must refuse the campaign-kind snapshot.
  session::ScanConfig wrong_kind;
  wrong_kind.scale = 0.004;
  wrong_kind.resume_path = path;
  session::ScanSession third(wrong_kind);
  EXPECT_THROW(third.study(), snapshot::SnapshotError);
  std::remove(path.c_str());
}

// --- ScanConfig: strict flag/env parsing -----------------------------------

session::ScanConfig parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"spfail_scan"};
  argv.insert(argv.end(), args.begin(), args.end());
  return session::ScanConfig::from_args(static_cast<int>(argv.size()),
                                        argv.data());
}

TEST(ScanConfigArgs, ParsesTheFullFlagSet) {
  const session::ScanConfig config =
      parse({"--scale", "0.25", "--seed", "7", "--threads", "3",
             "--initial-only", "--fault-rate", "0.5", "--fault-seed", "99",
             "--csv", "/tmp/csv", "--trace", "/tmp/t.jsonl", "--lazy-hosts",
             "--checkpoint-strings", "--checkpoint", "/tmp/c.bin",
             "--checkpoint-every", "4", "--halt-after-rounds", "8", "--resume",
             "/tmp/r.bin"});
  EXPECT_EQ(config.scale, 0.25);
  EXPECT_EQ(config.fleet_seed, 7u);
  EXPECT_EQ(config.threads, 3);
  EXPECT_TRUE(config.initial_only);
  EXPECT_EQ(config.faults.rate, 0.5);
  EXPECT_EQ(config.faults.seed, 99u);
  EXPECT_EQ(config.csv_dir, "/tmp/csv");
  EXPECT_EQ(config.trace_path, "/tmp/t.jsonl");
  EXPECT_TRUE(config.tracing());
  EXPECT_TRUE(config.lazy_hosts);
  EXPECT_TRUE(config.checkpoint_strings);
  EXPECT_EQ(config.checkpoint_path, "/tmp/c.bin");
  EXPECT_EQ(config.checkpoint_every, 4);
  EXPECT_EQ(config.halt_after_rounds, 8);
  EXPECT_EQ(config.resume_path, "/tmp/r.bin");
}

TEST(ScanConfigArgs, ParsesAndValidatesTheWorkerFlags) {
  const session::ScanConfig config =
      parse({"--workers", "4", "--worker-restart-budget", "2", "--checkpoint",
             "/tmp/c.bin"});
  EXPECT_EQ(config.workers, 4);
  EXPECT_EQ(config.worker_restart_budget, 2);

  // Cross-flag validation: distributed runs need a checkpoint stem for the
  // per-worker checkpoints, and the numerics must be sane.
  EXPECT_THROW(parse({"--workers", "4"}), session::ScanConfigError);
  EXPECT_THROW(parse({"--workers", "0", "--checkpoint", "/tmp/c.bin"}),
               session::ScanConfigError);
  EXPECT_THROW(parse({"--workers", "x", "--checkpoint", "/tmp/c.bin"}),
               session::ScanConfigError);
  EXPECT_THROW(parse({"--worker-restart-budget", "-1"}),
               session::ScanConfigError);

  // CLI beats the environment for both knobs.
  ::setenv("SPFAIL_WORKERS", "8", 1);
  ::setenv("SPFAIL_WORKER_RESTART_BUDGET", "9", 1);
  const session::ScanConfig from_env =
      parse({"--checkpoint", "/tmp/c.bin"});
  EXPECT_EQ(from_env.workers, 8);
  EXPECT_EQ(from_env.worker_restart_budget, 9);
  const session::ScanConfig overridden =
      parse({"--workers", "2", "--worker-restart-budget", "1", "--checkpoint",
             "/tmp/c.bin"});
  EXPECT_EQ(overridden.workers, 2);
  EXPECT_EQ(overridden.worker_restart_budget, 1);
  ::unsetenv("SPFAIL_WORKERS");
  ::unsetenv("SPFAIL_WORKER_RESTART_BUDGET");
}

TEST(ScanConfigArgs, CommandLineOverridesEnvironment) {
  ::setenv("SPFAIL_SCALE", "0.5", 1);
  const session::ScanConfig env_only = parse({});
  EXPECT_EQ(env_only.scale, 0.5);
  const session::ScanConfig overridden = parse({"--scale", "0.25"});
  EXPECT_EQ(overridden.scale, 0.25);
  ::unsetenv("SPFAIL_SCALE");
}

TEST(ScanConfigArgs, RejectsMalformedNumericsInsteadOfCoercing) {
  // Every one of these was silently 0 (or garbage) under atoi/atof parsing.
  EXPECT_THROW(parse({"--threads", "x"}), session::ScanConfigError);
  EXPECT_THROW(parse({"--threads", "2x"}), session::ScanConfigError);
  EXPECT_THROW(parse({"--threads", "-2"}), session::ScanConfigError);
  EXPECT_THROW(parse({"--scale", "abc"}), session::ScanConfigError);
  EXPECT_THROW(parse({"--scale", "0"}), session::ScanConfigError);
  EXPECT_THROW(parse({"--scale", "1.5"}), session::ScanConfigError);
  EXPECT_THROW(parse({"--fault-rate", "-0.1"}), session::ScanConfigError);
  EXPECT_THROW(parse({"--fault-rate", "1.01"}), session::ScanConfigError);
  EXPECT_THROW(parse({"--fault-seed", "-1"}), session::ScanConfigError);
  EXPECT_THROW(parse({"--seed", ""}), session::ScanConfigError);
  EXPECT_THROW(parse({"--checkpoint-every", "0"}), session::ScanConfigError);
}

TEST(ScanConfigArgs, RejectsUnknownAndIncompleteFlags) {
  EXPECT_THROW(parse({"--frobnicate"}), session::ScanConfigError);
  EXPECT_THROW(parse({"--scale"}), session::ScanConfigError);
  EXPECT_THROW(parse({"--halt-after-rounds", "3"}), session::ScanConfigError);
}

TEST(ScanConfigArgs, RejectsDuplicateFlagOccurrences) {
  // A repeated flag used to be last-one-wins, which silently masked the
  // earlier value in a long command line; it is now a hard error.
  EXPECT_THROW(parse({"--scale", "0.1", "--scale", "0.2"}),
               session::ScanConfigError);
  EXPECT_THROW(parse({"--seed", "1", "--threads", "2", "--seed", "1"}),
               session::ScanConfigError);
  // Switches are flags too.
  EXPECT_THROW(parse({"--lazy-hosts", "--lazy-hosts"}),
               session::ScanConfigError);
  // Distinct flags still compose, and one occurrence each stays legal.
  EXPECT_NO_THROW(parse({"--scale", "0.1", "--seed", "7"}));
}

TEST(ScanConfigArgs, RejectsMalformedEnvironment) {
  ::setenv("SPFAIL_FAULT_RATE", "lots", 1);
  EXPECT_THROW(session::ScanConfig::from_env(), session::ScanConfigError);
  ::setenv("SPFAIL_FAULT_RATE", "2.0", 1);
  EXPECT_THROW(session::ScanConfig::from_env(), session::ScanConfigError);
  ::unsetenv("SPFAIL_FAULT_RATE");
  EXPECT_NO_THROW(session::ScanConfig::from_env());
}

}  // namespace
}  // namespace spfail
