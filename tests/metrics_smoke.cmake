# End-to-end metrics smoke test, run as a ctest entry:
#   1. metered scan                            -> metrics.jsonl + .prom
#   2. the same scan on a different thread count
#   3. scan halted at a mid-study checkpoint, then resumed from the snapshot
# The JSONL round snapshots and the Prometheus exposition must be
# byte-identical across all three — thread counts and process restarts must
# not be observable in the metric output (DESIGN.md §12).
#
# Expects: -DSPFAIL_SCAN=<path to spfail_scan> -DWORK_DIR=<scratch dir>
if(NOT SPFAIL_SCAN OR NOT WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DSPFAIL_SCAN=... -DWORK_DIR=... -P metrics_smoke.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(FLAGS --scale 0.01 --fault-rate 0.02 --metrics metrics.jsonl)

execute_process(
  COMMAND "${SPFAIL_SCAN}" ${FLAGS}
  WORKING_DIRECTORY "${WORK_DIR}"
  OUTPUT_FILE full.out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "metered scan failed (exit ${rc})")
endif()
file(RENAME "${WORK_DIR}/metrics.jsonl" "${WORK_DIR}/metrics_full.jsonl")
file(RENAME "${WORK_DIR}/metrics.jsonl.prom" "${WORK_DIR}/metrics_full.prom")

execute_process(
  COMMAND "${SPFAIL_SCAN}" ${FLAGS} --threads 8
  WORKING_DIRECTORY "${WORK_DIR}"
  OUTPUT_FILE wide.out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "wide metered scan failed (exit ${rc})")
endif()
file(RENAME "${WORK_DIR}/metrics.jsonl" "${WORK_DIR}/metrics_wide.jsonl")
file(RENAME "${WORK_DIR}/metrics.jsonl.prom" "${WORK_DIR}/metrics_wide.prom")

execute_process(
  COMMAND "${SPFAIL_SCAN}" ${FLAGS} --checkpoint snap.bin --halt-after-rounds 11
  WORKING_DIRECTORY "${WORK_DIR}"
  OUTPUT_FILE halted.out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "halting metered scan failed (exit ${rc})")
endif()
if(NOT EXISTS "${WORK_DIR}/snap.bin")
  message(FATAL_ERROR "halting scan wrote no checkpoint")
endif()

execute_process(
  COMMAND "${SPFAIL_SCAN}" ${FLAGS} --resume snap.bin --threads 4
  WORKING_DIRECTORY "${WORK_DIR}"
  OUTPUT_FILE resumed.out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resumed metered scan failed (exit ${rc})")
endif()

foreach(pair
    "metrics_full.jsonl;metrics_wide.jsonl"
    "metrics_full.prom;metrics_wide.prom"
    "metrics_full.jsonl;metrics.jsonl"
    "metrics_full.prom;metrics.jsonl.prom"
    "full.out;wide.out"
    "full.out;resumed.out")
  list(GET pair 0 lhs)
  list(GET pair 1 rhs)
  execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files "${WORK_DIR}/${lhs}" "${WORK_DIR}/${rhs}"
    RESULT_VARIABLE differs)
  if(differs)
    message(FATAL_ERROR "${lhs} and ${rhs} differ: metric output is not byte-identical")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
message(STATUS "metrics smoke test passed (byte-identical across threads and resume)")
