// End-to-end determinism: the whole study — population synthesis, scanning,
// notification, patching, loss, inference — must be bit-for-bit reproducible
// per seed, and meaningfully different across seeds.
#include <gtest/gtest.h>

#include "longitudinal/study.hpp"

namespace spfail {
namespace {

struct StudySummary {
  std::size_t vulnerable_addresses;
  std::size_t vulnerable_domains;
  std::size_t notifications_sent;
  std::size_t notifications_opened;
  std::size_t final_patched;
  std::size_t final_vulnerable;
  std::size_t last_round_inferable;

  friend bool operator==(const StudySummary&, const StudySummary&) = default;
};

StudySummary run_study(std::uint64_t fleet_seed, std::uint64_t study_seed) {
  population::FleetConfig fleet_config;
  fleet_config.scale = 0.01;
  fleet_config.seed = fleet_seed;
  population::Fleet fleet(fleet_config);

  longitudinal::StudyConfig study_config;
  study_config.seed = study_seed;
  longitudinal::Study study(fleet, study_config);
  const longitudinal::StudyReport report = study.run();

  StudySummary summary{};
  summary.vulnerable_addresses = report.initially_vulnerable_addresses;
  summary.vulnerable_domains = report.initially_vulnerable_domains;
  summary.notifications_sent = report.notification.sent;
  summary.notifications_opened = report.notification.opened;
  for (const auto& track : report.tracks) {
    summary.final_patched +=
        track.final_status == longitudinal::FinalStatus::Patched;
    summary.final_vulnerable +=
        track.final_status == longitudinal::FinalStatus::Vulnerable;
  }
  const auto counts = longitudinal::Study::domain_counts_at(
      report, fleet, report.round_times.size() - 1,
      longitudinal::Cohort::All);
  summary.last_round_inferable = counts.inferable;
  return summary;
}

TEST(Determinism, SameSeedsReproduceTheWholeStudy) {
  const StudySummary first = run_study(101, 202);
  const StudySummary second = run_study(101, 202);
  EXPECT_EQ(first, second);
}

TEST(Determinism, FleetSeedChangesOutcome) {
  const StudySummary a = run_study(101, 202);
  const StudySummary b = run_study(102, 202);
  EXPECT_NE(a, b);
}

TEST(Determinism, StudySeedChangesOutcomeOnSameFleet) {
  const StudySummary a = run_study(101, 202);
  const StudySummary b = run_study(101, 203);
  // The fleet (and hence initial vulnerability) is identical...
  EXPECT_EQ(a.vulnerable_addresses, b.vulnerable_addresses);
  EXPECT_EQ(a.vulnerable_domains, b.vulnerable_domains);
  // ...but the longitudinal stochastics (notification draws, loss process,
  // patch plan) differ.
  EXPECT_NE(std::tie(a.notifications_opened, a.final_patched,
                     a.last_round_inferable),
            std::tie(b.notifications_opened, b.final_patched,
                     b.last_round_inferable));
}

}  // namespace
}  // namespace spfail
