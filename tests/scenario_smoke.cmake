# End-to-end --scenario smoke test, run as a ctest entry (DESIGN.md §17):
#   1. each built-in scenario, initial-only, at --threads 1 vs --threads 8
#      under the adversarial stealer — stdout must be byte-identical
#   2. --scenario baseline vs no flag at all — byte-identical (the control
#      stages nothing and prints nothing extra)
#   3. a composed full-study run (forwarding,misconfig) halted at a mid-study
#      checkpoint then resumed — byte-identical to the uninterrupted run,
#      scenario tables included
#
# Expects: -DSPFAIL_SCAN=<path to spfail_scan> -DWORK_DIR=<scratch dir>
if(NOT SPFAIL_SCAN OR NOT WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DSPFAIL_SCAN=... -DWORK_DIR=... -P scenario_smoke.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_scan out_file)
  execute_process(
    COMMAND "${SPFAIL_SCAN}" ${ARGN}
    WORKING_DIRECTORY "${WORK_DIR}"
    OUTPUT_FILE "${out_file}"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "spfail_scan ${ARGN} failed (exit ${rc})")
  endif()
endfunction()

function(expect_same lhs rhs what)
  execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files "${WORK_DIR}/${lhs}" "${WORK_DIR}/${rhs}"
    RESULT_VARIABLE differs)
  if(differs)
    message(FATAL_ERROR "${lhs} and ${rhs} differ: ${what}")
  endif()
endfunction()

set(FLAGS --scale 0.01 --initial-only)

# 1. Per-scenario thread/scheduler determinism.
foreach(name baseline forwarding alignment misconfig)
  run_scan("${name}_t1.out" ${FLAGS} --scenario ${name} --threads 1)
  run_scan("${name}_t8.out" ${FLAGS} --scenario ${name} --threads 8
           --sched steal --steal-mode adversarial)
  expect_same("${name}_t1.out" "${name}_t8.out"
              "scenario '${name}' output is thread-dependent")
endforeach()

# 2. The baseline control is invisible.
run_scan(plain.out ${FLAGS})
expect_same(plain.out baseline_t1.out
            "--scenario baseline changed the scenario-less output")

# 3. Composed specs across a halt/resume process restart (full study).
set(STUDY_FLAGS --scale 0.01 --scenario forwarding,misconfig)
run_scan(study_full.out ${STUDY_FLAGS})
run_scan(study_halted.out ${STUDY_FLAGS} --checkpoint snap.bin
         --halt-after-rounds 11)
if(NOT EXISTS "${WORK_DIR}/snap.bin")
  message(FATAL_ERROR "halting scenario scan wrote no checkpoint")
endif()
run_scan(study_resumed.out ${STUDY_FLAGS} --resume snap.bin --threads 4)
expect_same(study_full.out study_resumed.out
            "scenario study output changed across halt/resume")

file(REMOVE_RECURSE "${WORK_DIR}")
message(STATUS "scenario smoke test passed (byte-identical across threads, baseline, and resume)")
