// util::ConcurrentTable (DESIGN.md §16): CAS-published slots, fixed
// capacity, and the invariants the lock-free scan state leans on — insert
// exactly once under races, growth refusal instead of rehashing, and
// order-free iteration whose merged result is invariant to insertion order.
// The whole file re-runs under TSan via the tsan_lockfree ctest entry.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "spf/record_cache.hpp"
#include "util/concurrent_table.hpp"

namespace spfail {
namespace {

struct Counter {
  std::atomic<std::uint64_t> value{0};
};

TEST(ConcurrentTable, InsertThenFindRoundTrips) {
  util::ConcurrentTable<Counter> table(8);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.find(7), nullptr);

  const auto first = table.find_or_insert(7);
  ASSERT_NE(first.payload, nullptr);
  EXPECT_TRUE(first.inserted);
  first.payload->value.store(99);

  const auto again = table.find_or_insert(7);
  EXPECT_FALSE(again.inserted);
  EXPECT_EQ(again.payload, first.payload);

  Counter* found = table.find(7);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->value.load(), 99u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(ConcurrentTable, ZeroAndAllOnesAreOrdinaryKeys) {
  // Occupancy lives in the state byte, not a reserved key value — the
  // per-/24 provider groups legitimately hash to 0.
  util::ConcurrentTable<Counter> table(8);
  EXPECT_TRUE(table.find_or_insert(0).inserted);
  EXPECT_TRUE(table.find_or_insert(~0ULL).inserted);
  EXPECT_FALSE(table.find_or_insert(0).inserted);
  EXPECT_NE(table.find(0), nullptr);
  EXPECT_NE(table.find(~0ULL), nullptr);
  EXPECT_EQ(table.size(), 2u);
}

TEST(ConcurrentTable, InitRunsOnlyForTheInsertingCall) {
  util::ConcurrentTable<Counter> table(8);
  int init_calls = 0;
  const auto init = [&](Counter& c) {
    ++init_calls;
    c.value.store(5);
  };
  table.find_or_insert(3, init);
  table.find_or_insert(3, init);
  table.find_or_insert(3, init);
  EXPECT_EQ(init_calls, 1);
  EXPECT_EQ(table.find(3)->value.load(), 5u);
}

TEST(ConcurrentTable, RefusesToGrowWhenFull) {
  // expected=1 rounds up to capacity 16; the 17th distinct key must throw
  // instead of rehashing (growth would invalidate concurrent probes).
  util::ConcurrentTable<Counter> table(1);
  ASSERT_EQ(table.capacity(), 16u);
  for (std::uint64_t k = 0; k < 16; ++k) {
    EXPECT_TRUE(table.find_or_insert(k).inserted);
  }
  EXPECT_EQ(table.size(), 16u);
  EXPECT_THROW(table.find_or_insert(16), util::TableFullError);
  // Existing entries stay reachable after the refusal.
  EXPECT_FALSE(table.find_or_insert(11).inserted);
  EXPECT_NE(table.find(11), nullptr);
}

TEST(ConcurrentTable, ConcurrentInsertsConvergeOnOneSlotPerKey) {
  // Many threads race find_or_insert over a small shared key set: per key,
  // exactly one call observes inserted == true, and every call lands on the
  // same payload (counted via post-publication fetch_add).
  constexpr int kThreads = 8;
  constexpr std::uint64_t kKeys = 64;
  constexpr int kRepeats = 200;
  util::ConcurrentTable<Counter> table(kKeys);
  std::atomic<int> inserted_total{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRepeats; ++r) {
        const std::uint64_t key =
            static_cast<std::uint64_t>((t * kRepeats + r)) % kKeys;
        const auto result = table.find_or_insert(key);
        if (result.inserted) inserted_total.fetch_add(1);
        result.payload->value.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(inserted_total.load(), static_cast<int>(kKeys));
  EXPECT_EQ(table.size(), kKeys);
  std::uint64_t touches = 0;
  table.for_each([&](std::uint64_t, const Counter& c) {
    touches += c.value.load();
  });
  EXPECT_EQ(touches, static_cast<std::uint64_t>(kThreads) * kRepeats);
}

TEST(ConcurrentTable, FindRacingInsertSeesFullPayloadOrNothing) {
  // A reader hammering find() while writers publish must only ever observe
  // the post-init payload value — never the default-constructed zero of a
  // half-published slot.
  constexpr std::uint64_t kKeys = 256;
  util::ConcurrentTable<Counter> table(kKeys);
  std::atomic<bool> stop{false};
  std::atomic<int> torn_reads{0};
  std::thread reader([&] {
    while (!stop.load()) {
      for (std::uint64_t k = 0; k < kKeys; ++k) {
        const Counter* c = table.find(k);
        if (c != nullptr && c->value.load() != k + 1) torn_reads.fetch_add(1);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      for (std::uint64_t k = t; k < kKeys; k += 4) {
        table.find_or_insert(k, [&](Counter& c) { c.value.store(k + 1); });
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(torn_reads.load(), 0);
  EXPECT_EQ(table.size(), kKeys);
}

TEST(ConcurrentTable, MergedResultInvariantToInsertionOrder) {
  // The scan core's determinism trick: for_each order is unspecified, so
  // callers sort or sum what it yields. Two tables filled in opposite orders
  // (and one filled concurrently) must merge to the same map.
  constexpr std::uint64_t kKeys = 128;
  const auto merged = [](const util::ConcurrentTable<Counter>& table) {
    std::map<std::uint64_t, std::uint64_t> out;
    table.for_each([&](std::uint64_t key, const Counter& c) {
      out[key] = c.value.load();
    });
    return out;
  };

  util::ConcurrentTable<Counter> forward(kKeys);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    forward.find_or_insert(k, [&](Counter& c) { c.value.store(k * 3); });
  }
  util::ConcurrentTable<Counter> backward(kKeys);
  for (std::uint64_t k = kKeys; k-- > 0;) {
    backward.find_or_insert(k, [&](Counter& c) { c.value.store(k * 3); });
  }
  util::ConcurrentTable<Counter> racing(kKeys);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t k = t; k < kKeys; k += 4) {
        racing.find_or_insert(k, [&](Counter& c) { c.value.store(k * 3); });
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const auto expected = merged(forward);
  EXPECT_EQ(expected.size(), kKeys);
  EXPECT_EQ(expected, merged(backward));
  EXPECT_EQ(expected, merged(racing));
}

// ------------------------------------------------- shared SPF record memo

TEST(ConcurrentTableRecordCache, ParsesOnceAndServesHits) {
  spf::SharedRecordCache cache(16);
  const std::string text = "v=spf1 ip4:192.0.2.0/24 -all";
  const auto* first = cache.lookup(text);
  ASSERT_NE(first, nullptr);
  EXPECT_TRUE(first->ok);
  EXPECT_EQ(first->text, text);
  const auto* again = cache.lookup(text);
  EXPECT_EQ(again, first);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(ConcurrentTableRecordCache, CachesSyntaxErrorsAsNegativeEntries) {
  spf::SharedRecordCache cache(16);
  const std::string bad = "v=spf1 ip4:not-an-address -all";
  const auto* entry = cache.lookup(bad);
  ASSERT_NE(entry, nullptr);
  EXPECT_FALSE(entry->ok);
  EXPECT_EQ(cache.lookup(bad), entry);  // the failure is memoised too
}

TEST(ConcurrentTableRecordCache, ConcurrentLookupsConverge) {
  spf::SharedRecordCache cache(64);
  const std::vector<std::string> texts = {
      "v=spf1 -all",
      "v=spf1 a mx ~all",
      "v=spf1 include:_spf.example.com ?all",
      "v=spf1 ip4:198.51.100.0/24 +all",
  };
  std::vector<std::thread> threads;
  std::vector<std::vector<const spf::SharedRecordCache::Entry*>> seen(6);
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < 100; ++r) {
        seen[t].push_back(cache.lookup(texts[r % texts.size()]));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(cache.size(), texts.size());
  // Every thread resolved each text to the same published entry.
  for (std::size_t i = 0; i < texts.size(); ++i) {
    std::set<const spf::SharedRecordCache::Entry*> entries;
    for (const auto& lane : seen) {
      for (std::size_t r = i; r < lane.size(); r += texts.size()) {
        entries.insert(lane[r]);
      }
    }
    EXPECT_EQ(entries.size(), 1u) << "text " << texts[i];
  }
}

}  // namespace
}  // namespace spfail
