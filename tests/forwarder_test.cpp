#include <gtest/gtest.h>

#include "dns/forwarder.hpp"
#include "dns/zonefile.hpp"

namespace spfail::dns {
namespace {

class ForwarderFixture : public ::testing::Test {
 protected:
  ForwarderFixture() : forwarder_(authority_, clock_) {
    authority_.add_zone(parse_zone_text(R"(
$ORIGIN example.com.
@ 60 IN A 192.0.2.1
@    IN TXT "v=spf1 -all"
)",
                                        Name::from_string("example.com")));
  }

  Message ask(std::uint16_t id, const char* name, RRType type) {
    return forwarder_.handle(
        Message::make_query(id, Name::from_string(name), type),
        util::IpAddress::v4(10, 0, 0, 2), clock_.now());
  }

  AuthoritativeServer authority_;
  util::SimClock clock_;
  CachingForwarder forwarder_;
};

TEST_F(ForwarderFixture, ForwardsAndCaches) {
  const Message first = ask(1, "example.com", RRType::A);
  ASSERT_EQ(first.answers.size(), 1u);
  EXPECT_EQ(forwarder_.upstream_queries(), 1u);

  const Message second = ask(2, "example.com", RRType::A);
  EXPECT_EQ(second.answers, first.answers);
  EXPECT_EQ(forwarder_.upstream_queries(), 1u);
  EXPECT_EQ(forwarder_.cache_hits(), 1u);
  // Only the first query reached the authority's log.
  EXPECT_EQ(authority_.query_log().size(), 1u);
}

TEST_F(ForwarderFixture, CachedResponseCarriesClientsTransactionId) {
  ask(7, "example.com", RRType::A);
  const Message cached = ask(99, "example.com", RRType::A);
  EXPECT_EQ(cached.header.id, 99);
}

TEST_F(ForwarderFixture, TtlExpiryRefetches) {
  ask(1, "example.com", RRType::A);  // 60 s TTL
  clock_.advance_by(61);
  ask(2, "example.com", RRType::A);
  EXPECT_EQ(forwarder_.upstream_queries(), 2u);
}

TEST_F(ForwarderFixture, DistinctTypesCachedSeparately) {
  ask(1, "example.com", RRType::A);
  ask(2, "example.com", RRType::TXT);
  EXPECT_EQ(forwarder_.upstream_queries(), 2u);
}

TEST_F(ForwarderFixture, NegativeAnswersCachedToo) {
  ask(1, "missing.example.com", RRType::A);
  ask(2, "missing.example.com", RRType::A);
  EXPECT_EQ(forwarder_.upstream_queries(), 1u);
}

TEST_F(ForwarderFixture, FlushClearsEverything) {
  ask(1, "example.com", RRType::A);
  forwarder_.flush();
  ask(2, "example.com", RRType::A);
  EXPECT_EQ(forwarder_.upstream_queries(), 2u);
}

}  // namespace
}  // namespace spfail::dns
