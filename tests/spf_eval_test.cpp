#include <gtest/gtest.h>

#include "dns/resolver.hpp"
#include "dns/server.hpp"
#include "spf/eval.hpp"

namespace spfail::spf {
namespace {

using dns::Name;
using dns::ResourceRecord;
using dns::RRType;
using dns::Zone;
using util::IpAddress;

class EvalFixture : public ::testing::Test {
 protected:
  EvalFixture()
      : resolver_(server_, clock_, IpAddress::v4(198, 51, 100, 53)) {}

  void add_zone(Zone zone) { server_.add_zone(std::move(zone)); }

  CheckOutcome check(const std::string& sender_local,
                     const std::string& sender_domain,
                     IpAddress client_ip) {
    Evaluator evaluator(resolver_, expander_);
    CheckRequest request;
    request.client_ip = client_ip;
    request.sender_local = sender_local;
    request.sender_domain = Name::from_string(sender_domain);
    request.helo_domain = Name::from_string("client.example.net");
    return evaluator.check_host(request);
  }

  dns::AuthoritativeServer server_;
  util::SimClock clock_;
  dns::StubResolver resolver_;
  Rfc7208Expander expander_;
};

Zone basic_zone(const std::string& spf) {
  Zone zone(Name::from_string("example.com"));
  zone.add(ResourceRecord::txt(Name::from_string("example.com"), spf));
  zone.add(ResourceRecord::a(Name::from_string("foo.example.com"),
                             IpAddress::v4(192, 0, 2, 10)));
  zone.add(ResourceRecord::mx(Name::from_string("example.com"), 10,
                              Name::from_string("mx1.example.com")));
  zone.add(ResourceRecord::a(Name::from_string("mx1.example.com"),
                             IpAddress::v4(192, 0, 2, 25)));
  return zone;
}

TEST_F(EvalFixture, NoRecordIsNone) {
  Zone zone(Name::from_string("example.com"));
  zone.add(ResourceRecord::txt(Name::from_string("example.com"),
                               "some unrelated txt"));
  add_zone(std::move(zone));
  EXPECT_EQ(check("user", "example.com", IpAddress::v4(1, 2, 3, 4)).result,
            Result::None);
}

TEST_F(EvalFixture, NxDomainIsNone) {
  add_zone(Zone(Name::from_string("example.com")));
  EXPECT_EQ(check("user", "example.com", IpAddress::v4(1, 2, 3, 4)).result,
            Result::None);
}

TEST_F(EvalFixture, MultipleSpfRecordsIsPermError) {
  Zone zone(Name::from_string("example.com"));
  zone.add(ResourceRecord::txt(Name::from_string("example.com"), "v=spf1 -all"));
  zone.add(ResourceRecord::txt(Name::from_string("example.com"), "v=spf1 +all"));
  add_zone(std::move(zone));
  EXPECT_EQ(check("user", "example.com", IpAddress::v4(1, 2, 3, 4)).result,
            Result::PermError);
}

TEST_F(EvalFixture, SyntaxErrorIsPermError) {
  add_zone(basic_zone("v=spf1 bogus-mechanism -all"));
  EXPECT_EQ(check("user", "example.com", IpAddress::v4(1, 2, 3, 4)).result,
            Result::PermError);
}

TEST_F(EvalFixture, Ip4Match) {
  add_zone(basic_zone("v=spf1 ip4:203.0.113.0/24 -all"));
  EXPECT_EQ(check("user", "example.com", IpAddress::v4(203, 0, 113, 7)).result,
            Result::Pass);
  EXPECT_EQ(check("user", "example.com", IpAddress::v4(203, 0, 114, 7)).result,
            Result::Fail);
}

TEST_F(EvalFixture, Ip6Match) {
  add_zone(basic_zone("v=spf1 ip6:2001:db8::/32 -all"));
  EXPECT_EQ(
      check("user", "example.com", *IpAddress::parse("2001:db8::99")).result,
      Result::Pass);
  EXPECT_EQ(
      check("user", "example.com", *IpAddress::parse("2001:db9::99")).result,
      Result::Fail);
}

TEST_F(EvalFixture, AMechanismMatchesHostAddress) {
  add_zone(basic_zone("v=spf1 a:foo.example.com -all"));
  EXPECT_EQ(check("user", "example.com", IpAddress::v4(192, 0, 2, 10)).result,
            Result::Pass);
  EXPECT_EQ(check("user", "example.com", IpAddress::v4(192, 0, 2, 11)).result,
            Result::Fail);
}

TEST_F(EvalFixture, AMechanismWithCidr) {
  add_zone(basic_zone("v=spf1 a:foo.example.com/24 -all"));
  EXPECT_EQ(check("user", "example.com", IpAddress::v4(192, 0, 2, 200)).result,
            Result::Pass);
}

TEST_F(EvalFixture, BareAMechanismUsesCurrentDomain) {
  Zone zone = basic_zone("v=spf1 a -all");
  zone.add(ResourceRecord::a(Name::from_string("example.com"),
                             IpAddress::v4(192, 0, 2, 77)));
  add_zone(std::move(zone));
  EXPECT_EQ(check("user", "example.com", IpAddress::v4(192, 0, 2, 77)).result,
            Result::Pass);
}

TEST_F(EvalFixture, MxMechanism) {
  add_zone(basic_zone("v=spf1 mx -all"));
  EXPECT_EQ(check("user", "example.com", IpAddress::v4(192, 0, 2, 25)).result,
            Result::Pass);
  EXPECT_EQ(check("user", "example.com", IpAddress::v4(192, 0, 2, 26)).result,
            Result::Fail);
}

TEST_F(EvalFixture, SoftFailQualifier) {
  add_zone(basic_zone("v=spf1 ~all"));
  EXPECT_EQ(check("user", "example.com", IpAddress::v4(9, 9, 9, 9)).result,
            Result::SoftFail);
}

TEST_F(EvalFixture, NeutralQualifier) {
  add_zone(basic_zone("v=spf1 ?all"));
  EXPECT_EQ(check("user", "example.com", IpAddress::v4(9, 9, 9, 9)).result,
            Result::Neutral);
}

TEST_F(EvalFixture, NoMatchNoAllIsNeutral) {
  add_zone(basic_zone("v=spf1 ip4:192.0.2.1"));
  EXPECT_EQ(check("user", "example.com", IpAddress::v4(9, 9, 9, 9)).result,
            Result::Neutral);
}

TEST_F(EvalFixture, IncludePass) {
  add_zone(basic_zone("v=spf1 include:bar.org -all"));
  Zone bar(Name::from_string("bar.org"));
  bar.add(ResourceRecord::txt(Name::from_string("bar.org"),
                              "v=spf1 ip4:198.51.100.0/24 -all"));
  add_zone(std::move(bar));
  EXPECT_EQ(check("user", "example.com", IpAddress::v4(198, 51, 100, 9)).result,
            Result::Pass);
  // include's inner Fail is a non-match, so evaluation reaches -all.
  EXPECT_EQ(check("user", "example.com", IpAddress::v4(9, 9, 9, 9)).result,
            Result::Fail);
}

TEST_F(EvalFixture, IncludeOfMissingPolicyIsPermError) {
  add_zone(basic_zone("v=spf1 include:nopolicy.org -all"));
  Zone nopolicy(Name::from_string("nopolicy.org"));
  add_zone(std::move(nopolicy));
  EXPECT_EQ(check("user", "example.com", IpAddress::v4(9, 9, 9, 9)).result,
            Result::PermError);
}

TEST_F(EvalFixture, RedirectReplacesPolicy) {
  add_zone(basic_zone("v=spf1 redirect=other.org"));
  Zone other(Name::from_string("other.org"));
  other.add(ResourceRecord::txt(Name::from_string("other.org"),
                                "v=spf1 ip4:10.0.0.0/8 -all"));
  add_zone(std::move(other));
  EXPECT_EQ(check("user", "example.com", IpAddress::v4(10, 1, 2, 3)).result,
            Result::Pass);
  EXPECT_EQ(check("user", "example.com", IpAddress::v4(11, 1, 2, 3)).result,
            Result::Fail);
}

TEST_F(EvalFixture, RedirectToMissingPolicyIsPermError) {
  add_zone(basic_zone("v=spf1 redirect=missing.org"));
  add_zone(Zone(Name::from_string("missing.org")));
  EXPECT_EQ(check("user", "example.com", IpAddress::v4(9, 9, 9, 9)).result,
            Result::PermError);
}

TEST_F(EvalFixture, ExistsMechanism) {
  Zone zone = basic_zone("v=spf1 exists:%{i}.allow.example.com -all");
  zone.add(ResourceRecord::a(
      Name::from_string("203.0.113.7.allow.example.com"),
      IpAddress::v4(127, 0, 0, 2)));
  add_zone(std::move(zone));
  EXPECT_EQ(check("user", "example.com", IpAddress::v4(203, 0, 113, 7)).result,
            Result::Pass);
  EXPECT_EQ(check("user", "example.com", IpAddress::v4(203, 0, 113, 8)).result,
            Result::Fail);
}

TEST_F(EvalFixture, MacroTargetInAMechanism) {
  // The paper's running example: a:%{d1r}.foo.com with sender
  // user@example.com resolves example.foo.com.
  add_zone(basic_zone("v=spf1 a:%{d1r}.foo.com -all"));
  Zone foo(Name::from_string("foo.com"));
  foo.add(ResourceRecord::a(Name::from_string("example.foo.com"),
                            IpAddress::v4(192, 0, 2, 55)));
  add_zone(std::move(foo));
  EXPECT_EQ(check("user", "example.com", IpAddress::v4(192, 0, 2, 55)).result,
            Result::Pass);

  // And the DNS server saw exactly the compliant expansion.
  bool saw = false;
  for (const auto& e : server_.query_log().entries()) {
    if (e.qname.to_string() == "example.foo.com") saw = true;
  }
  EXPECT_TRUE(saw);
}

TEST_F(EvalFixture, LookupLimitEnforced) {
  // 11 chained includes exceed the RFC's 10-mechanism lookup budget.
  std::string spf = "v=spf1 include:i0.example.com -all";
  add_zone(basic_zone(spf));
  for (int i = 0; i < 11; ++i) {
    Zone zone(Name::from_string("i" + std::to_string(i) + ".example.com"));
    zone.add(ResourceRecord::txt(
        Name::from_string("i" + std::to_string(i) + ".example.com"),
        "v=spf1 include:i" + std::to_string(i + 1) + ".example.com -all"));
    add_zone(std::move(zone));
  }
  EXPECT_EQ(check("user", "example.com", IpAddress::v4(9, 9, 9, 9)).result,
            Result::PermError);
}

TEST_F(EvalFixture, VoidLookupLimitEnforced) {
  // Three void lookups (NXDOMAIN) exceed the limit of two.
  add_zone(basic_zone(
      "v=spf1 a:v1.example.com a:v2.example.com a:v3.example.com -all"));
  EXPECT_EQ(check("user", "example.com", IpAddress::v4(9, 9, 9, 9)).result,
            Result::PermError);
}

TEST_F(EvalFixture, TwoVoidLookupsAreFine) {
  add_zone(basic_zone("v=spf1 a:v1.example.com a:v2.example.com +all"));
  EXPECT_EQ(check("user", "example.com", IpAddress::v4(9, 9, 9, 9)).result,
            Result::Pass);
}

TEST_F(EvalFixture, EmptySenderLocalBecomesPostmaster) {
  Zone zone = basic_zone("v=spf1 exists:%{l}.who.example.com -all");
  zone.add(ResourceRecord::a(Name::from_string("postmaster.who.example.com"),
                             IpAddress::v4(127, 0, 0, 2)));
  add_zone(std::move(zone));
  EXPECT_EQ(check("", "example.com", IpAddress::v4(5, 5, 5, 5)).result,
            Result::Pass);
}

TEST_F(EvalFixture, ExplanationResolvedOnFail) {
  Zone zone = basic_zone("v=spf1 -all exp=why.example.com");
  zone.add(ResourceRecord::txt(Name::from_string("why.example.com"),
                               "Mail from %{i} was rejected"));
  add_zone(std::move(zone));
  const CheckOutcome outcome =
      check("user", "example.com", IpAddress::v4(203, 0, 113, 7));
  EXPECT_EQ(outcome.result, Result::Fail);
  EXPECT_EQ(outcome.explanation, "Mail from 203.0.113.7 was rejected");
}

TEST_F(EvalFixture, LookupCountsReported) {
  add_zone(basic_zone("v=spf1 a:foo.example.com mx -all"));
  const CheckOutcome outcome =
      check("user", "example.com", IpAddress::v4(192, 0, 2, 10));
  EXPECT_EQ(outcome.result, Result::Pass);
  EXPECT_EQ(outcome.dns_mechanism_lookups, 1);  // stopped at the a: match
}

TEST_F(EvalFixture, PtrMechanism) {
  Zone zone = basic_zone("v=spf1 ptr -all");
  add_zone(std::move(zone));
  Zone arpa(Name::from_string("in-addr.arpa"));
  arpa.add(ResourceRecord{Name::from_string("7.113.0.203.in-addr.arpa"),
                          RRType::PTR, dns::RRClass::IN, 300,
                          dns::PtrRdata{Name::from_string("mail.example.com")}});
  add_zone(std::move(arpa));
  Zone fwd(Name::from_string("mail.example.com"));
  fwd.add(ResourceRecord::a(Name::from_string("mail.example.com"),
                            IpAddress::v4(203, 0, 113, 7)));
  add_zone(std::move(fwd));
  EXPECT_EQ(check("user", "example.com", IpAddress::v4(203, 0, 113, 7)).result,
            Result::Pass);
  // Unconfirmed address fails.
  EXPECT_EQ(check("user", "example.com", IpAddress::v4(203, 0, 113, 9)).result,
            Result::Fail);
}

}  // namespace
}  // namespace spfail::spf
