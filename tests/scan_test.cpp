// Unit tests for the scan module's supporting pieces: label allocation,
// the username ladder, the templated test responder, and funnel statistics
// of a generated fleet against the paper's Table 3 calibration.
#include <gtest/gtest.h>

#include "population/fleet.hpp"
#include "population/paper_constants.hpp"
#include "scan/labels.hpp"
#include "scan/test_responder.hpp"
#include "scan/usernames.hpp"
#include "util/strings.hpp"

namespace spfail::scan {
namespace {

// ------------------------------------------------------------- labels

TEST(Labels, IdsAreUniqueAndWellFormed) {
  LabelAllocator labels(util::Rng(1),
                        dns::Name::from_string("spf-test.dns-lab.org"));
  std::set<std::string> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::string id = labels.new_id();
    EXPECT_GE(id.size(), 4u);
    EXPECT_LE(id.size(), 5u);
    EXPECT_TRUE(util::is_alnum(id));
    EXPECT_TRUE(seen.insert(id).second) << "duplicate id " << id;
  }
}

TEST(Labels, SuitesAreUnique) {
  LabelAllocator labels(util::Rng(2),
                        dns::Name::from_string("spf-test.dns-lab.org"));
  std::set<std::string> seen;
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(seen.insert(labels.new_suite()).second);
  }
}

TEST(Labels, MailFromDomainShape) {
  LabelAllocator labels(util::Rng(3),
                        dns::Name::from_string("spf-test.dns-lab.org"));
  const dns::Name domain = labels.mail_from_domain("ab1cd", "t9xyz");
  EXPECT_EQ(domain.to_string(), "ab1cd.t9xyz.spf-test.dns-lab.org");
  EXPECT_TRUE(domain.is_subdomain_of(labels.base()));
}

TEST(Labels, DeterministicPerSeed) {
  LabelAllocator a(util::Rng(7), dns::Name::from_string("x.example"));
  LabelAllocator b(util::Rng(7), dns::Name::from_string("x.example"));
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.new_id(), b.new_id());
}

// ------------------------------------------------------------- usernames

TEST(Usernames, LadderMatchesPaperSection63) {
  ASSERT_EQ(kUsernameLadder.size(), 14u);
  EXPECT_EQ(kUsernameLadder[0], "mmj7yzdm0tbk");  // random token first
  EXPECT_EQ(kUsernameLadder[1], "noreply");
  EXPECT_EQ(kUsernameLadder[4], "postmaster");
  EXPECT_EQ(kUsernameLadder[13], "service");
}

// ------------------------------------------------------------- responder

TEST(Responder, PolicyEchoesIdAndSuite) {
  const TestResponderConfig config;
  const std::string policy = test_policy_text(
      config, dns::Name::from_string("myid.suite1.spf-test.dns-lab.org"));
  EXPECT_NE(policy.find("a:%{d1r}.myid.suite1.spf-test.dns-lab.org"),
            std::string::npos);
  EXPECT_NE(policy.find("a:b.myid.suite1.spf-test.dns-lab.org"),
            std::string::npos);
  EXPECT_NE(policy.find("-all"), std::string::npos);
}

TEST(Responder, AnswersFailClosedForScanner) {
  // The served A record must never match a probing scanner's address, so
  // probe mail always fails SPF (section 6.2's anti-delivery design).
  dns::AuthoritativeServer server;
  const TestResponderConfig config = install_test_responder(server);
  EXPECT_NE(config.answer_v4, util::IpAddress::v4(198, 51, 100, 10));
}

// --------------------------------------------------- fleet funnel statistics

TEST(FleetFunnel, AddressRatesTrackTable3) {
  population::FleetConfig config;
  config.scale = 0.05;
  population::Fleet fleet(config);

  std::size_t alexa_total = 0, alexa_refused = 0;
  std::size_t validates = 0, at_mailfrom = 0;
  for (const auto& domain : fleet.domains()) {
    for (const auto& address : domain.addresses) {
      const auto* host = fleet.find_host(address);
      ASSERT_NE(host, nullptr);
    }
  }
  // Walk every unique host through its profile.
  std::set<util::IpAddress> seen;
  for (const auto& domain : fleet.domains()) {
    for (const auto& address : domain.addresses) {
      if (!seen.insert(address).second) continue;
      const auto& info = fleet.info(address);
      if (!info.in_alexa_set) continue;
      const auto& profile = fleet.find_host(address)->profile();
      ++alexa_total;
      alexa_refused += !profile.accepts_connections;
      validates += profile.validates_spf;
      at_mailfrom += profile.validates_spf &&
                     profile.spf_timing == mta::SpfTiming::AtMailFrom;
    }
  }
  ASSERT_GT(alexa_total, 1000u);
  // Table 3: 47% of Alexa addresses refused connections.
  EXPECT_NEAR(static_cast<double>(alexa_refused) / alexa_total,
              population::paper::kAlexaAddrRefused, 0.03);
  // Conclusively measurable share (validators) ~ Total SPF Measured 23%.
  EXPECT_NEAR(static_cast<double>(validates) / alexa_total, 0.23, 0.05);
  // Both validation timings exist in quantity.
  EXPECT_GT(at_mailfrom, alexa_total / 50);
  EXPECT_GT(validates - at_mailfrom, at_mailfrom);  // after-DATA dominates
}

TEST(FleetFunnel, VulnerableShareOfValidators) {
  population::FleetConfig config;
  config.scale = 0.05;
  population::Fleet fleet(config);
  std::size_t validators = 0, vulnerable = 0;
  std::set<util::IpAddress> seen;
  for (const auto& domain : fleet.domains()) {
    for (const auto& address : domain.addresses) {
      if (!seen.insert(address).second) continue;
      const auto* host = fleet.find_host(address);
      if (!host->profile().validates_spf) continue;
      ++validators;
      vulnerable += host->runs_vulnerable_engine();
    }
  }
  // Table 4: ~1 in 6 measured addresses run vulnerable libSPF2.
  EXPECT_NEAR(static_cast<double>(vulnerable) / validators, 0.17, 0.04);
}

}  // namespace
}  // namespace spfail::scan
