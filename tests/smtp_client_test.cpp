#include <gtest/gtest.h>

#include "smtp/client.hpp"

namespace spfail::smtp {
namespace {

class AcceptingHandler : public SessionHandler {
 public:
  Reply on_hello(const std::string&, const util::IpAddress&) override {
    return replies::ok();
  }
  Reply on_mail_from(const std::string&, const std::string&,
                     const util::IpAddress&) override {
    return replies::ok();
  }
  Reply on_rcpt_to(const std::string& recipient,
                   const util::IpAddress&) override {
    if (recipient.starts_with("reject")) return replies::mailbox_unavailable();
    return replies::ok();
  }
  Reply on_message(const Envelope& envelope, const util::IpAddress&) override {
    received.push_back(envelope);
    return replies::ok();
  }
  std::vector<Envelope> received;
};

mail::Message small_message() {
  mail::Message message;
  message.add_header("From", "a@b.example");
  message.add_header("Subject", "x");
  message.set_body("line one\r\n.leading dot line\r\nline three\r\n");
  return message;
}

TEST(SmtpClient, DeliversWholeMessage) {
  AcceptingHandler handler;
  ServerSession session(handler, util::IpAddress::v4(10, 0, 0, 1));
  Client client("client.example");
  const DeliveryResult result = client.deliver(
      session, "a@b.example", {"rcpt@c.example"}, small_message());

  EXPECT_TRUE(result.accepted);
  EXPECT_EQ(result.final_code, 250);
  ASSERT_EQ(handler.received.size(), 1u);
  // Dot-stuffing round-trips: the leading-dot line arrives intact.
  EXPECT_NE(handler.received[0].data.find("\n.leading dot line\n"),
            std::string::npos);
  EXPECT_NE(handler.received[0].data.find("Subject: x"), std::string::npos);
}

TEST(SmtpClient, TranscriptCoversDialog) {
  AcceptingHandler handler;
  ServerSession session(handler, util::IpAddress::v4(10, 0, 0, 1));
  Client client("client.example");
  const DeliveryResult result = client.deliver(
      session, "a@b.example", {"rcpt@c.example"}, small_message());
  const std::string transcript = result.transcript_text();
  for (const char* expected :
       {"S: 220", "C: EHLO client.example", "C: MAIL FROM:<a@b.example>",
        "C: RCPT TO:<rcpt@c.example>", "C: DATA", "S: 354", "C: .",
        "C: QUIT", "S: 221"}) {
    EXPECT_NE(transcript.find(expected), std::string::npos) << expected;
  }
}

TEST(SmtpClient, PartialRecipientRejectionStillDelivers) {
  AcceptingHandler handler;
  ServerSession session(handler, util::IpAddress::v4(10, 0, 0, 1));
  Client client("c.example");
  const DeliveryResult result = client.deliver(
      session, "a@b.example", {"reject-me@c.example", "ok@c.example"},
      small_message());
  EXPECT_TRUE(result.accepted);
  ASSERT_EQ(handler.received.size(), 1u);
  EXPECT_EQ(handler.received[0].recipients.size(), 1u);
}

TEST(SmtpClient, AllRecipientsRejectedFails) {
  AcceptingHandler handler;
  ServerSession session(handler, util::IpAddress::v4(10, 0, 0, 1));
  Client client("c.example");
  const DeliveryResult result = client.deliver(
      session, "a@b.example", {"reject-1@c.example", "reject-2@c.example"},
      small_message());
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.final_code, 550);
  EXPECT_TRUE(handler.received.empty());
}

class RejectAtDataHandler : public AcceptingHandler {
 public:
  Reply on_message(const Envelope&, const util::IpAddress&) override {
    return Reply{554, "content rejected"};
  }
};

TEST(SmtpClient, RejectionAtEndOfData) {
  RejectAtDataHandler handler;
  ServerSession session(handler, util::IpAddress::v4(10, 0, 0, 1));
  Client client("c.example");
  const DeliveryResult result =
      client.deliver(session, "a@b.example", {"x@c.example"}, small_message());
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.final_code, 554);
}

}  // namespace
}  // namespace spfail::smtp
