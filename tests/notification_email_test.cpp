// Tests for the rendered notification email and the full-auth DMARC
// disposition overload.
#include <gtest/gtest.h>

#include "dmarc/discovery.hpp"
#include "longitudinal/notification.hpp"

namespace spfail {
namespace {

longitudinal::NotificationGroup make_group() {
  longitudinal::NotificationGroup group;
  group.recipient_domain = "victim.example";
  group.covered_domains = {"victim.example", "also-hosted.example"};
  group.addresses = {util::IpAddress::v4(203, 0, 113, 10),
                     util::IpAddress::v4(203, 0, 113, 11)};
  group.tracking_token = "tok1234567890abc";
  return group;
}

TEST(NotificationEmail, HeadersAndRecipients) {
  const auto message = longitudinal::NotificationCampaign::render_email(
      make_group(), longitudinal::NotificationConfig{});
  EXPECT_EQ(*message.first_header("To"), "postmaster@victim.example");
  EXPECT_NE(message.first_header("Subject")->find("libSPF2"),
            std::string::npos);
  ASSERT_TRUE(message.from_domain().has_value());
  EXPECT_EQ(message.from_domain()->to_string(), "notify.dns-lab.org");
}

TEST(NotificationEmail, BodyListsEveryDomainAndAddress) {
  const auto message = longitudinal::NotificationCampaign::render_email(
      make_group(), longitudinal::NotificationConfig{});
  for (const char* expected :
       {"victim.example", "also-hosted.example", "203.0.113.10",
        "203.0.113.11", "CVE-2021-33912", "CVE-2021-33913", "2022-01-19"}) {
    EXPECT_NE(message.body().find(expected), std::string::npos) << expected;
  }
}

TEST(NotificationEmail, TrackingPixelEmbedsUniqueToken) {
  const auto message = longitudinal::NotificationCampaign::render_email(
      make_group(), longitudinal::NotificationConfig{});
  EXPECT_NE(message.body().find("pixel/tok1234567890abc.png"),
            std::string::npos);
  // And a plain-text part exists (Stock et al. [30]: plain text included so
  // non-HTML clients still see the notice).
  EXPECT_NE(message.body().find("Dear postmaster"), std::string::npos);
}

// ----------------------------------------- DMARC with both auth methods

TEST(DmarcFullAuth, AlignedDkimRescuesFailedSpf) {
  dmarc::DiscoveryResult discovery;
  discovery.record = dmarc::parse_record("v=DMARC1; p=reject");
  const auto from = dns::Name::from_string("example.com");
  EXPECT_EQ(dmarc::disposition_for(discovery, spf::Result::Fail,
                                   /*spf_domain=*/from,
                                   /*dkim_pass=*/true,
                                   /*dkim_domain=*/from, from),
            dmarc::Disposition::Deliver);
}

TEST(DmarcFullAuth, UnalignedDkimDoesNotRescue) {
  dmarc::DiscoveryResult discovery;
  discovery.record = dmarc::parse_record("v=DMARC1; p=reject");
  EXPECT_EQ(dmarc::disposition_for(discovery, spf::Result::Fail,
                                   dns::Name::from_string("example.com"),
                                   true, dns::Name::from_string("evil.org"),
                                   dns::Name::from_string("example.com")),
            dmarc::Disposition::Reject);
}

TEST(DmarcFullAuth, StrictDkimAlignmentEnforced) {
  dmarc::DiscoveryResult discovery;
  discovery.record = dmarc::parse_record("v=DMARC1; p=reject; adkim=s");
  EXPECT_EQ(dmarc::disposition_for(discovery, spf::Result::Fail,
                                   dns::Name::from_string("example.com"),
                                   true,
                                   dns::Name::from_string("sub.example.com"),
                                   dns::Name::from_string("example.com")),
            dmarc::Disposition::Reject);
}

TEST(DmarcFullAuth, SpfOnlyOverloadUnchanged) {
  dmarc::DiscoveryResult discovery;
  discovery.record = dmarc::parse_record("v=DMARC1; p=quarantine");
  const auto domain = dns::Name::from_string("example.com");
  EXPECT_EQ(dmarc::disposition_for(discovery, spf::Result::Pass, domain, domain),
            dmarc::Disposition::Deliver);
  EXPECT_EQ(dmarc::disposition_for(discovery, spf::Result::Fail, domain, domain),
            dmarc::Disposition::Quarantine);
}

}  // namespace
}  // namespace spfail
