#include <gtest/gtest.h>

#include "spfvuln/behavior.hpp"
#include "spfvuln/fingerprint.hpp"
#include "spfvuln/libspf2_expander.hpp"
#include "spfvuln/overflow_sentinel.hpp"
#include "spfvuln/variant_expanders.hpp"

namespace spfail::spfvuln {
namespace {

spf::MacroContext example_context() {
  spf::MacroContext ctx;
  ctx.sender_local = "user";
  ctx.sender_domain = dns::Name::from_string("example.com");
  ctx.current_domain = dns::Name::from_string("example.com");
  ctx.client_ip = util::IpAddress::v4(203, 0, 113, 7);
  return ctx;
}

spf::MacroItem item_d1r() {
  spf::MacroItem item;
  item.letter = 'd';
  item.keep = 1;
  item.reverse = true;
  return item;
}

// -------------------------------------------------------- OverflowSentinel

TEST(Sentinel, TracksInBoundsWrites) {
  OverflowSentinel buf(4);
  buf.put("abcd");
  EXPECT_FALSE(buf.overflowed());
  EXPECT_EQ(buf.overflow_bytes(), 0u);
  EXPECT_EQ(buf.in_bounds(), "abcd");
  EXPECT_TRUE(buf.spilled().empty());
}

TEST(Sentinel, TracksOverflow) {
  OverflowSentinel buf(4);
  buf.put("abcdef");
  EXPECT_TRUE(buf.overflowed());
  EXPECT_EQ(buf.overflow_bytes(), 2u);
  EXPECT_EQ(buf.in_bounds(), "abcd");
  EXPECT_EQ(buf.spilled(), "ef");
  EXPECT_EQ(buf.data(), "abcdef");
}

TEST(Sentinel, ByteWise) {
  OverflowSentinel buf(1);
  buf.put('x');
  EXPECT_FALSE(buf.overflowed());
  buf.put('y');
  EXPECT_TRUE(buf.overflowed());
}

// ------------------------------------------------- CVE-2021-33913 (vuln 2)

TEST(Cve33913, PaperFingerprintExample) {
  // Section 4.2: a:%{d1r}.foo.com for user@example.com yields
  // com.com.example.foo.com on a vulnerable host.
  const Libspf2Expander expander;
  EXPECT_EQ(expander.expand("%{d1r}.foo.com", example_context()),
            "com.com.example.foo.com");
}

TEST(Cve33913, LengthReassignmentFires) {
  const ExpansionReport report = libspf2_expand_item(item_d1r(), "example.com");
  EXPECT_TRUE(report.length_reassigned);
  EXPECT_EQ(report.output, "com.com.example");
  // Buffer was allocated for the truncated output ("example" = 7 bytes) but
  // far more was written.
  EXPECT_EQ(report.buffer_allocated, 7u);
  EXPECT_EQ(report.buffer_written, 15u);
  EXPECT_EQ(report.overflow_bytes, 8u);
}

TEST(Cve33913, NoReverseNoBug) {
  spf::MacroItem item;
  item.letter = 'd';
  item.keep = 1;  // truncation without reversal takes the correct path
  const ExpansionReport report = libspf2_expand_item(item, "example.com");
  EXPECT_FALSE(report.length_reassigned);
  EXPECT_EQ(report.output, "com");
  EXPECT_EQ(report.overflow_bytes, 0u);
}

TEST(Cve33913, ReverseWithoutTruncationNoBug) {
  spf::MacroItem item;
  item.letter = 'd';
  item.reverse = true;  // no digit transformer -> nothing is dropped
  const ExpansionReport report = libspf2_expand_item(item, "example.com");
  EXPECT_FALSE(report.length_reassigned);
  EXPECT_EQ(report.output, "com.example");
  EXPECT_EQ(report.overflow_bytes, 0u);
}

TEST(Cve33913, OverflowGrowsWithDroppedLabels) {
  // The more labels truncation drops, the more attacker-controlled bytes
  // land past the allocation (the paper: "up to 100 arbitrary characters").
  spf::MacroItem item = item_d1r();
  const ExpansionReport small =
      libspf2_expand_item(item, "a.b");
  const ExpansionReport large =
      libspf2_expand_item(item, "a.b.c.d.e.f.g.h.i.j.k.l.m.n");
  EXPECT_GT(large.overflow_bytes, small.overflow_bytes);
}

TEST(Cve33913, CanExceed100ByteOverflow) {
  spf::MacroItem item = item_d1r();
  std::string domain;
  for (int i = 0; i < 12; ++i) {
    domain += "aaaaaaaaa.";  // long labels, all dropped by d1r truncation
  }
  domain += "tld";
  const ExpansionReport report = libspf2_expand_item(item, domain);
  EXPECT_GE(report.overflow_bytes, 100u);
}

// ------------------------------------------------- CVE-2021-33912 (vuln 1)

TEST(Cve33912, HighBitByteOverflowsSixPerChar) {
  // URL encoding budgets 3 bytes for an escaped char; a high-bit byte emits
  // 9 — six unbudgeted bytes each (paper section 4.1.1).
  spf::MacroItem item;
  item.letter = 'l';
  item.url_escape = true;
  const ExpansionReport one = libspf2_expand_item(item, "a\xFE");
  EXPECT_TRUE(one.sprintf_overflow);
  EXPECT_EQ(one.overflow_bytes, 6u);
  const ExpansionReport two = libspf2_expand_item(item, "a\xFE\x80");
  EXPECT_EQ(two.overflow_bytes, 12u);
}

TEST(Cve33912, AsciiReservedCharsAreBudgetedCorrectly) {
  spf::MacroItem item;
  item.letter = 'l';
  item.url_escape = true;
  const ExpansionReport report = libspf2_expand_item(item, "a b/c");
  EXPECT_FALSE(report.sprintf_overflow);
  EXPECT_EQ(report.overflow_bytes, 0u);
  EXPECT_EQ(report.output, "a%20b%2fc");
}

TEST(Cve33912, OutputContainsSignExtendedHex) {
  spf::MacroItem item;
  item.letter = 'l';
  item.url_escape = true;
  const ExpansionReport report = libspf2_expand_item(item, "\xFE");
  EXPECT_EQ(report.output, "%fffffffe");
}

TEST(Cve33912, CombinedWithReversalCompounds) {
  // Both CVEs in one expansion: reversal+truncation mis-sizes the buffer AND
  // high-bit bytes blow the per-char budget.
  spf::MacroItem item = item_d1r();
  item.url_escape = true;
  const ExpansionReport report =
      libspf2_expand_item(item, "p\xFFq.example.com");
  EXPECT_TRUE(report.length_reassigned);
  EXPECT_TRUE(report.sprintf_overflow);
  EXPECT_GT(report.overflow_bytes, 12u);
}

TEST(Cve33912, ExpanderAggregatesReports) {
  const Libspf2Expander expander;
  spf::MacroContext ctx = example_context();
  ctx.sender_local = "caf\xC3\xA9";  // UTF-8 'café'
  expander.expand("%{L}", ctx);
  EXPECT_TRUE(expander.last_report().sprintf_overflow);
  EXPECT_EQ(expander.last_report().overflow_bytes, 12u);  // two high-bit bytes
}

// ------------------------------------------------- benign detection property

TEST(BenignDetection, LowercaseMacroNeverOverflowsBuffersItReports) {
  // The key property that makes the paper's scan benign: the fingerprint
  // record uses %{d1r} *without* URL encoding; the observable corruption
  // happens, but the write stays within what the (over-)allocated... no —
  // it DOES overflow internally. What makes it benign in practice is that
  // the overflowing bytes are pure label text into heap slack, not
  // attacker-chosen encodings, and the behaviour is detectable from the
  // *query* alone. Here we assert the fingerprint shows without needing
  // url_escape.
  const ExpansionReport report = libspf2_expand_item(item_d1r(), "example.com");
  EXPECT_FALSE(report.sprintf_overflow);
  EXPECT_EQ(report.output, "com.com.example");
}

// -------------------------------------------------------- patched library

TEST(Patched, MatchesRfc) {
  const Libspf2PatchedExpander patched;
  const spf::Rfc7208Expander rfc;
  for (const char* macro :
       {"%{d1r}.foo.com", "%{d}", "%{dr}", "%{L}", "%{i}._spf.%{d2}"}) {
    EXPECT_EQ(patched.expand(macro, example_context()),
              rfc.expand(macro, example_context()))
        << macro;
  }
}

// -------------------------------------------------------- variant engines

TEST(Variants, NoExpansionLeavesMacroLiteral) {
  const NoExpansionExpander e;
  EXPECT_EQ(e.expand("%{d1r}.foo.com", example_context()), "%{d1r}.foo.com");
}

TEST(Variants, NoTruncation) {
  const NoTruncationExpander e;
  // Section 4.2's "non-compliant (missing truncation)" example.
  EXPECT_EQ(e.expand("%{d1r}.foo.com", example_context()),
            "com.example.foo.com");
}

TEST(Variants, NoReversal) {
  const NoReversalExpander e;
  EXPECT_EQ(e.expand("%{d1r}.foo.com", example_context()), "com.foo.com");
}

TEST(Variants, NoTransformers) {
  const NoTransformersExpander e;
  EXPECT_EQ(e.expand("%{d1r}.foo.com", example_context()),
            "example.com.foo.com");
}

TEST(Variants, AllDistinctOnTestShapedDomain) {
  // On the 5-label measurement domains every behaviour must have a unique
  // fingerprint, or classification would be ambiguous.
  spf::MacroContext ctx;
  ctx.sender_local = "postmaster";
  ctx.sender_domain = dns::Name::from_string("ab1cd.x7.spf-test.dns-lab.org");
  ctx.current_domain = ctx.sender_domain;
  ctx.client_ip = util::IpAddress::v4(192, 0, 2, 1);

  std::set<std::string> outputs;
  for (const SpfBehavior b :
       {SpfBehavior::RfcCompliant, SpfBehavior::VulnerableLibspf2,
        SpfBehavior::NoExpansion, SpfBehavior::NoTruncation,
        SpfBehavior::NoReversal, SpfBehavior::NoTransformers,
        SpfBehavior::OtherErroneous}) {
    outputs.insert(make_expander(b)->expand("%{d1r}", ctx));
  }
  EXPECT_EQ(outputs.size(), 7u);
}

// -------------------------------------------------------- behaviour taxonomy

TEST(Behavior, ErroneousFlags) {
  EXPECT_FALSE(is_erroneous(SpfBehavior::RfcCompliant));
  EXPECT_FALSE(is_erroneous(SpfBehavior::PatchedLibspf2));
  EXPECT_TRUE(is_erroneous(SpfBehavior::VulnerableLibspf2));
  EXPECT_TRUE(is_erroneous(SpfBehavior::NoExpansion));
  EXPECT_TRUE(is_erroneous(SpfBehavior::OtherErroneous));
}

TEST(Behavior, VulnerableFlag) {
  EXPECT_TRUE(is_vulnerable(SpfBehavior::VulnerableLibspf2));
  EXPECT_FALSE(is_vulnerable(SpfBehavior::NoTruncation));
  EXPECT_FALSE(is_vulnerable(SpfBehavior::PatchedLibspf2));
}

TEST(Behavior, ExpanderIdsStable) {
  EXPECT_EQ(make_expander(SpfBehavior::VulnerableLibspf2)->id(),
            "libspf2-vulnerable");
  EXPECT_EQ(make_expander(SpfBehavior::RfcCompliant)->id(), "rfc7208");
  EXPECT_EQ(make_expander(SpfBehavior::PatchedLibspf2)->id(),
            "libspf2-patched");
}

// -------------------------------------------------------- classifier

class ClassifierFixture : public ::testing::Test {
 protected:
  ClassifierFixture()
      : domain_(dns::Name::from_string("k3j9x.t01.spf-test.dns-lab.org")),
        classifier_(domain_) {}

  dns::Name domain_;
  FingerprintClassifier classifier_;
};

TEST_F(ClassifierFixture, TxtFetchIsNotAProbe) {
  EXPECT_FALSE(classifier_.classify(domain_).has_value());
}

TEST_F(ClassifierFixture, ControlLookupIsNotAProbe) {
  EXPECT_FALSE(classifier_.classify(domain_.child("b")).has_value());
}

TEST_F(ClassifierFixture, OffDomainIsIgnored) {
  EXPECT_FALSE(
      classifier_.classify(dns::Name::from_string("example.com")).has_value());
}

TEST_F(ClassifierFixture, RoundTripsEveryBehavior) {
  for (const SpfBehavior b :
       {SpfBehavior::RfcCompliant, SpfBehavior::VulnerableLibspf2,
        SpfBehavior::NoExpansion, SpfBehavior::NoTruncation,
        SpfBehavior::NoReversal, SpfBehavior::NoTransformers,
        SpfBehavior::OtherErroneous}) {
    const dns::Name query = classifier_.expected_query(b);
    const auto classified = classifier_.classify(query);
    ASSERT_TRUE(classified.has_value()) << to_string(b);
    EXPECT_EQ(*classified, b) << to_string(b);
  }
}

TEST_F(ClassifierFixture, PatchedClassifiesAsRfcCompliant) {
  const dns::Name query = classifier_.expected_query(SpfBehavior::PatchedLibspf2);
  const auto classified = classifier_.classify(query);
  ASSERT_TRUE(classified.has_value());
  EXPECT_EQ(*classified, SpfBehavior::RfcCompliant);
}

TEST_F(ClassifierFixture, UnknownProbeShapeIsOtherErroneous) {
  const auto classified =
      classifier_.classify(domain_.child("zz").child("yy"));
  ASSERT_TRUE(classified.has_value());
  EXPECT_EQ(*classified, SpfBehavior::OtherErroneous);
}

TEST_F(ClassifierFixture, VulnerableQueryShape) {
  // For <id>.<suite>.spf-test.dns-lab.org the vulnerable expansion leads
  // with the duplicated dropped labels.
  const dns::Name q = classifier_.expected_query(SpfBehavior::VulnerableLibspf2);
  EXPECT_EQ(q.to_string(),
            "org.dns-lab.spf-test.t01.org.dns-lab.spf-test.t01.k3j9x."
            "k3j9x.t01.spf-test.dns-lab.org");
}

TEST_F(ClassifierFixture, RfcQueryShape) {
  EXPECT_EQ(classifier_.expected_query(SpfBehavior::RfcCompliant).to_string(),
            "k3j9x.k3j9x.t01.spf-test.dns-lab.org");
}

}  // namespace
}  // namespace spfail::spfvuln
