#include <gtest/gtest.h>

#include "dns/zonefile.hpp"

namespace spfail::dns {
namespace {

const Name kOrigin = Name::from_string("example.com");

TEST(ZoneFile, BasicRecords) {
  const Zone zone = parse_zone_text(R"(
$ORIGIN example.com.
$TTL 600
@        IN TXT   "v=spf1 mx -all"
@        IN MX 10 mx1
mx1      IN A     192.0.2.25
mx1      IN AAAA  2001:db8::25
www      IN CNAME @
)",
                                    kOrigin);
  EXPECT_EQ(zone.record_count(), 5u);

  const auto txt = zone.lookup(kOrigin, RRType::TXT);
  ASSERT_EQ(txt.records.size(), 1u);
  EXPECT_EQ(std::get<TxtRdata>(txt.records[0].rdata).joined(),
            "v=spf1 mx -all");
  EXPECT_EQ(txt.records[0].ttl, 600u);

  const auto mx = zone.lookup(kOrigin, RRType::MX);
  ASSERT_EQ(mx.records.size(), 1u);
  EXPECT_EQ(std::get<MxRdata>(mx.records[0].rdata).exchange.to_string(),
            "mx1.example.com");

  const auto a = zone.lookup(Name::from_string("mx1.example.com"), RRType::A);
  EXPECT_EQ(std::get<ARdata>(a.records[0].rdata).address.to_string(),
            "192.0.2.25");
}

TEST(ZoneFile, RelativeAndAbsoluteNames) {
  const Zone zone = parse_zone_text(R"(
$ORIGIN example.com.
alpha                 IN A 192.0.2.1
beta.example.com.     IN A 192.0.2.2
)",
                                    kOrigin);
  EXPECT_TRUE(zone.contains(Name::from_string("alpha.example.com")));
  EXPECT_TRUE(zone.contains(Name::from_string("beta.example.com")));
}

TEST(ZoneFile, BlankOwnerReusesPrevious) {
  const Zone zone = parse_zone_text(R"(
$ORIGIN example.com.
host IN A 192.0.2.1
     IN A 192.0.2.2
)",
                                    kOrigin);
  const auto result = zone.lookup(Name::from_string("host.example.com"),
                                  RRType::A);
  EXPECT_EQ(result.records.size(), 2u);
}

TEST(ZoneFile, CommentsAndBlankLines) {
  const Zone zone = parse_zone_text(R"(
; a full-line comment
$ORIGIN example.com.

@ IN A 192.0.2.1 ; trailing comment
)",
                                    kOrigin);
  EXPECT_EQ(zone.record_count(), 1u);
}

TEST(ZoneFile, ExplicitTtlOnRecord) {
  const Zone zone = parse_zone_text("@ 42 IN A 192.0.2.1", kOrigin);
  EXPECT_EQ(zone.lookup(kOrigin, RRType::A).records[0].ttl, 42u);
}

TEST(ZoneFile, ClassOptional) {
  const Zone zone = parse_zone_text("@ A 192.0.2.1", kOrigin);
  EXPECT_EQ(zone.record_count(), 1u);
}

TEST(ZoneFile, MultiStringTxt) {
  const Zone zone =
      parse_zone_text(R"(@ IN TXT "v=spf1 " "ip4:192.0.2.1 -all")", kOrigin);
  const auto result = zone.lookup(kOrigin, RRType::TXT);
  EXPECT_EQ(std::get<TxtRdata>(result.records[0].rdata).joined(),
            "v=spf1 ip4:192.0.2.1 -all");
}

TEST(ZoneFile, QuotedStringsMayContainSpacesAndSemicolons) {
  const Zone zone =
      parse_zone_text(R"(@ IN TXT "v=DMARC1; p=reject; pct=100")", kOrigin);
  const auto result = zone.lookup(kOrigin, RRType::TXT);
  EXPECT_EQ(std::get<TxtRdata>(result.records[0].rdata).joined(),
            "v=DMARC1; p=reject; pct=100");
}

TEST(ZoneFile, SoaRecord) {
  const Zone zone = parse_zone_text(
      "@ IN SOA ns1 hostmaster 2021101101 7200 3600 1209600 300", kOrigin);
  const auto result = zone.lookup(kOrigin, RRType::SOA);
  ASSERT_EQ(result.records.size(), 1u);
  const auto& soa = std::get<SoaRdata>(result.records[0].rdata);
  EXPECT_EQ(soa.serial, 2021101101u);
  EXPECT_EQ(soa.mname.to_string(), "ns1.example.com");
}

TEST(ZoneFile, PtrRecord) {
  const Zone zone = parse_zone_text(
      "$ORIGIN 2.0.192.in-addr.arpa.\n1 IN PTR mail.example.com.",
      Name::from_string("2.0.192.in-addr.arpa"));
  const auto result = zone.lookup(
      Name::from_string("1.2.0.192.in-addr.arpa"), RRType::PTR);
  ASSERT_EQ(result.records.size(), 1u);
}

TEST(ZoneFile, Errors) {
  EXPECT_THROW(parse_zone_text("@ IN A not-an-ip", kOrigin), ZoneFileError);
  EXPECT_THROW(parse_zone_text("@ IN AAAA 192.0.2.1", kOrigin), ZoneFileError);
  EXPECT_THROW(parse_zone_text("@ IN MX 10", kOrigin), ZoneFileError);
  EXPECT_THROW(parse_zone_text("@ IN FROB x", kOrigin), ZoneFileError);
  EXPECT_THROW(parse_zone_text("@ IN", kOrigin), ZoneFileError);
  EXPECT_THROW(parse_zone_text("@ IN TXT \"unterminated", kOrigin),
               ZoneFileError);
  EXPECT_THROW(parse_zone_text("$ORIGIN", kOrigin), ZoneFileError);
  EXPECT_THROW(parse_zone_text("$TTL abc", kOrigin), ZoneFileError);
  // Out-of-zone records are rejected with the line number.
  EXPECT_THROW(parse_zone_text("other.org. IN A 192.0.2.1", kOrigin),
               ZoneFileError);
}

TEST(ZoneFile, ErrorMessagesCarryLineNumbers) {
  try {
    parse_zone_text("\n\n@ IN A bogus", kOrigin);
    FAIL() << "expected ZoneFileError";
  } catch (const ZoneFileError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

}  // namespace
}  // namespace spfail::dns
