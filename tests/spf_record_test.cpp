#include <gtest/gtest.h>

#include "spf/record.hpp"

namespace spfail::spf {
namespace {

TEST(RecordSelect, LooksLikeSpf) {
  EXPECT_TRUE(looks_like_spf("v=spf1 -all"));
  EXPECT_TRUE(looks_like_spf("v=spf1"));
  EXPECT_FALSE(looks_like_spf("v=spf10 -all"));
  EXPECT_FALSE(looks_like_spf("spf1 -all"));
  EXPECT_FALSE(looks_like_spf("V=SPF1 -all"));  // version tag is case-sensitive here
}

TEST(RecordParse, PaperExamplePolicy) {
  // The example policy from section 2.2 of the paper.
  const Record r = parse_record(
      "v=spf1 a:foo.example.com ip4:192.0.2.1 include:bar.org -all");
  ASSERT_EQ(r.mechanisms.size(), 4u);
  EXPECT_EQ(r.mechanisms[0].kind, MechanismKind::A);
  EXPECT_EQ(r.mechanisms[0].domain_spec, "foo.example.com");
  EXPECT_EQ(r.mechanisms[1].kind, MechanismKind::Ip4);
  EXPECT_EQ(r.mechanisms[1].network, "192.0.2.1");
  EXPECT_EQ(r.mechanisms[2].kind, MechanismKind::Include);
  EXPECT_EQ(r.mechanisms[2].domain_spec, "bar.org");
  EXPECT_EQ(r.mechanisms[3].kind, MechanismKind::All);
  EXPECT_EQ(r.mechanisms[3].qualifier, Qualifier::Fail);
}

TEST(RecordParse, MacroPolicy) {
  const Record r = parse_record("v=spf1 a:%{d1r}.foo.com -all");
  ASSERT_EQ(r.mechanisms.size(), 2u);
  EXPECT_EQ(r.mechanisms[0].domain_spec, "%{d1r}.foo.com");
}

TEST(RecordParse, Qualifiers) {
  const Record r = parse_record("v=spf1 +a ?mx ~exists:x.%{d} -all");
  EXPECT_EQ(r.mechanisms[0].qualifier, Qualifier::Pass);
  EXPECT_EQ(r.mechanisms[1].qualifier, Qualifier::Neutral);
  EXPECT_EQ(r.mechanisms[2].qualifier, Qualifier::SoftFail);
  EXPECT_EQ(r.mechanisms[3].qualifier, Qualifier::Fail);
}

TEST(RecordParse, BareAAndMx) {
  const Record r = parse_record("v=spf1 a mx -all");
  EXPECT_EQ(r.mechanisms[0].kind, MechanismKind::A);
  EXPECT_TRUE(r.mechanisms[0].domain_spec.empty());
  EXPECT_EQ(r.mechanisms[1].kind, MechanismKind::Mx);
}

TEST(RecordParse, CidrOnBareA) {
  const Record r = parse_record("v=spf1 a/24 -all");
  EXPECT_EQ(r.mechanisms[0].cidr4, 24);
  EXPECT_TRUE(r.mechanisms[0].domain_spec.empty());
}

TEST(RecordParse, DualCidr) {
  const Record r = parse_record("v=spf1 a:foo.com/24//64 -all");
  EXPECT_EQ(r.mechanisms[0].cidr4, 24);
  EXPECT_EQ(r.mechanisms[0].cidr6, 64);
  EXPECT_EQ(r.mechanisms[0].domain_spec, "foo.com");
}

TEST(RecordParse, Ip4WithPrefix) {
  const Record r = parse_record("v=spf1 ip4:192.0.2.0/24 -all");
  EXPECT_EQ(r.mechanisms[0].network, "192.0.2.0");
  EXPECT_EQ(r.mechanisms[0].cidr4, 24);
}

TEST(RecordParse, Ip6WithPrefix) {
  const Record r = parse_record("v=spf1 ip6:2001:db8::/32 -all");
  EXPECT_EQ(r.mechanisms[0].network, "2001:db8::");
  EXPECT_EQ(r.mechanisms[0].cidr6, 32);
  EXPECT_EQ(r.mechanisms[0].cidr4, -1);
}

TEST(RecordParse, RedirectModifier) {
  const Record r = parse_record("v=spf1 redirect=_spf.example.com");
  ASSERT_TRUE(r.redirect().has_value());
  EXPECT_EQ(*r.redirect(), "_spf.example.com");
  EXPECT_TRUE(r.mechanisms.empty());
}

TEST(RecordParse, ExpModifier) {
  const Record r = parse_record("v=spf1 -all exp=explain.%{d}");
  ASSERT_TRUE(r.exp().has_value());
  EXPECT_EQ(*r.exp(), "explain.%{d}");
}

TEST(RecordParse, UnknownModifierTolerated) {
  // RFC 7208 section 6: unrecognised modifiers MUST be ignored.
  const Record r = parse_record("v=spf1 custom=xyz -all");
  EXPECT_EQ(r.mechanisms.size(), 1u);
  EXPECT_TRUE(r.modifier("custom").has_value());
}

TEST(RecordParse, MultipleSpacesTolerated) {
  const Record r = parse_record("v=spf1  a   -all");
  EXPECT_EQ(r.mechanisms.size(), 2u);
}

TEST(RecordParse, Errors) {
  EXPECT_THROW(parse_record("not spf"), RecordSyntaxError);
  EXPECT_THROW(parse_record("v=spf1 bogus:foo"), RecordSyntaxError);
  EXPECT_THROW(parse_record("v=spf1 all:arg"), RecordSyntaxError);
  EXPECT_THROW(parse_record("v=spf1 include:"), RecordSyntaxError);
  EXPECT_THROW(parse_record("v=spf1 ip4:999.1.1.1"), RecordSyntaxError);
  EXPECT_THROW(parse_record("v=spf1 ip4:2001:db8::1"), RecordSyntaxError);
  EXPECT_THROW(parse_record("v=spf1 ip4:192.0.2.0/33"), RecordSyntaxError);
  EXPECT_THROW(parse_record("v=spf1 ptr:x.com/24"), RecordSyntaxError);
  EXPECT_THROW(parse_record("v=spf1 redirect=a.com redirect=b.com"),
               RecordSyntaxError);
}

TEST(RecordRender, RoundTripsThroughToString) {
  const std::string text =
      "v=spf1 a:foo.example.com ip4:192.0.2.1 include:bar.org "
      "a:%{d1r}.foo.com -all";
  const Record parsed = parse_record(text);
  const Record reparsed = parse_record(parsed.to_string());
  EXPECT_EQ(parsed, reparsed);
}

TEST(RecordRender, PreservesCidrAndQualifier) {
  const std::string text = "v=spf1 ~a:x.com/8//96 ?mx redirect=r.%{d2}";
  const Record parsed = parse_record(text);
  EXPECT_EQ(parse_record(parsed.to_string()), parsed);
}

}  // namespace
}  // namespace spfail::spf
