# End-to-end crash-tolerance smoke test for the distributed scan (DESIGN.md
# §15), run as a ctest entry:
#   A. baseline run, --workers 1                       -> a.out + outputs
#   B. --workers 3 with one worker KILLED mid-study
#      (SPFAIL_DIST_TEST_KILL executes a chunk, checkpoints, and dies before
#      replying); the coordinator respawns it from the per-worker checkpoint
#      and replays the stored reply                    -> b.out + outputs
#   C. --workers 3 halted at a round boundary, then resumed --workers 3
#                                                      -> c.out + outputs
# All three runs' stdout, JSONL trace, metric snapshots, and Prometheus
# exposition must be byte-identical: recovery is invisible in the outputs.
#
# Expects: -DSPFAIL_SCAN=<path to spfail_scan> -DWORK_DIR=<scratch dir>
if(NOT SPFAIL_SCAN OR NOT WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DSPFAIL_SCAN=... -DWORK_DIR=... -P dist_smoke.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(FLAGS --scale 0.01 --fault-rate 0.02 --trace trace.jsonl --metrics metrics.jsonl)

# A: single-process baseline — --workers 1 runs the in-process pool engine,
# the reference the distributed layer must reproduce byte-for-byte.
execute_process(
  COMMAND "${SPFAIL_SCAN}" ${FLAGS} --checkpoint snap_a.bin
  WORKING_DIRECTORY "${WORK_DIR}"
  OUTPUT_FILE a.out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "baseline --workers 1 run failed (exit ${rc})")
endif()
file(RENAME "${WORK_DIR}/trace.jsonl" "${WORK_DIR}/trace_a.jsonl")
file(RENAME "${WORK_DIR}/metrics.jsonl" "${WORK_DIR}/metrics_a.jsonl")
file(RENAME "${WORK_DIR}/metrics.jsonl.prom" "${WORK_DIR}/metrics_a.prom")

# B: three workers, worker 1 killed after executing + checkpointing its
# chunk at seq >= 5 but before replying. The coordinator must respawn it and
# obtain the checkpointed reply via replay (exactly-once execution).
# A small chunk size both guarantees the knob fires (many sequence numbers
# reach every worker) and checks that the chunk layout itself — different
# from run C's default — never shows in the outputs.
set(ENV{SPFAIL_DIST_CHUNK} "64")
set(ENV{SPFAIL_DIST_TEST_KILL} "1:5:kill")
execute_process(
  COMMAND "${SPFAIL_SCAN}" ${FLAGS} --workers 3 --checkpoint snap_b.bin
  WORKING_DIRECTORY "${WORK_DIR}"
  OUTPUT_FILE b.out
  ERROR_FILE b.err
  RESULT_VARIABLE rc)
unset(ENV{SPFAIL_DIST_TEST_KILL})
unset(ENV{SPFAIL_DIST_CHUNK})
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--workers 3 run with a killed worker failed (exit ${rc})")
endif()
file(READ "${WORK_DIR}/b.err" B_ERR)
if(NOT B_ERR MATCHES "respawned")
  message(FATAL_ERROR "the kill knob never fired: no respawn notice on stderr")
endif()
file(GLOB WORKER_CKPTS "${WORK_DIR}/snap_b.bin.w*")
if(WORKER_CKPTS)
  message(FATAL_ERROR "worker checkpoints were not cleaned up: ${WORKER_CKPTS}")
endif()
file(RENAME "${WORK_DIR}/trace.jsonl" "${WORK_DIR}/trace_b.jsonl")
file(RENAME "${WORK_DIR}/metrics.jsonl" "${WORK_DIR}/metrics_b.jsonl")
file(RENAME "${WORK_DIR}/metrics.jsonl.prom" "${WORK_DIR}/metrics_b.prom")

# D: worker 0 killed MID-CHECKPOINT-WRITE (garbage .w0.tmp, no reply): the
# respawn must discard the partial file and resume from the last complete
# worker snapshot — re-executing the un-checkpointed chunk, not replaying.
set(ENV{SPFAIL_DIST_CHUNK} "64")
set(ENV{SPFAIL_DIST_TEST_KILL} "0:7:tmpcrash")
execute_process(
  COMMAND "${SPFAIL_SCAN}" ${FLAGS} --workers 3 --checkpoint snap_d.bin
  WORKING_DIRECTORY "${WORK_DIR}"
  OUTPUT_FILE d.out
  ERROR_FILE d.err
  RESULT_VARIABLE rc)
unset(ENV{SPFAIL_DIST_TEST_KILL})
unset(ENV{SPFAIL_DIST_CHUNK})
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--workers 3 run with a mid-checkpoint crash failed (exit ${rc})")
endif()
file(READ "${WORK_DIR}/d.err" D_ERR)
if(NOT D_ERR MATCHES "respawned")
  message(FATAL_ERROR "the tmpcrash knob never fired: no respawn notice on stderr")
endif()
file(RENAME "${WORK_DIR}/trace.jsonl" "${WORK_DIR}/trace_d.jsonl")
file(RENAME "${WORK_DIR}/metrics.jsonl" "${WORK_DIR}/metrics_d.jsonl")
file(RENAME "${WORK_DIR}/metrics.jsonl.prom" "${WORK_DIR}/metrics_d.prom")

# C: three workers halted mid-study, then resumed with three workers.
execute_process(
  COMMAND "${SPFAIL_SCAN}" ${FLAGS} --workers 3 --checkpoint snap_c.bin --halt-after-rounds 11
  WORKING_DIRECTORY "${WORK_DIR}"
  OUTPUT_FILE c_halted.out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "halting --workers 3 run failed (exit ${rc})")
endif()
if(NOT EXISTS "${WORK_DIR}/snap_c.bin")
  message(FATAL_ERROR "halting --workers 3 run wrote no checkpoint")
endif()

# Resuming with a different worker count must be rejected loudly.
execute_process(
  COMMAND "${SPFAIL_SCAN}" ${FLAGS} --workers 2 --checkpoint snap_c.bin --resume snap_c.bin
  WORKING_DIRECTORY "${WORK_DIR}"
  OUTPUT_QUIET ERROR_QUIET
  RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "resume with a mismatched --workers count was not rejected")
endif()

execute_process(
  COMMAND "${SPFAIL_SCAN}" ${FLAGS} --workers 3 --checkpoint snap_c.bin --resume snap_c.bin
  WORKING_DIRECTORY "${WORK_DIR}"
  OUTPUT_FILE c.out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resumed --workers 3 run failed (exit ${rc})")
endif()
file(RENAME "${WORK_DIR}/trace.jsonl" "${WORK_DIR}/trace_c.jsonl")
file(RENAME "${WORK_DIR}/metrics.jsonl" "${WORK_DIR}/metrics_c.jsonl")
file(RENAME "${WORK_DIR}/metrics.jsonl.prom" "${WORK_DIR}/metrics_c.prom")

foreach(pair
    "a.out;b.out" "trace_a.jsonl;trace_b.jsonl"
    "metrics_a.jsonl;metrics_b.jsonl" "metrics_a.prom;metrics_b.prom"
    "a.out;c.out" "trace_a.jsonl;trace_c.jsonl"
    "metrics_a.jsonl;metrics_c.jsonl" "metrics_a.prom;metrics_c.prom"
    "a.out;d.out" "trace_a.jsonl;trace_d.jsonl"
    "metrics_a.jsonl;metrics_d.jsonl" "metrics_a.prom;metrics_d.prom")
  list(GET pair 0 lhs)
  list(GET pair 1 rhs)
  execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files "${WORK_DIR}/${lhs}" "${WORK_DIR}/${rhs}"
    RESULT_VARIABLE differs)
  if(differs)
    message(FATAL_ERROR "${lhs} and ${rhs} differ: the distributed run is not byte-identical")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
message(STATUS "dist smoke test passed (kill-any-worker recovery is byte-identical)")
