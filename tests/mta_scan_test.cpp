// Integration tests: the full remote-detection loop — scanner -> SMTP ->
// MTA's SPF engine -> DNS -> query log -> fingerprint classification.
#include <gtest/gtest.h>

#include "mta/host.hpp"
#include "scan/campaign.hpp"
#include "scan/prober.hpp"
#include "scan/test_responder.hpp"
#include "scan/usernames.hpp"

namespace spfail {
namespace {

using scan::ProbeStatus;
using scan::TestKind;
using spfvuln::SpfBehavior;
using util::IpAddress;

class ScanFixture : public ::testing::Test, public scan::HostRegistry {
 protected:
  ScanFixture() {
    responder_config_ = scan::install_test_responder(server_);
    prober_config_.responder = responder_config_;
  }

  mta::MailHost& add_host(mta::HostProfile profile) {
    auto host = std::make_unique<mta::MailHost>(std::move(profile), server_,
                                                clock_);
    auto& ref = *host;
    hosts_.emplace(ref.address(), std::move(host));
    return ref;
  }

  mta::MailHost* find_host(const IpAddress& address) override {
    const auto it = hosts_.find(address);
    return it == hosts_.end() ? nullptr : it->second.get();
  }

  scan::ProbeResult probe(mta::MailHost& host, TestKind kind,
                          const std::string& id = "abc4z") {
    net::Transport transport(clock_);
    scan::Prober prober(prober_config_, server_, transport);
    const dns::Name mail_from =
        dns::Name::from_string(id + ".t001.spf-test.dns-lab.org");
    return prober.probe(host, "target.example", mail_from, kind);
  }

  static mta::HostProfile base_profile(SpfBehavior behavior,
                                       std::uint8_t last_octet = 10) {
    mta::HostProfile profile;
    profile.address = IpAddress::v4(203, 0, 113, last_octet);
    profile.behaviors = {behavior};
    return profile;
  }

  dns::AuthoritativeServer server_;
  util::SimClock clock_;
  scan::TestResponderConfig responder_config_;
  scan::ProberConfig prober_config_;
  std::map<IpAddress, std::unique_ptr<mta::MailHost>> hosts_;
};

// ------------------------------------------------------------- responder

TEST_F(ScanFixture, ResponderServesTemplatedPolicy) {
  const dns::Name domain =
      dns::Name::from_string("ab1cd.t001.spf-test.dns-lab.org");
  const std::string policy =
      scan::test_policy_text(responder_config_, domain);
  EXPECT_EQ(policy,
            "v=spf1 a:%{d1r}.ab1cd.t001.spf-test.dns-lab.org "
            "a:b.ab1cd.t001.spf-test.dns-lab.org -all");

  const dns::Message response = server_.handle(
      dns::Message::make_query(1, domain, dns::RRType::TXT),
      IpAddress::v4(9, 9, 9, 9), clock_.now());
  ASSERT_EQ(response.answers.size(), 1u);
  EXPECT_EQ(std::get<dns::TxtRdata>(response.answers[0].rdata).joined(),
            policy);
}

TEST_F(ScanFixture, ResponderAnswersProbeAQueries) {
  const dns::Name probe_name = dns::Name::from_string(
      "anything.ab1cd.t001.spf-test.dns-lab.org");
  const dns::Message response = server_.handle(
      dns::Message::make_query(2, probe_name, dns::RRType::A),
      IpAddress::v4(9, 9, 9, 9), clock_.now());
  ASSERT_EQ(response.answers.size(), 1u);
  EXPECT_EQ(std::get<dns::ARdata>(response.answers[0].rdata).address,
            responder_config_.answer_v4);
}

// --------------------------------------------------- end-to-end detection

TEST_F(ScanFixture, DetectsVulnerableHostWithNoMsg) {
  auto& host = add_host(base_profile(SpfBehavior::VulnerableLibspf2));
  const scan::ProbeResult result = probe(host, TestKind::NoMsg);
  EXPECT_EQ(result.status, ProbeStatus::SpfMeasured);
  EXPECT_TRUE(result.vulnerable());
  EXPECT_TRUE(result.saw_policy_fetch);
  ASSERT_EQ(result.behaviors.size(), 1u);
  EXPECT_EQ(*result.behaviors.begin(), SpfBehavior::VulnerableLibspf2);
}

TEST_F(ScanFixture, CompliantHostMeasuresCompliant) {
  auto& host = add_host(base_profile(SpfBehavior::RfcCompliant));
  const scan::ProbeResult result = probe(host, TestKind::NoMsg);
  EXPECT_EQ(result.status, ProbeStatus::SpfMeasured);
  EXPECT_FALSE(result.vulnerable());
  EXPECT_EQ(*result.behaviors.begin(), SpfBehavior::RfcCompliant);
}

TEST_F(ScanFixture, EveryBehaviorRoundTripsThroughTheFullStack) {
  std::uint8_t octet = 20;
  for (const SpfBehavior behavior :
       {SpfBehavior::RfcCompliant, SpfBehavior::VulnerableLibspf2,
        SpfBehavior::NoExpansion, SpfBehavior::NoTruncation,
        SpfBehavior::NoReversal, SpfBehavior::NoTransformers,
        SpfBehavior::OtherErroneous}) {
    auto& host = add_host(base_profile(behavior, octet));
    const scan::ProbeResult result =
        probe(host, TestKind::NoMsg, "id" + std::to_string(octet));
    ASSERT_EQ(result.status, ProbeStatus::SpfMeasured) << to_string(behavior);
    ASSERT_EQ(result.behaviors.size(), 1u) << to_string(behavior);
    EXPECT_EQ(*result.behaviors.begin(), behavior) << to_string(behavior);
    ++octet;
  }
}

TEST_F(ScanFixture, SpfAfterDataInvisibleToNoMsgVisibleToBlankMsg) {
  mta::HostProfile profile = base_profile(SpfBehavior::VulnerableLibspf2);
  profile.spf_timing = mta::SpfTiming::AfterData;
  auto& host = add_host(std::move(profile));

  const scan::ProbeResult nomsg = probe(host, TestKind::NoMsg, "idaa1");
  EXPECT_EQ(nomsg.status, ProbeStatus::SpfNotMeasured);

  const scan::ProbeResult blankmsg = probe(host, TestKind::BlankMsg, "idaa2");
  EXPECT_EQ(blankmsg.status, ProbeStatus::SpfMeasured);
  EXPECT_TRUE(blankmsg.vulnerable());
}

TEST_F(ScanFixture, NonValidatingHostNotMeasured) {
  mta::HostProfile profile = base_profile(SpfBehavior::RfcCompliant);
  profile.validates_spf = false;
  auto& host = add_host(std::move(profile));
  EXPECT_EQ(probe(host, TestKind::NoMsg).status, ProbeStatus::SpfNotMeasured);
  EXPECT_EQ(probe(host, TestKind::BlankMsg, "id2nd").status,
            ProbeStatus::SpfNotMeasured);
}

TEST_F(ScanFixture, RefusedConnection) {
  mta::HostProfile profile = base_profile(SpfBehavior::RfcCompliant);
  profile.accepts_connections = false;
  auto& host = add_host(std::move(profile));
  EXPECT_EQ(probe(host, TestKind::NoMsg).status,
            ProbeStatus::ConnectionRefused);
}

TEST_F(ScanFixture, BrokenSmtpIsFailure) {
  mta::HostProfile profile = base_profile(SpfBehavior::RfcCompliant);
  profile.smtp_broken = true;
  auto& host = add_host(std::move(profile));
  const scan::ProbeResult result = probe(host, TestKind::NoMsg);
  EXPECT_EQ(result.status, ProbeStatus::SmtpFailure);
  EXPECT_EQ(result.failing_code, 421);
}

TEST_F(ScanFixture, SpfRejectionStillYieldsMeasurement) {
  // The served policy ends in -all, so an SPF-at-MAIL-FROM host that
  // *rejects* on Fail replies 550 — yet the DNS log still shows the
  // fingerprint. This is the paper's observation that many conclusive NoMsg
  // measurements came from rejected transactions.
  mta::HostProfile profile = base_profile(SpfBehavior::VulnerableLibspf2);
  profile.rejects_spf_fail = true;
  auto& host = add_host(std::move(profile));
  const scan::ProbeResult result = probe(host, TestKind::NoMsg);
  EXPECT_EQ(result.status, ProbeStatus::SpfMeasured);
  EXPECT_TRUE(result.vulnerable());
}

TEST_F(ScanFixture, GreylistedFirstAttempt) {
  mta::HostProfile profile = base_profile(SpfBehavior::RfcCompliant);
  profile.greylists = true;
  auto& host = add_host(std::move(profile));
  EXPECT_EQ(probe(host, TestKind::NoMsg).status, ProbeStatus::Greylisted);
  // Retrying too soon is still greylisted.
  EXPECT_EQ(probe(host, TestKind::NoMsg, "idgl2").status,
            ProbeStatus::Greylisted);
  // After the 8-minute backoff the host accepts and SPF fires.
  clock_.advance_by(8 * util::kMinute);
  EXPECT_EQ(probe(host, TestKind::NoMsg, "idgl3").status,
            ProbeStatus::SpfMeasured);
}

TEST_F(ScanFixture, UsernameLadderWalksTo_postmaster) {
  mta::HostProfile profile = base_profile(SpfBehavior::RfcCompliant);
  profile.known_recipients = {"postmaster"};
  profile.spf_timing = mta::SpfTiming::AfterData;
  auto& host = add_host(std::move(profile));
  const scan::ProbeResult result = probe(host, TestKind::BlankMsg);
  EXPECT_EQ(result.status, ProbeStatus::SpfMeasured);
  EXPECT_EQ(result.accepted_username, "postmaster");
}

TEST_F(ScanFixture, NoAcceptedRecipientIsSmtpFailure) {
  mta::HostProfile profile = base_profile(SpfBehavior::RfcCompliant);
  profile.known_recipients = {"someone-not-on-the-ladder"};
  profile.spf_timing = mta::SpfTiming::AfterData;
  auto& host = add_host(std::move(profile));
  const scan::ProbeResult result = probe(host, TestKind::NoMsg);
  EXPECT_EQ(result.status, ProbeStatus::SmtpFailure);
  EXPECT_EQ(result.failing_code, 550);
}

TEST_F(ScanFixture, MultiStackHostShowsMultipleBehaviors) {
  mta::HostProfile profile = base_profile(SpfBehavior::VulnerableLibspf2);
  profile.behaviors = {SpfBehavior::VulnerableLibspf2,
                       SpfBehavior::RfcCompliant};
  auto& host = add_host(std::move(profile));
  const scan::ProbeResult result = probe(host, TestKind::NoMsg);
  EXPECT_EQ(result.status, ProbeStatus::SpfMeasured);
  EXPECT_EQ(result.behaviors.size(), 2u);
  EXPECT_TRUE(result.vulnerable());
}

TEST_F(ScanFixture, PatchingChangesTheMeasurement) {
  auto& host = add_host(base_profile(SpfBehavior::VulnerableLibspf2));
  EXPECT_TRUE(probe(host, TestKind::NoMsg, "idp1").vulnerable());

  host.apply_patch();
  const scan::ProbeResult after = probe(host, TestKind::NoMsg, "idp2");
  EXPECT_EQ(after.status, ProbeStatus::SpfMeasured);
  EXPECT_FALSE(after.vulnerable());
  EXPECT_EQ(*after.behaviors.begin(), SpfBehavior::RfcCompliant);
}

TEST_F(ScanFixture, BlacklistedHostAbortsDialog) {
  auto& host = add_host(base_profile(SpfBehavior::VulnerableLibspf2));
  host.set_blacklisted(true);
  const scan::ProbeResult result = probe(host, TestKind::NoMsg);
  EXPECT_EQ(result.status, ProbeStatus::SmtpFailure);
  EXPECT_EQ(result.failing_code, 554);
}

// --------------------------------------------------------------- campaign

TEST_F(ScanFixture, CampaignFunnelAndRollup) {
  // Domain A: one vulnerable host. Domain B: compliant. Domain C: refused.
  // Domain D shares A's host (dedup check).
  add_host(base_profile(SpfBehavior::VulnerableLibspf2, 10));
  add_host(base_profile(SpfBehavior::RfcCompliant, 11));
  {
    mta::HostProfile refused = base_profile(SpfBehavior::RfcCompliant, 12);
    refused.accepts_connections = false;
    add_host(std::move(refused));
  }

  scan::CampaignConfig config;
  config.prober = prober_config_;
  scan::Campaign campaign(config, server_, clock_, *this);

  const std::vector<scan::TargetDomain> targets = {
      {"a.example", {IpAddress::v4(203, 0, 113, 10)}},
      {"b.example", {IpAddress::v4(203, 0, 113, 11)}},
      {"c.example", {IpAddress::v4(203, 0, 113, 12)}},
      {"d.example", {IpAddress::v4(203, 0, 113, 10)}},
  };
  const scan::CampaignReport report = campaign.run(targets);

  EXPECT_EQ(report.addresses_tested(), 3u);  // dedup: 4 domains, 3 addresses
  EXPECT_EQ(report.count_verdict(scan::AddressVerdict::Measured), 2u);
  EXPECT_EQ(report.count_verdict(scan::AddressVerdict::Refused), 1u);
  EXPECT_EQ(report.vulnerable_addresses(), 1u);
  EXPECT_EQ(report.vulnerable_domains(), 2u);  // a.example and d.example

  ASSERT_EQ(report.domains.size(), 4u);
  EXPECT_TRUE(report.domains[0].vulnerable);
  EXPECT_FALSE(report.domains[1].vulnerable);
  EXPECT_TRUE(report.domains[2].any_refused);
  EXPECT_TRUE(report.domains[3].vulnerable);
}

TEST_F(ScanFixture, CampaignBlankMsgWaveRecoversDeferredValidators) {
  mta::HostProfile deferred = base_profile(SpfBehavior::VulnerableLibspf2, 30);
  deferred.spf_timing = mta::SpfTiming::AfterData;
  add_host(std::move(deferred));

  scan::CampaignConfig config;
  config.prober = prober_config_;
  scan::Campaign campaign(config, server_, clock_, *this);
  const scan::CampaignReport report =
      campaign.run({{"x.example", {IpAddress::v4(203, 0, 113, 30)}}});

  const auto& outcome = report.addresses.at(IpAddress::v4(203, 0, 113, 30));
  EXPECT_EQ(outcome.verdict, scan::AddressVerdict::Measured);
  ASSERT_TRUE(outcome.blankmsg.has_value());
  EXPECT_EQ(outcome.blankmsg->kind, TestKind::BlankMsg);
  EXPECT_TRUE(outcome.vulnerable());
}

TEST_F(ScanFixture, CampaignRetriesGreylistedHosts) {
  mta::HostProfile grey = base_profile(SpfBehavior::VulnerableLibspf2, 40);
  grey.greylists = true;
  add_host(std::move(grey));

  scan::CampaignConfig config;
  config.prober = prober_config_;
  scan::Campaign campaign(config, server_, clock_, *this);
  const scan::CampaignReport report =
      campaign.run({{"g.example", {IpAddress::v4(203, 0, 113, 40)}}});
  const auto& outcome = report.addresses.at(IpAddress::v4(203, 0, 113, 40));
  EXPECT_EQ(outcome.verdict, scan::AddressVerdict::Measured);
  EXPECT_TRUE(outcome.vulnerable());
}

TEST_F(ScanFixture, RunAddressesForLongitudinalRounds) {
  add_host(base_profile(SpfBehavior::VulnerableLibspf2, 50));
  scan::CampaignConfig config;
  config.prober = prober_config_;
  scan::Campaign campaign(config, server_, clock_, *this);
  const auto report =
      campaign.run_addresses({IpAddress::v4(203, 0, 113, 50)});
  EXPECT_EQ(report.vulnerable_addresses(), 1u);
}

TEST_F(ScanFixture, UniqueLabelsDefeatCaching) {
  // Two successive probes of the same host with fresh ids must both reach
  // the authoritative server (the paper's cache-busting requirement).
  auto& host = add_host(base_profile(SpfBehavior::RfcCompliant));
  probe(host, TestKind::NoMsg, "idca1");
  const std::size_t after_first = server_.query_log().size();
  probe(host, TestKind::NoMsg, "idca2");
  EXPECT_GT(server_.query_log().size(), after_first);
}

}  // namespace
}  // namespace spfail
