// The scenario layer (DESIGN.md §17): registry, --scenario grammar, mix
// resolution, fleet staging, and the mail-flow runner's determinism.
#include <gtest/gtest.h>

#include <stdexcept>

#include "population/fleet.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

namespace spfail {
namespace {

using population::PolicyMix;

population::FleetConfig small_fleet_config(const PolicyMix& mix) {
  population::FleetConfig config;
  config.scale = 0.01;
  config.seed = 2021;
  config.mix = mix;
  return config;
}

TEST(ScenarioRegistry, BuiltinsAreClosedAndNamed) {
  const auto& specs = scenario::builtin_scenarios();
  ASSERT_EQ(specs.size(), 4u);
  for (const char* name :
       {"baseline", "forwarding", "alignment", "misconfig"}) {
    const scenario::ScenarioSpec* spec = scenario::find_scenario(name);
    ASSERT_NE(spec, nullptr) << name;
    EXPECT_EQ(spec->name, name);
    EXPECT_GE(spec->version, 1);
    EXPECT_FALSE(spec->summary.empty());
    EXPECT_NO_THROW(spec->mix.validate());
  }
  EXPECT_EQ(scenario::find_scenario("nope"), nullptr);
}

TEST(ScenarioRegistry, OnlyBaselineStagesNothing) {
  EXPECT_FALSE(scenario::find_scenario("baseline")->mix.stages_senders());
  for (const char* name : {"forwarding", "alignment", "misconfig"}) {
    EXPECT_TRUE(scenario::find_scenario(name)->mix.stages_senders()) << name;
  }
}

TEST(ScenarioParse, AcceptsListsAndTrimsWhitespace) {
  const auto specs = scenario::parse_scenario_list(" forwarding , misconfig");
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].name, "forwarding");
  EXPECT_EQ(specs[1].name, "misconfig");
}

TEST(ScenarioParse, RejectsUnknownDuplicateAndEmpty) {
  EXPECT_THROW(scenario::parse_scenario_list("bogus"), std::invalid_argument);
  EXPECT_THROW(scenario::parse_scenario_list("forwarding,forwarding"),
               std::invalid_argument);
  EXPECT_THROW(scenario::parse_scenario_list("forwarding,,misconfig"),
               std::invalid_argument);
  EXPECT_THROW(scenario::parse_scenario_list(""), std::invalid_argument);
  // The error names the valid tokens, so the CLI message is self-serve.
  try {
    scenario::parse_scenario_list("bogus");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("forwarding"),
              std::string::npos);
  }
}

TEST(ScenarioResolveMix, EmptyListIsTheBaselineMix) {
  EXPECT_EQ(scenario::resolve_mix({}), PolicyMix::paper_baseline());
}

TEST(ScenarioResolveMix, SingleSpecIsItsOwnMix) {
  const auto specs = scenario::parse_scenario_list("forwarding");
  EXPECT_EQ(scenario::resolve_mix(specs), PolicyMix::forwarding());
}

TEST(ScenarioResolveMix, CompositionSumsSenderRates) {
  const auto specs = scenario::parse_scenario_list("forwarding,misconfig");
  const PolicyMix mix = scenario::resolve_mix(specs);
  const PolicyMix fwd = PolicyMix::forwarding();
  const PolicyMix mis = PolicyMix::misconfig();
  EXPECT_DOUBLE_EQ(mix.forward_plain_rate,
                   fwd.forward_plain_rate + mis.forward_plain_rate);
  EXPECT_DOUBLE_EQ(mix.spf_plus_all_rate,
                   fwd.spf_plus_all_rate + mis.spf_plus_all_rate);
  EXPECT_DOUBLE_EQ(mix.spf_long_chain_rate,
                   fwd.spf_long_chain_rate + mis.spf_long_chain_rate);
  // Receiver rates are shared, not summed.
  EXPECT_DOUBLE_EQ(mix.reject_spf_fail_rate, fwd.reject_spf_fail_rate);
  EXPECT_NO_THROW(mix.validate());
}

TEST(ScenarioResolveMix, PctTakesTheStrictestPublishingSpec) {
  const auto specs = scenario::parse_scenario_list("forwarding,alignment");
  const PolicyMix mix = scenario::resolve_mix(specs);
  EXPECT_EQ(mix.dmarc_pct, PolicyMix::alignment().dmarc_pct);  // 60 < 100
  EXPECT_GT(mix.dmarc_publish_rate, 0.0);
}

TEST(ScenarioFleet, BaselineMixBuildsTheHistoricalPopulation) {
  // The determinism keystone: a baseline-mix fleet is the same population as
  // a default-config fleet — same intern table, same address count, no
  // sender staging, no scenario receivers.
  population::Fleet plain(small_fleet_config(PolicyMix{}));
  population::Fleet baseline(
      small_fleet_config(scenario::find_scenario("baseline")->mix));
  EXPECT_TRUE(plain.strings() == baseline.strings());
  EXPECT_EQ(plain.address_count(), baseline.address_count());
  EXPECT_TRUE(baseline.scenario_receivers().empty());
  EXPECT_FALSE(baseline.sender_policy(0).staged());
}

TEST(ScenarioFleet, StagedMixPublishesPoliciesAndReceivers) {
  population::Fleet fleet(small_fleet_config(PolicyMix::forwarding()));
  EXPECT_FALSE(fleet.scenario_receivers().empty());
  std::size_t staged = 0, forwarded = 0;
  for (std::size_t i = 0; i < fleet.domains().size(); ++i) {
    const population::SenderPolicy& policy = fleet.sender_policy(i);
    if (!policy.staged()) continue;
    ++staged;
    forwarded += policy.routing == population::SenderRouting::ForwardPlain ||
                 policy.routing == population::SenderRouting::ForwardSrs;
  }
  EXPECT_EQ(staged, fleet.domains().size());  // every domain publishes SPF
  EXPECT_GT(forwarded, 0u);
}

TEST(ScenarioRunner, ReportsAreBitIdenticalAcrossRuns) {
  const scenario::ScenarioSpec& spec = *scenario::find_scenario("forwarding");
  const auto run_once = [&] {
    population::Fleet fleet(small_fleet_config(spec.mix));
    return scenario::run_scenario(fleet, spec);
  };
  const scenario::ScenarioReport first = run_once();
  const scenario::ScenarioReport second = run_once();
  EXPECT_EQ(first.domains_staged, second.domains_staged);
  EXPECT_EQ(first.legit, second.legit);
  EXPECT_EQ(first.forwarded, second.forwarded);
  EXPECT_EQ(first.spoof, second.spoof);
}

TEST(ScenarioRunner, ForwardingLandsInsideItsOracle) {
  const scenario::ScenarioSpec& spec = *scenario::find_scenario("forwarding");
  population::Fleet fleet(small_fleet_config(spec.mix));
  const scenario::ScenarioReport report = scenario::run_scenario(fleet, spec);
  EXPECT_GT(report.domains_staged, 0u);
  EXPECT_EQ(report.spoof.flows, report.domains_staged);
  EXPECT_TRUE(report.satisfies(spec.oracle))
      << "spoof_delivered=" << report.spoof_delivered_rate()
      << " spoof_rejected=" << report.spoof_rejected_rate()
      << " legit_rejected=" << report.legit_rejected_rate()
      << " permerror=" << report.permerror_rate();
}

TEST(ScenarioRunner, MisconfigSpoofsSailThroughAndChainsPermerror) {
  const scenario::ScenarioSpec& spec = *scenario::find_scenario("misconfig");
  population::Fleet fleet(small_fleet_config(spec.mix));
  const scenario::ScenarioReport report = scenario::run_scenario(fleet, spec);
  EXPECT_GT(report.domains_staged, 0u);
  EXPECT_TRUE(report.satisfies(spec.oracle));
  // +all / broad-CIDR records admit the attacker outright.
  EXPECT_GT(report.spoof.delivered, report.spoof.rejected);
  // The >10-lookup include chains show up as SPF permerrors on both flows.
  EXPECT_GT(report.spoof.spf_permerror + report.legit.spf_permerror, 0u);
}

TEST(ScenarioRunner, BaselineMeasuresNothing) {
  const scenario::ScenarioSpec& spec = *scenario::find_scenario("baseline");
  population::Fleet fleet(small_fleet_config(spec.mix));
  const scenario::ScenarioReport report = scenario::run_scenario(fleet, spec);
  EXPECT_EQ(report.domains_staged, 0u);
  EXPECT_EQ(report.legit.flows + report.forwarded.flows + report.spoof.flows,
            0u);
  EXPECT_TRUE(report.satisfies(spec.oracle));  // all-zero windows
}

TEST(ScenarioRunner, MaxDomainsTruncatesDeterministically) {
  const scenario::ScenarioSpec& spec = *scenario::find_scenario("misconfig");
  population::Fleet full(small_fleet_config(spec.mix));
  population::Fleet capped(small_fleet_config(spec.mix));
  const scenario::ScenarioReport all = scenario::run_scenario(full, spec);
  ASSERT_GT(all.domains_staged, 4u);
  scenario::RunnerOptions options;
  options.max_domains = 4;
  const scenario::ScenarioReport few =
      scenario::run_scenario(capped, spec, options);
  EXPECT_TRUE(few.truncated);
  EXPECT_FALSE(all.truncated);
  EXPECT_EQ(few.domains_staged, 4u);
}

TEST(ScenarioOracle, RateWindowIsClosed) {
  const scenario::RateWindow window{0.2, 0.5};
  EXPECT_TRUE(window.contains(0.2));
  EXPECT_TRUE(window.contains(0.5));
  EXPECT_FALSE(window.contains(0.19));
  EXPECT_FALSE(window.contains(0.51));
}

}  // namespace
}  // namespace spfail
