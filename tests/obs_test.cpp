// The deterministic metrics subsystem (DESIGN.md §12): fixed histogram
// bucket geometry, integer quantiles, commutative merges, thread-lane
// scoping, the frozen snapshot wire form, and the two exporters whose output
// participates in the golden-file surface.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/export.hpp"
#include "obs/lane.hpp"
#include "obs/metrics.hpp"
#include "snapshot/codec.hpp"

namespace spfail {
namespace {

using obs::Histogram;
using obs::Registry;

// --- histogram geometry -----------------------------------------------------

TEST(ObsHistogram, BucketEdgesArePowersOfTwo) {
  // Bucket 0 catches everything <= 0.
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(-1), 0);
  EXPECT_EQ(Histogram::bucket_of(std::numeric_limits<std::int64_t>::min()), 0);
  // Bucket i holds v <= 2^(i-1): boundary values land exactly on their
  // bucket, boundary+1 spills into the next.
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 3);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  EXPECT_EQ(Histogram::bucket_of(5), 4);
  for (int i = 1; i < Histogram::kBucketCount - 1; ++i) {
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_bound(i)), i)
        << "boundary of bucket " << i;
  }
  // The largest finite bound is 2^62; one past it overflows to +Inf.
  EXPECT_EQ(Histogram::bucket_bound(Histogram::kBucketCount - 2),
            std::int64_t{1} << 62);
  EXPECT_EQ(Histogram::bucket_of((std::int64_t{1} << 62) + 1),
            Histogram::kBucketCount - 1);
  EXPECT_EQ(Histogram::bucket_of(std::numeric_limits<std::int64_t>::max()),
            Histogram::kBucketCount - 1);
  // The +Inf bucket has no finite bound.
  EXPECT_THROW(Histogram::bucket_bound(Histogram::kBucketCount - 1),
               std::out_of_range);
}

TEST(ObsHistogram, ObserveTracksCountSumMax) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  h.observe(3);
  h.observe(0);
  h.observe(7);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 10);
  EXPECT_EQ(h.max(), 7);
  EXPECT_EQ(h.buckets()[0], 1u);  // the 0
  EXPECT_EQ(h.buckets()[3], 1u);  // 3 -> (2, 4]
  EXPECT_EQ(h.buckets()[4], 1u);  // 7 -> (4, 8]
}

TEST(ObsHistogram, QuantilesAreDeterministicBucketBounds) {
  Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0);  // empty
  for (const std::int64_t v : {1, 2, 3, 4}) h.observe(v);
  // rank(0.5 of 4) = 2 -> cumulative reaches 2 at bucket 2 (bound 2).
  EXPECT_EQ(h.quantile(0.5), 2);
  // rank(0.95 of 4) = 4 -> bucket 3 (bound 4).
  EXPECT_EQ(h.quantile(0.95), 4);
  EXPECT_EQ(h.quantile(0.0), 1);  // rank clamps to 1
  EXPECT_EQ(h.quantile(1.0), 4);
}

TEST(ObsHistogram, OverflowBucketQuantileReportsObservedMax) {
  Histogram h;
  const std::int64_t big = (std::int64_t{1} << 62) + 12345;
  h.observe(big);
  EXPECT_EQ(h.quantile(0.5), big);
  EXPECT_EQ(h.quantile(1.0), big);
  EXPECT_EQ(h.max(), big);
}

TEST(ObsHistogram, MergeIsCommutative) {
  Histogram a, b;
  for (const std::int64_t v : {0, 1, 5, 480}) a.observe(v);
  for (const std::int64_t v : {2, 2, 1 << 20}) b.observe(v);

  Histogram ab = a;
  ab.merge(b);
  Histogram ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);

  Histogram all;
  for (const std::int64_t v : {0, 1, 5, 480, 2, 2, 1 << 20}) all.observe(v);
  EXPECT_EQ(ab, all);
}

// --- registry ---------------------------------------------------------------

TEST(ObsRegistry, KindConflictsThrowInsteadOfCoercing) {
  Registry registry;
  registry.counter("x") += 1;
  EXPECT_THROW(registry.histogram("x"), std::logic_error);
  EXPECT_THROW(registry.gauge("x"), std::logic_error);
  EXPECT_NO_THROW(registry.counter("x", {{"l", "v"}}));
}

TEST(ObsRegistry, LabelsRenderInCallSiteOrder) {
  EXPECT_EQ(obs::render_labels({{"proto", "smtp"}, {"dir", "c2s"}}),
            "proto=\"smtp\",dir=\"c2s\"");
  EXPECT_EQ(obs::render_labels({}), "");
}

TEST(ObsRegistry, CounterAndHistogramMergeIsShardingInvariant) {
  // The same observations split across shard registries two different ways
  // must merge to the same master — the property that makes metric output
  // thread-count-invariant.
  const auto book = [](Registry& r, std::int64_t v) {
    r.counter("probes", {{"test", "NoMsg"}}) += 1;
    r.histogram("latency").observe(v);
  };
  Registry split_a1, split_a2, split_b1, split_b2, split_b3;
  for (const std::int64_t v : {1, 2}) book(split_a1, v);
  for (const std::int64_t v : {3, 4, 5}) book(split_a2, v);
  for (const std::int64_t v : {1}) book(split_b1, v);
  for (const std::int64_t v : {2, 3}) book(split_b2, v);
  for (const std::int64_t v : {4, 5}) book(split_b3, v);

  Registry master_a;
  master_a.merge(split_a1);
  master_a.merge(split_a2);
  Registry master_b;
  master_b.merge(split_b1);
  master_b.merge(split_b2);
  master_b.merge(split_b3);
  EXPECT_EQ(master_a, master_b);
  EXPECT_EQ(master_a.counter("probes", {{"test", "NoMsg"}}), 5u);
  EXPECT_EQ(master_a.histogram("latency").count(), 5u);
}

TEST(ObsRegistry, MergeKindMismatchThrows) {
  Registry a, b;
  a.counter("m") += 1;
  b.gauge("m") = 2;
  EXPECT_THROW(a.merge(b), std::logic_error);
}

// --- lanes and hooks --------------------------------------------------------

TEST(ObsLane, HooksNoOpWithoutAnActiveLane) {
  ASSERT_FALSE(obs::MetricsLane::active());
  obs::count("orphan");
  obs::observe("orphan_h", 7);
  obs::gauge_set("orphan_g", 7);
  // Nothing to assert against — the contract is simply "no crash, no write".
}

TEST(ObsLane, LaneRoutesHooksAndNests) {
  Registry outer, inner;
  {
    const obs::MetricsLane lane(outer);
    ASSERT_EQ(obs::MetricsLane::current(), &outer);
    obs::count("hits");
    {
      // An inner lane redirects (TraceStats uses this), then restores.
      const obs::MetricsLane nested(inner);
      ASSERT_EQ(obs::MetricsLane::current(), &inner);
      obs::count("hits");
      obs::count("hits");
    }
    ASSERT_EQ(obs::MetricsLane::current(), &outer);
    obs::count("hits");
  }
  EXPECT_FALSE(obs::MetricsLane::active());
  EXPECT_EQ(outer.counter("hits"), 2u);
  EXPECT_EQ(inner.counter("hits"), 2u);
}

TEST(ObsLane, ScopedTimerChargesSimTimeToTheConstructionLane) {
  Registry registry;
  util::SimTime now = 100;
  const auto clock = [&now] { return now; };
  {
    const obs::MetricsLane lane(registry);
    const obs::ScopedTimer timer("stage", clock, {{"stage", "helo"}});
    now += 7;
  }
  const Histogram& h = registry.histogram("stage", {{"stage", "helo"}});
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 7);

  // Without a lane the timer is inert: the clock is never read.
  bool read = false;
  {
    const obs::ScopedTimer timer("stage",
                                 [&read] {
                                   read = true;
                                   return util::SimTime{0};
                                 });
  }
  EXPECT_FALSE(read);
}

TEST(ObsLane, WallProfilingIsOptInAndTagged) {
  Registry registry;
  util::SimTime now = 0;
  {
    const obs::MetricsLane lane(registry);
    const obs::WallProfileScope wall;
    const obs::ScopedTimer timer("stage", [&now] { return now; });
  }
  EXPECT_FALSE(obs::WallProfileScope::enabled());
  const obs::Family* family = registry.find("stage_wall_ns");
  ASSERT_NE(family, nullptr);
  EXPECT_TRUE(family->wall);
  EXPECT_FALSE(registry.find("stage")->wall);

  // Wall families stay out of both exporters unless explicitly requested.
  std::ostringstream prom, prom_wall;
  obs::write_prometheus(registry, prom);
  obs::write_prometheus(registry, prom_wall, /*include_wall=*/true);
  EXPECT_EQ(prom.str().find("stage_wall_ns"), std::string::npos);
  EXPECT_NE(prom_wall.str().find("stage_wall_ns"), std::string::npos);
  const std::string json = obs::round_snapshot_json(registry, "final");
  EXPECT_EQ(json.find("stage_wall_ns"), std::string::npos);
  EXPECT_NE(obs::round_snapshot_json(registry, "final", -1, true)
                .find("stage_wall_ns"),
            std::string::npos);
}

// --- snapshot wire form -----------------------------------------------------

Registry populated_registry() {
  Registry registry;
  registry.counter("frames", {{"proto", "smtp"}}) += 41;
  registry.counter("frames", {{"proto", "dns"}}) += 7;
  registry.gauge("round") = -3;
  Histogram& h = registry.histogram("latency", {{"stage", "rcpt"}});
  for (const std::int64_t v : {0, 1, 14, 480}) h.observe(v);
  registry.histogram_cell("stage_wall_ns", "", /*wall=*/true).observe(12345);
  return registry;
}

TEST(ObsSnapshot, RegistryEncodeDecodeRoundTrips) {
  const Registry registry = populated_registry();
  snapshot::Writer w;
  registry.encode(w);
  snapshot::Reader r(w.bytes());
  const Registry decoded = Registry::decode(r);
  r.expect_done();
  EXPECT_EQ(decoded, registry);

  // Empty registry round-trips too.
  snapshot::Writer we;
  Registry{}.encode(we);
  snapshot::Reader re(we.bytes());
  EXPECT_TRUE(Registry::decode(re).empty());
}

TEST(ObsSnapshot, DecodeRejectsOutOfRangeBucketIndex) {
  snapshot::Writer w;
  w.u64(1);  // count
  w.i64(1);  // sum
  w.i64(1);  // max
  w.u64(1);  // one sparse bucket...
  w.u16(Histogram::kBucketCount);  // ...with an impossible index
  w.u64(1);
  snapshot::Reader r(w.bytes());
  EXPECT_THROW(Histogram::decode(r), snapshot::SnapshotError);
}

// --- exporters --------------------------------------------------------------

TEST(ObsExport, PrometheusRendersCumulativeBucketsElidingEmptyOnes) {
  Registry registry;
  Histogram& h = registry.histogram("lat", {{"p", "smtp"}});
  for (const std::int64_t v : {1, 1, 4}) h.observe(v);
  registry.counter("hits") += 3;

  std::ostringstream out;
  obs::write_prometheus(registry, out);
  EXPECT_EQ(out.str(),
            "# TYPE hits counter\n"
            "hits 3\n"
            "# TYPE lat histogram\n"
            "lat_bucket{p=\"smtp\",le=\"1\"} 2\n"
            "lat_bucket{p=\"smtp\",le=\"4\"} 3\n"
            "lat_bucket{p=\"smtp\",le=\"+Inf\"} 3\n"
            "lat_sum{p=\"smtp\"} 6\n"
            "lat_count{p=\"smtp\"} 3\n");
}

TEST(ObsExport, RoundSnapshotJsonHasFixedShape) {
  Registry registry;
  registry.counter("hits", {{"k", "v"}}) += 2;
  registry.gauge("depth") = 5;
  registry.histogram("lat").observe(3);

  EXPECT_EQ(obs::round_snapshot_json(registry, "round", 4),
            "{\"phase\":\"round\",\"round\":4,"
            "\"counters\":{\"hits{k=\\\"v\\\"}\":2},"
            "\"gauges\":{\"depth\":5},"
            "\"histograms\":{\"lat\":{\"count\":1,\"sum\":3,\"max\":3,"
            "\"p50\":4,\"p95\":4}}}");
  // No round key for phases outside the longitudinal loop.
  EXPECT_EQ(obs::round_snapshot_json(registry, "initial").find("\"round\""),
            std::string::npos);
}

}  // namespace
}  // namespace spfail
