// The table-driven flag registry (session/flag_registry.hpp): structural
// invariants, CLI/env agreement, the generated markdown table, and the
// --scenario flag's plumbing into ScanConfig.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "session/flag_registry.hpp"
#include "session/scan_config.hpp"

namespace spfail {
namespace {

using session::FlagDef;
using session::ScanConfig;
using session::ScanConfigError;

ScanConfig parse(std::vector<const char*> args) {
  args.insert(args.begin(), "spfail_scan");
  return ScanConfig::from_args(static_cast<int>(args.size()), args.data());
}

TEST(FlagRegistry, FlagsAndEnvVarsAreUniqueAndDocumented) {
  std::set<std::string> flags, envs;
  for (const FlagDef& def : session::flag_registry()) {
    ASSERT_NE(def.flag, nullptr);
    EXPECT_TRUE(std::string_view(def.flag).starts_with("--")) << def.flag;
    EXPECT_TRUE(flags.insert(def.flag).second) << "duplicate " << def.flag;
    if (def.env != nullptr) {
      EXPECT_TRUE(std::string_view(def.env).starts_with("SPFAIL_"))
          << def.env;
      EXPECT_TRUE(envs.insert(def.env).second) << "duplicate " << def.env;
    }
    EXPECT_NE(def.doc, nullptr);
    EXPECT_FALSE(std::string_view(def.doc).empty()) << def.flag;
    EXPECT_NE(def.default_doc, nullptr);
    EXPECT_NE(def.apply, nullptr);
  }
  // The full historical surface is present; --scenario registered with it.
  for (const char* flag :
       {"--scale", "--seed", "--scenario", "--threads", "--initial-only",
        "--sched", "--steal-mode", "--fault-rate", "--fault-seed", "--csv",
        "--trace", "--metrics", "--metrics-wall", "--lazy-hosts",
        "--checkpoint-strings", "--checkpoint", "--checkpoint-every",
        "--resume", "--halt-after-rounds", "--workers",
        "--worker-restart-budget"}) {
    EXPECT_TRUE(flags.contains(flag)) << flag << " missing from registry";
  }
  // SPFAIL_THREADS is deliberately absent: the thread pool resolves it
  // itself when threads == 0, so the registry must not also consume it.
  EXPECT_FALSE(envs.contains("SPFAIL_THREADS"));
  EXPECT_TRUE(envs.contains("SPFAIL_SCENARIO"));
}

TEST(FlagRegistry, FindFlagResolvesExactNamesOnly) {
  ASSERT_NE(session::find_flag("--scale"), nullptr);
  EXPECT_STREQ(session::find_flag("--scale")->env, "SPFAIL_SCALE");
  EXPECT_EQ(session::find_flag("--scal"), nullptr);
  EXPECT_EQ(session::find_flag("scale"), nullptr);
  EXPECT_EQ(session::find_flag(""), nullptr);
}

TEST(FlagRegistry, MarkdownTableCoversEveryFlag) {
  const std::string table = session::flag_table_markdown();
  for (const FlagDef& def : session::flag_registry()) {
    EXPECT_NE(table.find("`" + std::string(def.flag)), std::string::npos)
        << def.flag << " missing from generated table";
    if (def.env != nullptr) {
      EXPECT_NE(table.find(def.env), std::string::npos) << def.env;
    }
    EXPECT_NE(table.find(def.doc), std::string::npos) << def.flag;
  }
  // Switches render bare; valued flags render with their placeholder.
  EXPECT_NE(table.find("`--initial-only`"), std::string::npos);
  EXPECT_NE(table.find("`--scale RATE`"), std::string::npos);
}

TEST(FlagRegistry, RegistryDrivenParsingMatchesTheOldSurface) {
  const ScanConfig config =
      parse({"--scale", "0.25", "--seed", "7", "--threads", "2",
             "--initial-only", "--fault-rate", "0.5", "--lazy-hosts"});
  EXPECT_DOUBLE_EQ(config.scale, 0.25);
  EXPECT_EQ(config.fleet_seed, 7u);
  EXPECT_EQ(config.threads, 2);
  EXPECT_TRUE(config.initial_only);
  EXPECT_DOUBLE_EQ(config.faults.rate, 0.5);
  EXPECT_TRUE(config.lazy_hosts);
  EXPECT_THROW(parse({"--scale", "x"}), ScanConfigError);
  EXPECT_THROW(parse({"--scale"}), ScanConfigError);
  EXPECT_THROW(parse({"--no-such-flag"}), ScanConfigError);
}

TEST(FlagRegistry, ScenarioFlagParsesAndValidates) {
  EXPECT_EQ(parse({}).scenario, "");
  const ScanConfig config = parse({"--scenario", "forwarding,misconfig"});
  EXPECT_EQ(config.scenario, "forwarding,misconfig");
  EXPECT_NO_THROW(parse({"--scenario", "baseline"}));
  // Unknown names are rejected at validate() with the valid list attached.
  try {
    parse({"--scenario", "bogus"});
    FAIL() << "expected ScanConfigError";
  } catch (const ScanConfigError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("--scenario"), std::string::npos);
    EXPECT_NE(what.find("forwarding"), std::string::npos);
  }
  EXPECT_THROW(parse({"--scenario", "forwarding,forwarding"}),
               ScanConfigError);
}

}  // namespace
}  // namespace spfail
