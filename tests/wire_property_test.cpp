// Property tests for the DNS wire codec: randomly generated messages must
// round-trip exactly, and random byte mutations must never crash the decoder
// (it may throw WireError or return a different message — never UB).
#include <gtest/gtest.h>

#include "dns/message.hpp"
#include "util/rng.hpp"

namespace spfail::dns {
namespace {

Name random_name(util::Rng& rng) {
  const std::size_t labels = rng.uniform(1, 5);
  std::string text;
  for (std::size_t i = 0; i < labels; ++i) {
    if (i > 0) text.push_back('.');
    text += rng.token(rng.uniform(1, 12));
  }
  return Name::from_string(text);
}

ResourceRecord random_record(util::Rng& rng) {
  ResourceRecord rr;
  rr.name = random_name(rng);
  rr.ttl = static_cast<std::uint32_t>(rng.uniform(0, 86400));
  switch (rng.uniform(0, 6)) {
    case 0:
      rr.type = RRType::A;
      rr.rdata = ARdata{util::IpAddress::v4(
          static_cast<std::uint32_t>(rng.uniform(0, 0xFFFFFFFF)))};
      break;
    case 1: {
      rr.type = RRType::AAAA;
      std::array<std::uint8_t, 16> bytes{};
      for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
      rr.rdata = AaaaRdata{util::IpAddress::v6(bytes)};
      break;
    }
    case 2:
      rr.type = RRType::MX;
      rr.rdata = MxRdata{static_cast<std::uint16_t>(rng.uniform(0, 65535)),
                         random_name(rng)};
      break;
    case 3: {
      rr.type = RRType::TXT;
      TxtRdata txt;
      const std::size_t n = rng.uniform(1, 3);
      for (std::size_t i = 0; i < n; ++i) {
        txt.strings.push_back(rng.token(rng.uniform(0, 200)));
      }
      rr.rdata = txt;
      break;
    }
    case 4:
      rr.type = RRType::CNAME;
      rr.rdata = CnameRdata{random_name(rng)};
      break;
    case 5:
      rr.type = RRType::NS;
      rr.rdata = NsRdata{random_name(rng)};
      break;
    default:
      rr.type = RRType::PTR;
      rr.rdata = PtrRdata{random_name(rng)};
      break;
  }
  return rr;
}

Message random_message(util::Rng& rng) {
  Message m;
  m.header.id = static_cast<std::uint16_t>(rng.uniform(0, 65535));
  m.header.qr = rng.bernoulli(0.5);
  m.header.aa = rng.bernoulli(0.5);
  m.header.rd = rng.bernoulli(0.5);
  m.header.ra = rng.bernoulli(0.5);
  m.header.rcode = static_cast<Rcode>(rng.uniform(0, 5));
  m.questions.push_back(Question{random_name(rng), RRType::TXT, RRClass::IN});
  const std::size_t answers = rng.uniform(0, 6);
  for (std::size_t i = 0; i < answers; ++i) {
    m.answers.push_back(random_record(rng));
  }
  const std::size_t additionals = rng.uniform(0, 2);
  for (std::size_t i = 0; i < additionals; ++i) {
    m.additionals.push_back(random_record(rng));
  }
  return m;
}

class WireRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(WireRoundTrip, EncodeDecodeIsIdentity) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  for (int i = 0; i < 50; ++i) {
    const Message original = random_message(rng);
    const Message decoded = decode(encode(original));
    ASSERT_EQ(decoded, original);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireRoundTrip, ::testing::Range(0, 10));

class WireMutation : public ::testing::TestWithParam<int> {};

TEST_P(WireMutation, MutatedBytesNeverCrash) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 3);
  for (int i = 0; i < 100; ++i) {
    auto wire = encode(random_message(rng));
    // Flip up to 4 random bytes.
    const std::size_t flips = rng.uniform(1, 4);
    for (std::size_t f = 0; f < flips && !wire.empty(); ++f) {
      wire[rng.uniform(0, wire.size() - 1)] ^=
          static_cast<std::uint8_t>(1u << rng.uniform(0, 7));
    }
    try {
      const Message decoded = decode(wire);
      (void)decoded;  // decoding to *something* is fine
    } catch (const WireError&) {
      // rejecting is fine too
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireMutation, ::testing::Range(0, 10));

TEST(WireMutation, TruncationAtEveryLengthIsHandled) {
  util::Rng rng(42);
  const auto wire = encode(random_message(rng));
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    std::vector<std::uint8_t> truncated(wire.begin(),
                                        wire.begin() + static_cast<long>(cut));
    try {
      decode(truncated);
    } catch (const WireError&) {
      // expected for most cut points
    }
  }
}

}  // namespace
}  // namespace spfail::dns
