#include <gtest/gtest.h>

#include "longitudinal/notification.hpp"
#include "longitudinal/patch_model.hpp"
#include "longitudinal/pkgmgr.hpp"
#include "longitudinal/study.hpp"
#include "population/paper_constants.hpp"

namespace spfail::longitudinal {
namespace {

namespace paper = population::paper;

// ------------------------------------------------------------ patch model

PatchContext base_context() {
  PatchContext context;
  context.tld = "com";
  return context;
}

TEST(PatchModel, NamedProvidersNeverPatch) {
  PatchModel model;
  for (int i = 0; i < 200; ++i) {
    PatchContext context = base_context();
    context.named_top_provider = true;
    EXPECT_FALSE(model.decide(context).will_patch);
  }
}

TEST(PatchModel, TwPatchRateIsZero) {
  PatchModel model;
  for (int i = 0; i < 200; ++i) {
    PatchContext context = base_context();
    context.tld = "tw";
    EXPECT_FALSE(model.decide(context).will_patch);  // Table 5: 0%
  }
}

TEST(PatchModel, ZaPatchesAlmostAlwaysAndEarly) {
  PatchModel model;
  int patched = 0, pre_disclosure = 0, pre_notification = 0;
  for (int i = 0; i < 500; ++i) {
    PatchContext context = base_context();
    context.tld = "za";
    const PatchDecision decision = model.decide(context);
    if (!decision.will_patch) continue;
    ++patched;
    pre_disclosure += decision.patch_time < paper::kPublicDisclosure;
    pre_notification += decision.patch_time < paper::kPrivateNotification;
  }
  EXPECT_GT(patched, 350);  // Table 5: 79% domain rate -> higher per address
  // §7.3: 98% of .za patching happened in the Oct/Nov window, before any
  // public disclosure; most of it even before the private notification.
  EXPECT_GT(static_cast<double>(pre_disclosure) / patched, 0.90);
  EXPECT_GT(static_cast<double>(pre_notification) / patched, 0.55);
}

TEST(PatchModel, ComNearGlobalRate) {
  PatchModel model;
  int patched = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    patched += model.decide(base_context()).will_patch;
  }
  // com domain rate 15% -> dedicated-address rate ~0.33 (1/1.7 exponent).
  EXPECT_NEAR(patched / static_cast<double>(n), 0.33, 0.04);
}

TEST(PatchModel, HostedDampingReducesPatching) {
  PatchModel model_a{{.seed = 9}}, model_b{{.seed = 9}};
  int single = 0, heavy = 0;
  for (int i = 0; i < 3000; ++i) {
    PatchContext context = base_context();
    single += model_a.decide(context).will_patch;
    context.domains_hosted = 50;
    heavy += model_b.decide(context).will_patch;
  }
  EXPECT_LT(heavy * 5, single);
}

TEST(PatchModel, OpenedNotificationRaisesRate) {
  PatchModel model_a{{.seed = 3}}, model_b{{.seed = 3}};
  int base = 0, boosted = 0;
  for (int i = 0; i < 3000; ++i) {
    PatchContext context = base_context();
    context.tld = "ru";  // 2% domain rate
    base += model_a.decide(context).will_patch;
    context.notification_opened = true;
    boosted += model_b.decide(context).will_patch;
  }
  EXPECT_GT(boosted, base * 2);
}

TEST(PatchModel, PatchTimesInsideStudyWindow) {
  PatchModel model;
  for (int i = 0; i < 2000; ++i) {
    const PatchDecision decision = model.decide(base_context());
    if (!decision.will_patch) continue;
    EXPECT_GT(decision.patch_time, paper::kInitialMeasurement);
    EXPECT_LT(decision.patch_time, paper::kFinalMeasurement);
  }
}

TEST(PatchModel, PostDisclosureSurgeExists) {
  PatchModel model;
  int w1 = 0, between = 0, post = 0;
  for (int i = 0; i < 5000; ++i) {
    const PatchDecision decision = model.decide(base_context());
    if (!decision.will_patch) continue;
    if (decision.patch_time < paper::kPrivateNotification) {
      ++w1;
    } else if (decision.patch_time < paper::kPublicDisclosure) {
      ++between;
    } else {
      ++post;
    }
  }
  // §7.6/7.7: the drop after public disclosure dwarfs the between-window
  // movement; window 1 is real but smaller than the disclosure surge.
  EXPECT_GT(post, w1);
  EXPECT_GT(w1, between);
}

// ------------------------------------------------------------ notification

TEST(Notification, GroupsDomainsBySharedInfrastructure) {
  NotificationCampaign campaign;
  const auto shared = util::IpAddress::v4(1, 1, 1, 1);
  campaign.add_domain("a.example", {shared});
  campaign.add_domain("b.example", {shared});
  campaign.add_domain("c.example", {util::IpAddress::v4(2, 2, 2, 2)});
  campaign.send();
  EXPECT_EQ(campaign.groups().size(), 2u);
  EXPECT_EQ(campaign.groups()[0].covered_domains.size(), 2u);
}

TEST(Notification, FunnelRatesApproximatePaper) {
  NotificationConfig config;
  config.seed = 5;
  NotificationCampaign campaign(config);
  for (int i = 0; i < 6000; ++i) {
    campaign.add_domain("d" + std::to_string(i) + ".example",
                        {util::IpAddress::v4(10, static_cast<uint8_t>(i >> 16),
                                             static_cast<uint8_t>(i >> 8),
                                             static_cast<uint8_t>(i))});
  }
  campaign.send();
  const NotificationStats stats = campaign.stats();
  EXPECT_EQ(stats.sent, 6000u);
  // §7.7: 31.6% bounced; 12% of delivered opened.
  EXPECT_NEAR(stats.bounced / 6000.0, 0.316, 0.02);
  EXPECT_NEAR(static_cast<double>(stats.opened) / stats.delivered, 0.12, 0.02);
}

TEST(Notification, OpenTimesFollowSend) {
  NotificationCampaign campaign;
  for (int i = 0; i < 300; ++i) {
    campaign.add_domain("d" + std::to_string(i) + ".example",
                        {util::IpAddress::v4(10, 1, static_cast<uint8_t>(i >> 8),
                                             static_cast<uint8_t>(i))});
  }
  campaign.send();
  for (const auto& group : campaign.groups()) {
    if (group.opened) {
      EXPECT_GE(group.opened_at, campaign.config().send_time);
      EXPECT_FALSE(group.tracking_token.empty());
    }
  }
}

TEST(Notification, AddressOpenLookup) {
  NotificationCampaign campaign({.bounce_rate = 0.0, .open_rate = 1.0});
  const auto address = util::IpAddress::v4(9, 9, 9, 9);
  campaign.add_domain("x.example", {address});
  campaign.send();
  EXPECT_TRUE(campaign.address_operator_opened(address));
  EXPECT_FALSE(
      campaign.address_operator_opened(util::IpAddress::v4(8, 8, 8, 8)));
}

TEST(Notification, CannotSendTwice) {
  NotificationCampaign campaign;
  campaign.add_domain("x.example", {util::IpAddress::v4(1, 2, 3, 4)});
  campaign.send();
  EXPECT_THROW(campaign.send(), std::logic_error);
  EXPECT_THROW(campaign.add_domain("y.example", {util::IpAddress::v4(1, 2, 3, 5)}),
               std::logic_error);
}

// ------------------------------------------------------------ pkg managers

TEST(PkgMgr, TableHasNineManagers) {
  EXPECT_EQ(package_manager_table().size(), 9u);
}

TEST(PkgMgr, DebianPatchedBothImmediately) {
  const auto& debian = package_manager_table()[0];
  EXPECT_EQ(debian.name, "Debian");
  EXPECT_EQ(patch_latency_cell(debian, false), "0 (2021-08-11)");
  EXPECT_EQ(patch_latency_cell(debian, true), "1 (2022-01-20)");
}

TEST(PkgMgr, BundledFixesRenderAsZeroStar) {
  for (const auto& record : package_manager_table()) {
    if (!record.fix_bundled_with_earlier) continue;
    const std::string cell = patch_latency_cell(record, true);
    EXPECT_EQ(cell.substr(0, 2), "0*") << record.name;
  }
}

TEST(PkgMgr, UnpatchedRenderAsPlus) {
  bool saw_unpatched = false;
  for (const auto& record : package_manager_table()) {
    if (record.patched_33912.has_value()) continue;
    saw_unpatched = true;
    const std::string cell = patch_latency_cell(record, true);
    EXPECT_NE(cell.find("+ (Unpatched)"), std::string::npos) << record.name;
  }
  EXPECT_TRUE(saw_unpatched);  // Ubuntu / FreeBSD / NetBSD / SUSE
}

TEST(PkgMgr, AlpineLaggedOnSecondCve) {
  const auto& alpine = package_manager_table()[1];
  EXPECT_EQ(alpine.name, "Alpine");
  const std::string cell = patch_latency_cell(alpine, true);
  EXPECT_EQ(cell, "51 (2022-03-11)");
}

// ------------------------------------------------------------ full study

class StudyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    population::FleetConfig config;
    config.scale = 0.02;
    fleet_ = new population::Fleet(config);
    Study study(*fleet_);
    report_ = new StudyReport(study.run());
  }
  static void TearDownTestSuite() {
    delete report_;
    delete fleet_;
  }
  static population::Fleet* fleet_;
  static StudyReport* report_;
};

population::Fleet* StudyTest::fleet_ = nullptr;
StudyReport* StudyTest::report_ = nullptr;

TEST_F(StudyTest, InitialVulnerabilityNearPaperRates) {
  // ~17% of tested addresses... of *measured* addresses; and the scaled
  // absolute counts (7,212 addresses / 18,660 domains at scale 1).
  EXPECT_NEAR(static_cast<double>(report_->initially_vulnerable_addresses),
              0.02 * paper::kVulnerableAddressesTotal,
              0.02 * paper::kVulnerableAddressesTotal * 0.25);
  // Wider tolerance at this tiny scale: the domain count is a heavy-tailed
  // sum over shared-pool addresses, so its variance shrinks only at larger
  // scales (the full-scale bench lands within a few percent).
  EXPECT_NEAR(static_cast<double>(report_->initially_vulnerable_domains),
              0.02 * paper::kVulnerableDomainsTotal,
              0.02 * paper::kVulnerableDomainsTotal * 0.40);
}

TEST_F(StudyTest, RoundCadenceMatchesTimeline) {
  ASSERT_GT(report_->round_times.size(), 25u);
  EXPECT_EQ(report_->round_times.front(), paper::kLongitudinalStart);
  EXPECT_EQ(report_->round_times.back(), paper::kFinalMeasurement);
  // Two windows with the December gap.
  bool saw_gap = false;
  for (std::size_t i = 1; i < report_->round_times.size(); ++i) {
    const auto delta = report_->round_times[i] - report_->round_times[i - 1];
    if (delta > 10 * util::kDay) saw_gap = true;
    else EXPECT_EQ(delta, paper::kMeasurementCadence);
  }
  EXPECT_TRUE(saw_gap);
}

TEST_F(StudyTest, MajorityStillVulnerableAtEnd) {
  const auto counts = Study::domain_counts_at(*report_, *fleet_,
                                              report_->round_times.size() - 1,
                                              Cohort::All);
  ASSERT_GT(counts.inferable, 0u);
  // The headline result: >80% of inferable domains remain vulnerable. At
  // this file's tiny 0.02 scale the figure is seed-noisy (a single patched
  // hosting pool moves it several points), so the test asserts the weaker
  // two-thirds bound; bench_fig7_full at >=0.1 scale lands 82-88%.
  EXPECT_GT(static_cast<double>(counts.vulnerable) / counts.inferable, 0.66);
}

TEST_F(StudyTest, VulnerabilityIsMonotoneNonIncreasing) {
  double previous = 1.1;
  for (std::size_t round = 0; round < report_->round_times.size(); ++round) {
    const auto counts =
        Study::domain_counts_at(*report_, *fleet_, round, Cohort::All);
    if (counts.inferable == 0) continue;
    const double fraction =
        static_cast<double>(counts.patched) / counts.inferable;
    // Patched share never decreases by more than noise (the denominator
    // shifts as hosts drop out, so allow small wiggle).
    EXPECT_LT(fraction, 1.0);
    EXPECT_GT(fraction, -0.001);
    previous = fraction;
  }
}

TEST_F(StudyTest, SnapshotPatchedShareNearPaper) {
  std::size_t patched = 0;
  for (const auto& track : report_->tracks) {
    patched += track.final_status == FinalStatus::Patched;
  }
  const double share =
      static_cast<double>(patched) / report_->tracks.size();
  EXPECT_GT(share, 0.06);  // Fig 2: ~15% patched overall (noisy at 0.02 scale)
  EXPECT_LT(share, 0.28);
}

TEST_F(StudyTest, NotificationFunnelShape) {
  EXPECT_GT(report_->notification.sent, 0u);
  const double bounce_rate = static_cast<double>(report_->notification.bounced) /
                             report_->notification.sent;
  EXPECT_NEAR(bounce_rate, 0.316, 0.10);
  // §7.7: patching between disclosures is rare.
  EXPECT_LE(report_->opened_patched_between_disclosures,
            report_->opened_eventually_patched);
}

TEST_F(StudyTest, Alexa1000NeverLooksBetterThanOverall) {
  const std::size_t last = report_->round_times.size() - 1;
  const auto all = Study::domain_counts_at(*report_, *fleet_, last, Cohort::All);
  const auto top = Study::domain_counts_at(*report_, *fleet_, last,
                                           Cohort::Alexa1000);
  if (top.inferable > 0 && all.inferable > 0) {
    const double top_patched =
        static_cast<double>(top.patched) / top.inferable;
    const double all_patched =
        static_cast<double>(all.patched) / all.inferable;
    EXPECT_LE(top_patched, all_patched + 0.01);  // §7.2: Top-1000 patches least
  }
}

TEST_F(StudyTest, RemeasurableCohortExistsAndResolves) {
  // §6.1: ~10% as many re-measurable inconclusives as vulnerable addresses
  // (721 vs 7,212); most resolve during the longitudinal rounds.
  EXPECT_GT(report_->remeasurable_addresses, 0u);
  EXPECT_LT(report_->remeasurable_addresses,
            report_->initially_vulnerable_addresses / 2);
  EXPECT_GE(report_->remeasurable_resolved_vulnerable +
                report_->remeasurable_resolved_compliant,
            report_->remeasurable_addresses / 2);
}

TEST_F(StudyTest, TracksCoverVulnerableDomainsOnly) {
  for (const auto& track : report_->tracks) {
    EXPECT_FALSE(track.vulnerable_addresses.empty());
    EXPECT_LT(track.domain_index, fleet_->domains().size());
  }
}

}  // namespace
}  // namespace spfail::longitudinal
