#include <gtest/gtest.h>

#include "dns/resolver.hpp"
#include "dns/server.hpp"
#include "dns/zonefile.hpp"
#include "spf/received_spf.hpp"

namespace spfail::spf {
namespace {

class ReceivedSpfFixture : public ::testing::Test {
 protected:
  ReceivedSpfFixture()
      : resolver_(server_, clock_, util::IpAddress::v4(10, 0, 0, 53)) {
    server_.add_zone(dns::parse_zone_text(R"(
$ORIGIN example.com.
@    IN TXT "v=spf1 ip4:203.0.113.7 -all"
)",
                                          dns::Name::from_string("example.com")));
    server_.add_zone(dns::parse_zone_text(R"(
$ORIGIN helo.example.
@    IN TXT "v=spf1 ip4:198.51.100.25 -all"
)",
                                          dns::Name::from_string("helo.example")));
  }

  CheckRequest request(const char* ip) {
    CheckRequest r;
    r.sender_local = "user";
    r.sender_domain = dns::Name::from_string("example.com");
    r.client_ip = *util::IpAddress::parse(ip);
    r.helo_domain = dns::Name::from_string("client.example.net");
    return r;
  }

  dns::AuthoritativeServer server_;
  util::SimClock clock_;
  dns::StubResolver resolver_;
  Rfc7208Expander expander_;
};

TEST_F(ReceivedSpfFixture, PassHeader) {
  Evaluator evaluator(resolver_, expander_);
  const CheckRequest req = request("203.0.113.7");
  const CheckOutcome outcome = evaluator.check_host(req);
  const std::string header = received_spf_header(outcome, req, "mx.rx.org");
  EXPECT_EQ(header.substr(0, 18), "Received-SPF: pass");
  EXPECT_NE(header.find("mx.rx.org: domain of user@example.com designates "
                        "203.0.113.7 as permitted sender"),
            std::string::npos);
  EXPECT_NE(header.find("client-ip=203.0.113.7;"), std::string::npos);
  EXPECT_NE(header.find("envelope-from=\"user@example.com\";"),
            std::string::npos);
  EXPECT_NE(header.find("helo=client.example.net;"), std::string::npos);
}

TEST_F(ReceivedSpfFixture, FailHeader) {
  Evaluator evaluator(resolver_, expander_);
  const CheckRequest req = request("9.9.9.9");
  const CheckOutcome outcome = evaluator.check_host(req);
  const std::string header = received_spf_header(outcome, req, "mx.rx.org");
  EXPECT_EQ(header.substr(0, 18), "Received-SPF: fail");
  EXPECT_NE(header.find("does not designate 9.9.9.9"), std::string::npos);
}

TEST_F(ReceivedSpfFixture, EveryResultFormats) {
  for (const Result result :
       {Result::None, Result::Neutral, Result::Pass, Result::Fail,
        Result::SoftFail, Result::TempError, Result::PermError}) {
    CheckOutcome outcome;
    outcome.result = result;
    const std::string header =
        received_spf_header(outcome, request("1.2.3.4"), "rx");
    EXPECT_EQ(header.substr(0, 14), "Received-SPF: ");
    EXPECT_NE(header.find(to_string(result)), std::string::npos);
  }
}

TEST_F(ReceivedSpfFixture, HeloCheckUsesPostmaster) {
  Evaluator evaluator(resolver_, expander_);
  const CheckOutcome pass = check_helo(
      evaluator, *util::IpAddress::parse("198.51.100.25"),
      dns::Name::from_string("helo.example"));
  EXPECT_EQ(pass.result, Result::Pass);

  Evaluator evaluator2(resolver_, expander_);
  const CheckOutcome fail = check_helo(
      evaluator2, *util::IpAddress::parse("198.51.100.26"),
      dns::Name::from_string("helo.example"));
  EXPECT_EQ(fail.result, Result::Fail);
}

}  // namespace
}  // namespace spfail::spf
