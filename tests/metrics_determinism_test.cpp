// Determinism of the metric output surface (DESIGN.md §12): the JSONL round
// snapshots and the Prometheus exposition must be byte-identical at any
// thread count, and a run halted at a checkpoint and resumed in a fresh
// process must re-emit exactly the stream an uninterrupted run produces.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "session/scan_session.hpp"

namespace spfail {
namespace {

session::ScanConfig metered_config() {
  session::ScanConfig config;
  config.scale = 0.004;
  config.faults.rate = 0.02;
  // Any non-empty path enables metrics; these tests never write the files.
  config.metrics_path = testing::TempDir() + "spfail_metrics_unwritten.jsonl";
  return config;
}

// The full metric output surface of a session, rendered to one string.
std::string metric_output(session::ScanSession& session) {
  std::ostringstream os;
  for (const std::string& line : session.metric_lines()) os << line << "\n";
  obs::write_prometheus(*session.metrics(), os);
  return os.str();
}

TEST(MetricsDeterminism, OutputIsThreadCountInvariant) {
  std::vector<std::string> outputs;
  for (const int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    session::ScanConfig config = metered_config();
    config.threads = threads;
    session::ScanSession session(config);
    ASSERT_NE(session.study(), nullptr);
    outputs.push_back(metric_output(session));
    EXPECT_FALSE(outputs.back().empty());
    EXPECT_EQ(outputs.back(), outputs.front());
  }
}

TEST(MetricsDeterminism, InitialOnlyCampaignIsThreadCountInvariant) {
  std::vector<std::string> outputs;
  for (const int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    session::ScanConfig config = metered_config();
    config.initial_only = true;
    config.threads = threads;
    session::ScanSession session(config);
    session.initial();
    outputs.push_back(metric_output(session));
    EXPECT_FALSE(outputs.back().empty());
    EXPECT_EQ(outputs.back(), outputs.front());
  }
}

TEST(MetricsDeterminism, HaltAndResumeReEmitIdenticalMetricStream) {
  const std::string path = testing::TempDir() + "spfail_metrics_ckpt.bin";

  session::ScanConfig halting = metered_config();
  halting.checkpoint_path = path;
  halting.halt_after_rounds = 7;
  session::ScanSession first(halting);
  EXPECT_EQ(first.study(), nullptr);
  EXPECT_TRUE(first.halted());

  session::ScanConfig resuming = metered_config();
  resuming.resume_path = path;
  resuming.threads = 4;
  session::ScanSession second(resuming);
  ASSERT_NE(second.study(), nullptr);

  session::ScanConfig uninterrupted = metered_config();
  session::ScanSession third(uninterrupted);
  ASSERT_NE(third.study(), nullptr);

  EXPECT_EQ(metric_output(second), metric_output(third));
  std::remove(path.c_str());
}

TEST(MetricsDeterminism, RestoreRefusesMetricsPresenceMismatch) {
  population::FleetConfig fleet_config;
  fleet_config.scale = 0.004;
  fleet_config.seed = 2021;

  // Snapshot taken with metrics enabled...
  obs::Registry metrics;
  longitudinal::StudyConfig with_metrics;
  with_metrics.faults.rate = 0.02;
  with_metrics.metrics = &metrics;
  population::Fleet fleet(fleet_config);
  longitudinal::Study study(fleet, with_metrics);
  longitudinal::Study::State state = study.begin();
  const snapshot::StudySnapshot snap = study.capture(state);
  ASSERT_TRUE(snap.has_metrics);

  {
    // ...refuses to restore into a run with them disabled...
    longitudinal::StudyConfig without;
    without.faults.rate = 0.02;
    population::Fleet fresh(fleet_config);
    longitudinal::Study mismatched(fresh, without);
    EXPECT_THROW(mismatched.restore(snap), snapshot::SnapshotError);
  }
  {
    // ...and a metrics-off snapshot refuses a metrics-on run.
    longitudinal::StudyConfig without;
    without.faults.rate = 0.02;
    population::Fleet plain_fleet(fleet_config);
    longitudinal::Study plain(plain_fleet, without);
    longitudinal::Study::State plain_state = plain.begin();
    const snapshot::StudySnapshot plain_snap = plain.capture(plain_state);
    ASSERT_FALSE(plain_snap.has_metrics);

    obs::Registry other;
    longitudinal::StudyConfig wants_metrics;
    wants_metrics.faults.rate = 0.02;
    wants_metrics.metrics = &other;
    population::Fleet fresh(fleet_config);
    longitudinal::Study mismatched(fresh, wants_metrics);
    EXPECT_THROW(mismatched.restore(plain_snap), snapshot::SnapshotError);
  }
}

TEST(MetricsDeterminism, RestoredRegistryContinuesFromCheckpointedState) {
  population::FleetConfig fleet_config;
  fleet_config.scale = 0.004;
  fleet_config.seed = 2021;

  obs::Registry metrics;
  longitudinal::StudyConfig config;
  config.faults.rate = 0.02;
  config.metrics = &metrics;
  population::Fleet fleet(fleet_config);
  longitudinal::Study study(fleet, config);
  longitudinal::Study::State state = study.begin();
  study.run_round(state);
  study.run_round(state);
  const snapshot::StudySnapshot snap = study.capture(state);

  obs::Registry restored_metrics;
  longitudinal::StudyConfig resumed_config;
  resumed_config.faults.rate = 0.02;
  resumed_config.metrics = &restored_metrics;
  population::Fleet fresh(fleet_config);
  longitudinal::Study resumed(fresh, resumed_config);
  resumed.restore(snap);
  EXPECT_EQ(restored_metrics, metrics);
}

// --- flag plumbing ----------------------------------------------------------

TEST(MetricsConfig, FlagsParseAndValidate) {
  const char* argv[] = {"spfail_scan", "--metrics", "/tmp/m.jsonl",
                        "--metrics-wall"};
  const session::ScanConfig config = session::ScanConfig::from_args(4, argv);
  EXPECT_EQ(config.metrics_path, "/tmp/m.jsonl");
  EXPECT_TRUE(config.metrics());
  EXPECT_TRUE(config.metrics_wall);

  // --metrics-wall without --metrics has nowhere to write.
  const char* bad[] = {"spfail_scan", "--metrics-wall"};
  EXPECT_THROW(session::ScanConfig::from_args(2, bad),
               session::ScanConfigError);
}

TEST(MetricsConfig, EnvironmentIsHonoured) {
  ::setenv("SPFAIL_METRICS", "/tmp/env-metrics.jsonl", 1);
  ::setenv("SPFAIL_METRICS_WALL", "1", 1);
  const session::ScanConfig config = session::ScanConfig::from_env();
  EXPECT_EQ(config.metrics_path, "/tmp/env-metrics.jsonl");
  EXPECT_TRUE(config.metrics_wall);

  ::setenv("SPFAIL_METRICS_WALL", "maybe", 1);
  EXPECT_THROW(session::ScanConfig::from_env(), session::ScanConfigError);
  ::unsetenv("SPFAIL_METRICS_WALL");
  ::unsetenv("SPFAIL_METRICS");
}

}  // namespace
}  // namespace spfail
