#include <gtest/gtest.h>

#include "dns/message.hpp"
#include "dns/name.hpp"
#include "dns/query_log.hpp"
#include "dns/resolver.hpp"
#include "dns/server.hpp"
#include "dns/zone.hpp"

namespace spfail::dns {
namespace {

using util::IpAddress;

// ---------------------------------------------------------------- Name

TEST(Name, ParseAndFormat) {
  const Name n = Name::from_string("Mail.Example.COM");
  EXPECT_EQ(n.to_string(), "mail.example.com");
  EXPECT_EQ(n.label_count(), 3u);
}

TEST(Name, TrailingDotIgnored) {
  EXPECT_EQ(Name::from_string("example.com."), Name::from_string("example.com"));
}

TEST(Name, Root) {
  EXPECT_TRUE(Name::root().empty());
  EXPECT_EQ(Name::root().to_string(), ".");
  EXPECT_EQ(Name::from_string("."), Name::root());
}

TEST(Name, RejectsEmptyLabel) {
  EXPECT_THROW(Name::from_string("a..b"), std::invalid_argument);
}

TEST(Name, RejectsOversizedLabel) {
  EXPECT_THROW(Name::from_string(std::string(64, 'a') + ".com"),
               std::invalid_argument);
}

TEST(Name, RejectsOversizedName) {
  std::string big;
  for (int i = 0; i < 60; ++i) big += "abcd.";
  big += "com";
  EXPECT_THROW(Name::from_string(big), std::invalid_argument);
}

TEST(Name, LenientKeepsErroneousLabels) {
  const Name n = Name::lenient("%{d1r}.test.example");
  EXPECT_EQ(n.label_count(), 3u);
  EXPECT_EQ(n.labels()[0], "%{d1r}");
}

TEST(Name, ParentChild) {
  const Name n = Name::from_string("example.com");
  EXPECT_EQ(n.parent().to_string(), "com");
  EXPECT_EQ(n.child("mail").to_string(), "mail.example.com");
  EXPECT_EQ(Name::from_string("com").parent(), Name::root());
}

TEST(Name, Subdomain) {
  const Name base = Name::from_string("spf-test.dns-lab.org");
  EXPECT_TRUE(Name::from_string("x.y.spf-test.dns-lab.org").is_subdomain_of(base));
  EXPECT_TRUE(base.is_subdomain_of(base));
  EXPECT_FALSE(Name::from_string("dns-lab.org").is_subdomain_of(base));
  EXPECT_FALSE(Name::from_string("xspf-test.dns-lab.org").is_subdomain_of(base));
  EXPECT_TRUE(base.is_subdomain_of(Name::root()));
}

TEST(Name, LabelsRelativeTo) {
  const Name base = Name::from_string("spf-test.dns-lab.org");
  const Name full = Name::from_string("a.b.spf-test.dns-lab.org");
  const auto rel = full.labels_relative_to(base);
  ASSERT_EQ(rel.size(), 2u);
  EXPECT_EQ(rel[0], "a");
  EXPECT_EQ(rel[1], "b");
  EXPECT_THROW(base.labels_relative_to(full), std::invalid_argument);
}

TEST(Name, Tld) {
  EXPECT_EQ(Name::from_string("mail.example.com").tld(), "com");
  EXPECT_EQ(Name::root().tld(), "");
}

TEST(Name, Ordering) {
  EXPECT_LT(Name::from_string("a.com"), Name::from_string("b.com"));
}

// ---------------------------------------------------------------- TxtRdata

TEST(Txt, SplitsLongStrings) {
  const std::string long_text(600, 'x');
  const TxtRdata rdata = TxtRdata::from_text(long_text);
  ASSERT_EQ(rdata.strings.size(), 3u);
  EXPECT_EQ(rdata.strings[0].size(), 255u);
  EXPECT_EQ(rdata.strings[2].size(), 90u);
  EXPECT_EQ(rdata.joined(), long_text);
}

// ---------------------------------------------------------------- codec

TEST(Codec, QueryRoundTrip) {
  const Message query =
      Message::make_query(0x1234, Name::from_string("example.com"), RRType::TXT);
  const Message decoded = decode(encode(query));
  EXPECT_EQ(decoded, query);
}

TEST(Codec, ResponseRoundTripAllRdataTypes) {
  Message query =
      Message::make_query(7, Name::from_string("example.com"), RRType::ANY);
  Message response = Message::make_response(query, Rcode::NoError);
  const Name owner = Name::from_string("example.com");
  response.answers.push_back(ResourceRecord::a(owner, IpAddress::v4(192, 0, 2, 1)));
  response.answers.push_back(
      ResourceRecord::aaaa(owner, *IpAddress::parse("2001:db8::1")));
  response.answers.push_back(
      ResourceRecord::mx(owner, 10, Name::from_string("mx1.example.com")));
  response.answers.push_back(ResourceRecord::txt(owner, "v=spf1 -all"));
  response.answers.push_back(ResourceRecord::cname(
      Name::from_string("www.example.com"), owner));
  response.answers.push_back(ResourceRecord{
      Name::from_string("example.com"), RRType::NS, RRClass::IN, 300,
      NsRdata{Name::from_string("ns1.example.com")}});
  response.answers.push_back(ResourceRecord{
      Name::from_string("example.com"), RRType::SOA, RRClass::IN, 300,
      SoaRdata{Name::from_string("ns1.example.com"),
               Name::from_string("hostmaster.example.com"), 2021101101, 7200,
               3600, 1209600, 300}});
  response.answers.push_back(
      ResourceRecord{Name::from_string("1.2.0.192.in-addr.arpa"), RRType::PTR,
                     RRClass::IN, 300, PtrRdata{owner}});

  const Message decoded = decode(encode(response));
  EXPECT_EQ(decoded, response);
}

TEST(Codec, CompressionShrinksRepeatedNames) {
  Message m = Message::make_query(1, Name::from_string("a.example.com"),
                                  RRType::MX);
  Message r = Message::make_response(m, Rcode::NoError);
  for (int i = 0; i < 10; ++i) {
    r.answers.push_back(ResourceRecord::mx(
        Name::from_string("a.example.com"), static_cast<std::uint16_t>(i),
        Name::from_string("mx.example.com")));
  }
  const auto wire = encode(r);
  // Without compression each answer would repeat 15+ bytes of name; with
  // compression each answer's owner collapses to a 2-byte pointer.
  EXPECT_LT(wire.size(), 250u);
  EXPECT_EQ(decode(wire), r);
}

TEST(Codec, LongTxtRoundTrip) {
  Message q = Message::make_query(2, Name::from_string("t.example"), RRType::TXT);
  Message r = Message::make_response(q, Rcode::NoError);
  r.answers.push_back(
      ResourceRecord::txt(Name::from_string("t.example"), std::string(600, 's')));
  EXPECT_EQ(decode(encode(r)), r);
}

TEST(Codec, TruncatedInputThrows) {
  const Message query =
      Message::make_query(3, Name::from_string("example.com"), RRType::A);
  auto wire = encode(query);
  wire.resize(wire.size() - 3);
  EXPECT_THROW(decode(wire), WireError);
}

TEST(Codec, TrailingGarbageThrows) {
  const Message query =
      Message::make_query(3, Name::from_string("example.com"), RRType::A);
  auto wire = encode(query);
  wire.push_back(0);
  EXPECT_THROW(decode(wire), WireError);
}

TEST(Codec, PointerLoopThrows) {
  // Hand-craft a message whose qname is a self-pointing compression pointer.
  std::vector<std::uint8_t> wire = {
      0x00, 0x01, 0x01, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0xC0, 0x0C,  // pointer to itself (offset 12)
      0x00, 0x01, 0x00, 0x01};
  EXPECT_THROW(decode(wire), WireError);
}

TEST(Codec, ErroneousLabelsSurviveTheWire) {
  // The vulnerability fingerprint queries contain '%', '{', '}' — they must
  // encode and decode unchanged, since real resolvers pass them through.
  const Name odd = Name::lenient("%{d1r}.x.spf-test.dns-lab.org");
  const Message query = Message::make_query(9, odd, RRType::A);
  const Message decoded = decode(encode(query));
  EXPECT_EQ(decoded.questions[0].qname.to_string(),
            "%{d1r}.x.spf-test.dns-lab.org");
}

// ---------------------------------------------------------------- Zone

Zone make_example_zone() {
  Zone zone(Name::from_string("example.com"));
  zone.add(ResourceRecord::a(Name::from_string("example.com"),
                             IpAddress::v4(192, 0, 2, 1)));
  zone.add(ResourceRecord::mx(Name::from_string("example.com"), 10,
                              Name::from_string("mx1.example.com")));
  zone.add(ResourceRecord::a(Name::from_string("mx1.example.com"),
                             IpAddress::v4(192, 0, 2, 25)));
  zone.add(ResourceRecord::txt(Name::from_string("example.com"),
                               "v=spf1 mx -all"));
  zone.add(ResourceRecord::cname(Name::from_string("www.example.com"),
                                 Name::from_string("example.com")));
  return zone;
}

TEST(Zone, LookupSuccess) {
  const Zone zone = make_example_zone();
  const auto result = zone.lookup(Name::from_string("example.com"), RRType::MX);
  EXPECT_EQ(result.status, LookupResult::Status::Success);
  ASSERT_EQ(result.records.size(), 1u);
}

TEST(Zone, LookupNoData) {
  const Zone zone = make_example_zone();
  const auto result =
      zone.lookup(Name::from_string("mx1.example.com"), RRType::TXT);
  EXPECT_EQ(result.status, LookupResult::Status::NoData);
}

TEST(Zone, LookupNxDomain) {
  const Zone zone = make_example_zone();
  const auto result =
      zone.lookup(Name::from_string("nope.example.com"), RRType::A);
  EXPECT_EQ(result.status, LookupResult::Status::NxDomain);
}

TEST(Zone, CnameChase) {
  const Zone zone = make_example_zone();
  const auto result =
      zone.lookup(Name::from_string("www.example.com"), RRType::A);
  EXPECT_EQ(result.status, LookupResult::Status::Success);
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.records[0].type, RRType::CNAME);
  EXPECT_EQ(result.records[1].type, RRType::A);
}

TEST(Zone, RejectsOutOfZoneRecord) {
  Zone zone(Name::from_string("example.com"));
  EXPECT_THROW(zone.add(ResourceRecord::a(Name::from_string("other.org"),
                                          IpAddress::v4(1, 2, 3, 4))),
               std::invalid_argument);
}

TEST(Zone, RemoveByType) {
  Zone zone = make_example_zone();
  zone.remove(Name::from_string("example.com"), RRType::MX);
  EXPECT_EQ(zone.lookup(Name::from_string("example.com"), RRType::MX).status,
            LookupResult::Status::NoData);
  // A record still present.
  EXPECT_EQ(zone.lookup(Name::from_string("example.com"), RRType::A).status,
            LookupResult::Status::Success);
}

// ---------------------------------------------------------------- server

TEST(Server, AnswersFromZone) {
  AuthoritativeServer server;
  server.add_zone(make_example_zone());
  util::SimClock clock;

  const Message query =
      Message::make_query(5, Name::from_string("example.com"), RRType::A);
  const Message response =
      server.handle(query, IpAddress::v4(198, 51, 100, 7), clock.now());
  EXPECT_EQ(response.header.rcode, Rcode::NoError);
  ASSERT_EQ(response.answers.size(), 1u);
  EXPECT_TRUE(response.header.qr);
  EXPECT_TRUE(response.header.aa);
}

TEST(Server, RefusesOffZoneQueries) {
  AuthoritativeServer server;
  server.add_zone(make_example_zone());
  util::SimClock clock;
  const Message query =
      Message::make_query(5, Name::from_string("elsewhere.net"), RRType::A);
  EXPECT_EQ(server.handle(query, IpAddress::v4(1, 1, 1, 1), clock.now())
                .header.rcode,
            Rcode::Refused);
}

TEST(Server, LogsEveryQuery) {
  AuthoritativeServer server;
  server.add_zone(make_example_zone());
  util::SimClock clock;
  const auto client = IpAddress::v4(203, 0, 113, 5);
  server.handle(Message::make_query(1, Name::from_string("example.com"),
                                    RRType::TXT),
                client, clock.now());
  server.handle(Message::make_query(2, Name::from_string("nope.example.com"),
                                    RRType::A),
                client, clock.now());
  ASSERT_EQ(server.query_log().size(), 2u);
  EXPECT_EQ(server.query_log().entries()[0].qtype, RRType::TXT);
  EXPECT_EQ(server.query_log().entries()[1].qname.to_string(),
            "nope.example.com");
  EXPECT_EQ(server.query_log().entries()[0].client, client);
}

TEST(Server, DynamicResponderWins) {
  AuthoritativeServer server;
  const Name base = Name::from_string("spf-test.dns-lab.org");
  server.add_responder(base, [&](const Name& qname, RRType qtype)
                                 -> std::optional<std::vector<ResourceRecord>> {
    if (qtype == RRType::A) {
      return std::vector{ResourceRecord::a(qname, IpAddress::v4(192, 0, 2, 99))};
    }
    return std::vector<ResourceRecord>{};
  });
  util::SimClock clock;
  const Message response = server.handle(
      Message::make_query(1, Name::from_string("anything.spf-test.dns-lab.org"),
                          RRType::A),
      IpAddress::v4(1, 2, 3, 4), clock.now());
  EXPECT_EQ(response.header.rcode, Rcode::NoError);
  ASSERT_EQ(response.answers.size(), 1u);
}

TEST(QueryLog, UnderFilter) {
  QueryLog log;
  log.record({0, IpAddress::v4(1, 1, 1, 1),
              Name::from_string("x.test.example"), RRType::A});
  log.record({1, IpAddress::v4(1, 1, 1, 1), Name::from_string("other.org"),
              RRType::A});
  EXPECT_EQ(log.under(Name::from_string("test.example")).size(), 1u);
  EXPECT_EQ(log.under(Name::root()).size(), 2u);
}

// ---------------------------------------------------------------- resolver

TEST(Resolver, ResolvesAndCaches) {
  AuthoritativeServer server;
  server.add_zone(make_example_zone());
  util::SimClock clock;
  StubResolver resolver(server, clock, IpAddress::v4(198, 51, 100, 1));

  const auto r1 = resolver.query(Name::from_string("example.com"), RRType::A);
  EXPECT_TRUE(r1.ok());
  const auto r2 = resolver.query(Name::from_string("example.com"), RRType::A);
  EXPECT_TRUE(r2.ok());
  EXPECT_EQ(resolver.cache_hits(), 1u);
  EXPECT_EQ(resolver.cache_misses(), 1u);
  EXPECT_EQ(server.query_log().size(), 1u);  // second answer came from cache
}

TEST(Resolver, CacheExpires) {
  AuthoritativeServer server;
  server.add_zone(make_example_zone());
  util::SimClock clock;
  StubResolver resolver(server, clock, IpAddress::v4(198, 51, 100, 1));

  resolver.query(Name::from_string("example.com"), RRType::A);
  clock.advance_by(301);  // past the 300s TTL
  resolver.query(Name::from_string("example.com"), RRType::A);
  EXPECT_EQ(server.query_log().size(), 2u);
}

TEST(Resolver, CacheDisabled) {
  AuthoritativeServer server;
  server.add_zone(make_example_zone());
  util::SimClock clock;
  StubResolver resolver(server, clock, IpAddress::v4(198, 51, 100, 1),
                        /*enable_cache=*/false);
  resolver.query(Name::from_string("example.com"), RRType::A);
  resolver.query(Name::from_string("example.com"), RRType::A);
  EXPECT_EQ(server.query_log().size(), 2u);
}

TEST(Resolver, TypedHelpers) {
  AuthoritativeServer server;
  server.add_zone(make_example_zone());
  util::SimClock clock;
  StubResolver resolver(server, clock, IpAddress::v4(198, 51, 100, 1));

  const auto addrs = resolver.addresses(Name::from_string("example.com"));
  ASSERT_EQ(addrs.size(), 1u);
  EXPECT_EQ(addrs[0].to_string(), "192.0.2.1");

  const auto mx = resolver.mx(Name::from_string("example.com"));
  ASSERT_EQ(mx.size(), 1u);
  EXPECT_EQ(mx[0].exchange.to_string(), "mx1.example.com");

  const auto txt = resolver.txt(Name::from_string("example.com"));
  ASSERT_EQ(txt.size(), 1u);
  EXPECT_EQ(txt[0], "v=spf1 mx -all");
}

TEST(Resolver, MxSortedByPreference) {
  Zone zone(Name::from_string("m.example"));
  zone.add(ResourceRecord::mx(Name::from_string("m.example"), 20,
                              Name::from_string("b.m.example")));
  zone.add(ResourceRecord::mx(Name::from_string("m.example"), 5,
                              Name::from_string("a.m.example")));
  AuthoritativeServer server;
  server.add_zone(std::move(zone));
  util::SimClock clock;
  StubResolver resolver(server, clock, IpAddress::v4(1, 1, 1, 1));
  const auto mx = resolver.mx(Name::from_string("m.example"));
  ASSERT_EQ(mx.size(), 2u);
  EXPECT_EQ(mx[0].preference, 5);
}

}  // namespace
}  // namespace spfail::dns
