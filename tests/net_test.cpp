// Unit coverage for the simulated-network transport layer (DESIGN.md §10):
// frame serialisation, the WireTrace lane discipline, trace statistics, and
// SmtpChannel's time/fault/capture semantics. Together with the
// FaultDnsTransport and TraceDeterminism suites these form the `ubsan_net`
// ctest entry — the newest integer/cast-heavy code paths.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "net/frame.hpp"
#include "net/trace_stats.hpp"
#include "net/transport.hpp"
#include "net/wire_trace.hpp"
#include "smtp/reply.hpp"
#include "smtp/server.hpp"
#include "util/clock.hpp"
#include "util/ip.hpp"

namespace spfail::net {
namespace {

// ------------------------------------------------------------- frames

TEST(NetFrame, SmtpCommandJsonKeyOrder) {
  Frame frame;
  frame.time = 7;
  frame.lane = 3;
  frame.src = "198.51.100.10";
  frame.dst = "11.0.0.1";
  frame.direction = Direction::ClientToServer;
  frame.kind = FrameKind::SmtpCommand;
  frame.verb = "MAIL";
  frame.text = "MAIL FROM:<a@b.com>";
  EXPECT_EQ(to_json(frame),
            R"({"t":7,"lane":3,"src":"198.51.100.10","dst":"11.0.0.1",)"
            R"("dir":"c2s","kind":"smtp-cmd","verb":"MAIL",)"
            R"("text":"MAIL FROM:<a@b.com>"})");
}

TEST(NetFrame, DataPayloadLineCarriesNoVerbKey) {
  Frame frame;
  frame.kind = FrameKind::SmtpCommand;
  frame.text = "Subject: hello";
  const std::string json = to_json(frame);
  EXPECT_EQ(json.find("\"verb\""), std::string::npos);
  EXPECT_NE(json.find("\"text\":\"Subject: hello\""), std::string::npos);
}

TEST(NetFrame, InjectedReplyJsonEndsWithMarker) {
  Frame frame;
  frame.direction = Direction::ServerToClient;
  frame.kind = FrameKind::SmtpReply;
  frame.code = 451;
  frame.text = "451 transient network failure (injected)";
  frame.injected = true;
  const std::string json = to_json(frame);
  EXPECT_NE(json.find("\"code\":451"), std::string::npos);
  EXPECT_EQ(json.substr(json.size() - 17), ",\"injected\":true}");
}

TEST(NetFrame, DnsResponseJsonCarriesRcodeAndAnswers) {
  Frame frame;
  frame.time = 2;
  frame.lane = 9;
  frame.src = "authority";
  frame.dst = "10.0.0.53";
  frame.direction = Direction::ServerToClient;
  frame.kind = FrameKind::DnsResponse;
  frame.qname = "example.com.";
  frame.qtype = "TXT";
  frame.rcode = "NOERROR";
  frame.answers = 2;
  EXPECT_EQ(to_json(frame),
            R"({"t":2,"lane":9,"src":"authority","dst":"10.0.0.53",)"
            R"("dir":"s2c","kind":"dns-reply","qname":"example.com.",)"
            R"("qtype":"TXT","rcode":"NOERROR","answers":2})");
}

TEST(NetFrame, JsonEscapeHandlesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\r\nnext\ttab"), "line\\r\\nnext\\ttab");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(json_escape("plain text"), "plain text");
}

TEST(NetFrame, DirectionAndKindNames) {
  EXPECT_EQ(to_string(Direction::ClientToServer), "c2s");
  EXPECT_EQ(to_string(Direction::ServerToClient), "s2c");
  EXPECT_EQ(to_string(FrameKind::SmtpCommand), "smtp-cmd");
  EXPECT_EQ(to_string(FrameKind::SmtpReply), "smtp-reply");
  EXPECT_EQ(to_string(FrameKind::DnsQuery), "dns-query");
  EXPECT_EQ(to_string(FrameKind::DnsResponse), "dns-reply");
}

// ------------------------------------------------------------- wire trace

Frame reply_frame(int code) {
  Frame frame;
  frame.direction = Direction::ServerToClient;
  frame.kind = FrameKind::SmtpReply;
  frame.code = code;
  return frame;
}

TEST(WireTrace, SpliceAppendsInOrderAndEmptiesTheSource) {
  WireTrace a;
  WireTrace b;
  a.record(reply_frame(220));
  b.record(reply_frame(250));
  b.record(reply_frame(354));
  a.splice(std::move(b));
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a.frames()[0].code, 220);
  EXPECT_EQ(a.frames()[1].code, 250);
  EXPECT_EQ(a.frames()[2].code, 354);
  EXPECT_TRUE(b.empty());

  // Splicing into an empty trace steals the whole vector.
  WireTrace c;
  c.splice(std::move(a));
  EXPECT_EQ(c.size(), 3u);
  EXPECT_TRUE(a.empty());
}

TEST(WireTrace, LaneStampsIdAndAnchorRelativeTime) {
  util::SimClock clock;
  clock.advance_by(100);
  WireTrace sink;
  EXPECT_FALSE(WireTrace::Lane::active());
  {
    WireTrace::Lane lane(sink, 42, clock);  // anchor = 100
    EXPECT_TRUE(WireTrace::Lane::active());
    WireTrace::Lane::record(reply_frame(220), /*now=*/105);
  }
  EXPECT_FALSE(WireTrace::Lane::active());
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.frames()[0].time, 5);
  EXPECT_EQ(sink.frames()[0].lane, 42u);
}

TEST(WireTrace, RecordWithoutALaneIsDropped) {
  WireTrace::Lane::record(reply_frame(220), 0);  // must not crash
  EXPECT_FALSE(WireTrace::Lane::active());
}

TEST(WireTrace, SecondLaneOnTheSameThreadThrows) {
  util::SimClock clock;
  WireTrace sink;
  WireTrace::Lane lane(sink, 0, clock);
  EXPECT_THROW(WireTrace::Lane(sink, 1, clock), std::logic_error);
}

TEST(WireTrace, ReleaseMovesFramesOut) {
  WireTrace trace;
  trace.record(reply_frame(220));
  const auto frames = trace.release();
  EXPECT_EQ(frames.size(), 1u);
  EXPECT_TRUE(trace.empty());
}

// ------------------------------------------------------------- stats

TEST(TraceStats, CountsKindsVerbsRcodesLanesAndEndpoints) {
  WireTrace trace;
  Frame cmd;
  cmd.lane = 0;
  cmd.src = "a";
  cmd.dst = "b";
  cmd.kind = FrameKind::SmtpCommand;
  cmd.verb = "MAIL";
  trace.record(cmd);
  cmd.verb = "";  // a DATA payload line: counted as a command, not a verb
  trace.record(cmd);
  Frame reply = reply_frame(451);
  reply.lane = 1;
  reply.src = "b";
  reply.dst = "a";
  reply.injected = true;
  trace.record(reply);
  Frame query;
  query.lane = 1;
  query.src = "a";
  query.dst = "authority";
  query.kind = FrameKind::DnsQuery;
  trace.record(query);
  Frame response;
  response.lane = 1;
  response.src = "authority";
  response.dst = "a";
  response.kind = FrameKind::DnsResponse;
  response.rcode = "SERVFAIL";
  trace.record(response);

  const TraceStats stats = TraceStats::from(trace);
  EXPECT_EQ(stats.frames, 5u);
  EXPECT_EQ(stats.smtp_commands, 2u);
  EXPECT_EQ(stats.smtp_replies, 1u);
  EXPECT_EQ(stats.dns_queries, 1u);
  EXPECT_EQ(stats.dns_responses, 1u);
  EXPECT_EQ(stats.injected, 1u);
  EXPECT_EQ(stats.lanes, 2u);      // lane ids 0 and 1
  EXPECT_EQ(stats.endpoints, 3u);  // "a", "b", "authority"
  EXPECT_EQ(stats.smtp_verbs.at("MAIL"), 1u);
  EXPECT_EQ(stats.smtp_verbs.size(), 1u);
  EXPECT_EQ(stats.dns_rcodes.at("SERVFAIL"), 1u);
}

// ------------------------------------------------------------- channel

// An MTA that accepts everything and records what actually reached it.
class AcceptAllHandler : public smtp::SessionHandler {
 public:
  smtp::Reply on_hello(const std::string&, const util::IpAddress&) override {
    return smtp::replies::ok();
  }
  smtp::Reply on_mail_from(const std::string& local, const std::string& domain,
                           const util::IpAddress&) override {
    sender = local + "@" + domain;
    return smtp::replies::ok();
  }
  smtp::Reply on_rcpt_to(const std::string& recipient,
                         const util::IpAddress&) override {
    recipients.push_back(recipient);
    return smtp::replies::ok();
  }
  smtp::Reply on_message(const smtp::Envelope&,
                         const util::IpAddress&) override {
    return smtp::replies::ok();
  }

  std::string sender;
  std::vector<std::string> recipients;
};

class SmtpChannelFixture : public ::testing::Test {
 protected:
  SmtpChannelFixture()
      : session_(handler_, client_ip_),
        client_(Endpoint::ip(client_ip_)),
        server_(Endpoint::named("mta")) {}

  AcceptAllHandler handler_;
  util::IpAddress client_ip_ = util::IpAddress::v4(198, 51, 100, 10);
  smtp::ServerSession session_;
  Endpoint client_;
  Endpoint server_;
};

TEST_F(SmtpChannelFixture, ChargesOneSimulatedSecondPerFrame) {
  util::SimClock clock;
  Transport transport(clock);
  SmtpChannel channel = transport.open(session_, client_, server_);
  EXPECT_EQ(channel.greeting().code, 220);
  EXPECT_EQ(clock.now(), 1);
  EXPECT_EQ(channel.send("EHLO scanner.example").code, 250);
  EXPECT_EQ(clock.now(), 2);
}

TEST_F(SmtpChannelFixture, TempfailFiresOnceAtItsStageAndNeverReachesTheMta) {
  util::SimClock clock;
  Transport transport(clock);
  faults::FaultDecision fault;
  fault.kind = faults::FaultKind::SmtpTempfail;
  fault.stage = faults::SmtpStage::MailFrom;
  fault.smtp_code = 451;
  SmtpChannel channel = transport.open(session_, client_, server_, fault);
  EXPECT_EQ(channel.greeting().code, 220);
  EXPECT_EQ(channel.send("EHLO scanner.example").code, 250);
  const smtp::Reply reply = channel.send("MAIL FROM:<a@b.com>");
  EXPECT_EQ(reply.code, 451);
  EXPECT_TRUE(channel.last_injected());
  EXPECT_FALSE(channel.dropped());
  EXPECT_TRUE(handler_.sender.empty());  // the command died on the wire
  EXPECT_FALSE(channel.closed());
}

TEST_F(SmtpChannelFixture, ConnectionDropKillsTheSessionSilently) {
  util::SimClock clock;
  Transport transport(clock);
  faults::FaultDecision fault;
  fault.kind = faults::FaultKind::ConnectionDrop;
  fault.stage = faults::SmtpStage::RcptTo;
  SmtpChannel channel = transport.open(session_, client_, server_, fault);
  EXPECT_EQ(channel.greeting().code, 220);
  EXPECT_EQ(channel.send("EHLO scanner.example").code, 250);
  EXPECT_EQ(channel.send("MAIL FROM:<a@b.com>").code, 250);
  const smtp::Reply silence = channel.send("RCPT TO:<c@d.com>");
  EXPECT_EQ(silence.code, smtp::kNoReplyCode);
  EXPECT_TRUE(channel.dropped());
  EXPECT_TRUE(channel.closed());
  EXPECT_TRUE(handler_.recipients.empty());
}

TEST_F(SmtpChannelFixture, LatencySpikeIsChargedAtConnectionSetup) {
  util::SimClock clock;
  Transport transport(clock);
  faults::FaultDecision fault;
  fault.kind = faults::FaultKind::LatencySpike;
  fault.latency = 9;
  SmtpChannel channel = transport.open(session_, client_, server_, fault);
  EXPECT_EQ(clock.now(), 9);  // charged before the first frame
  EXPECT_EQ(channel.greeting().code, 220);  // dialog otherwise unaffected
  EXPECT_EQ(clock.now(), 10);
  EXPECT_FALSE(channel.dropped());
  EXPECT_FALSE(channel.last_injected());
}

TEST_F(SmtpChannelFixture, MirrorRecordsAbsoluteTimeTranscript) {
  util::SimClock clock;
  clock.advance_by(50);
  Transport transport(clock);
  SmtpChannel channel = transport.open(session_, client_, server_);
  WireTrace mirror;
  channel.set_mirror(&mirror);
  channel.greeting();
  channel.send("EHLO scanner.example");
  ASSERT_EQ(mirror.size(), 3u);  // banner, command, reply
  EXPECT_EQ(mirror.frames()[0].kind, FrameKind::SmtpReply);
  EXPECT_EQ(mirror.frames()[0].code, 220);
  EXPECT_EQ(mirror.frames()[0].time, 51);  // absolute, not lane-relative
  EXPECT_EQ(mirror.frames()[1].kind, FrameKind::SmtpCommand);
  EXPECT_EQ(mirror.frames()[1].verb, "EHLO");
  EXPECT_EQ(mirror.frames()[1].time, 52);
  EXPECT_EQ(mirror.frames()[2].code, 250);
  EXPECT_EQ(mirror.frames()[2].src, "mta");
  EXPECT_EQ(mirror.frames()[2].dst, "198.51.100.10");
}

TEST_F(SmtpChannelFixture, ClocklessTransportIsFreeAndUntimed) {
  Transport transport;
  EXPECT_EQ(transport.config().smtp_frame_cost, 0);
  EXPECT_EQ(transport.now(), 0);
  SmtpChannel channel = transport.open(session_, client_, server_);
  EXPECT_EQ(channel.greeting().code, 220);  // no clock to charge — no throw
  EXPECT_EQ(channel.send("EHLO scanner.example").code, 250);
}

TEST_F(SmtpChannelFixture, ReadOnlyClockRejectsPositiveCharges) {
  const util::SimClock clock;
  Transport transport(clock);  // default config still charges 1 per frame
  EXPECT_NO_THROW(transport.charge(0));
  EXPECT_THROW(transport.charge(1), std::logic_error);
  SmtpChannel channel = transport.open(session_, client_, server_);
  EXPECT_THROW(channel.greeting(), std::logic_error);
}

}  // namespace
}  // namespace spfail::net
