// The sharded scan engine: ThreadPool mechanics, and the load-bearing
// guarantee that reports are bit-identical at any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "longitudinal/study.hpp"
#include "population/fleet.hpp"
#include "util/thread_pool.hpp"

namespace spfail {
namespace {

// ---------------------------------------------------------------- pool

TEST(ThreadPool, ResolveThreadCountPrefersExplicitRequest) {
  EXPECT_EQ(util::resolve_thread_count(3), 3u);
  EXPECT_EQ(util::resolve_thread_count(1), 1u);
  // 0 falls back to SPFAIL_THREADS when set.
  ::setenv("SPFAIL_THREADS", "5", 1);
  EXPECT_EQ(util::resolve_thread_count(0), 5u);
  EXPECT_EQ(util::resolve_thread_count(2), 2u);  // request still wins
  ::unsetenv("SPFAIL_THREADS");
  EXPECT_GE(util::resolve_thread_count(0), 1u);
}

TEST(ThreadPool, CoversFullRangeExactlyOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  const std::size_t n = 1003;
  std::vector<std::atomic<int>> touched(n);
  for (auto& t : touched) t = 0;
  pool.parallel_for_shards(n, [&](std::size_t shard, std::size_t begin,
                                  std::size_t end) {
    EXPECT_LT(shard, pool.shard_count(n));
    EXPECT_LE(begin, end);
    for (std::size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ShardCountNeverExceedsItemsOrWorkers) {
  util::ThreadPool pool(8);
  EXPECT_EQ(pool.shard_count(0), 0u);
  EXPECT_EQ(pool.shard_count(3), 3u);
  EXPECT_EQ(pool.shard_count(8), 8u);
  EXPECT_EQ(pool.shard_count(1000), 8u);
}

TEST(ThreadPool, EmptyRangeDoesNotInvoke) {
  util::ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for_shards(
      0, [&](std::size_t, std::size_t, std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, PropagatesWorkerExceptions) {
  util::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for_shards(100,
                               [&](std::size_t shard, std::size_t,
                                   std::size_t) {
                                 if (shard == 2) {
                                   throw std::runtime_error("shard 2 died");
                                 }
                               }),
      std::runtime_error);
  // When several shards throw, the lowest shard's exception wins — a
  // deterministic choice, not a race.
  try {
    pool.parallel_for_shards(100, [&](std::size_t shard, std::size_t,
                                      std::size_t) {
      throw std::runtime_error("shard " + std::to_string(shard));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "shard 0");
  }
  // The pool survives worker exceptions and stays usable.
  std::atomic<int> sum{0};
  pool.parallel_for_shards(10, [&](std::size_t, std::size_t begin,
                                   std::size_t end) {
    sum.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(sum.load(), 10);
}

TEST(ThreadPool, CleanShutdownAfterWork) {
  for (int round = 0; round < 8; ++round) {
    util::ThreadPool pool(3);
    std::atomic<int> sum{0};
    pool.parallel_for_shards(17, [&](std::size_t, std::size_t begin,
                                     std::size_t end) {
      sum.fetch_add(static_cast<int>(end - begin));
    });
    EXPECT_EQ(sum.load(), 17);
    // Destructor joins all workers; looping catches shutdown races.
  }
}

// --------------------------------------------------- determinism oracle

void serialize_campaign(std::ostringstream& out,
                        const scan::CampaignReport& report) {
  out << "suite=" << report.suite_label << "\n";
  const faults::DegradationReport& deg = report.degradation;
  out << "deg pa=" << deg.probe_attempts << " r=" << deg.retries
      << " inj=" << deg.injected_total() << " lat=" << deg.latency_injected
      << " tr=" << deg.transient_addresses << " rec=" << deg.recovered
      << " ex=" << deg.exhausted << " bt=" << deg.breaker_trips
      << " bs=" << deg.breaker_skipped << " rq=" << deg.requeued
      << " rr=" << deg.requeue_recovered << " c=" << deg.conclusive << "\n";
  for (const scan::AddressOutcome* outcome : report.sorted_outcomes()) {
    out << outcome->address.to_string() << " v="
        << to_string(outcome->verdict) << " pa=" << outcome->probe_attempts
        << " ru=" << outcome->retries_used << " b=";
    for (const auto behavior : outcome->behaviors) {
      out << spfvuln::to_string(behavior) << ",";
    }
    for (const auto& probe : {outcome->nomsg, outcome->blankmsg}) {
      if (!probe.has_value()) {
        out << " -";
        continue;
      }
      out << " [" << to_string(probe->status) << " "
          << probe->mail_from_domain.to_string() << " f="
          << probe->failing_code << " p=" << probe->saw_policy_fetch << " u="
          << probe->accepted_username << "]";
    }
    out << "\n";
  }
  for (const auto& domain : report.domains) {
    out << domain.domain << " r=" << domain.any_refused
        << " m=" << domain.any_measured << " v=" << domain.vulnerable << " b=";
    for (const auto behavior : domain.behaviors) {
      out << spfvuln::to_string(behavior) << ",";
    }
    out << "\n";
  }
}

std::string serialize_study(population::Fleet& fleet,
                            const longitudinal::StudyReport& report) {
  std::ostringstream out;
  serialize_campaign(out, report.initial);
  out << "vuln_addr=" << report.initially_vulnerable_addresses
      << " vuln_dom=" << report.initially_vulnerable_domains
      << " remeas=" << report.remeasurable_addresses
      << " remeas_v=" << report.remeasurable_resolved_vulnerable
      << " remeas_c=" << report.remeasurable_resolved_compliant << "\n";
  for (const auto t : report.round_times) out << t << ",";
  out << "\n";
  for (const auto& track : report.tracks) {
    out << "track " << track.domain_index << " s="
        << static_cast<int>(track.final_status) << " a=";
    for (const auto& address : track.vulnerable_addresses) {
      out << address.to_string() << ",";
    }
    out << "\n";
  }
  for (const scan::AddressOutcome* outcome :
       report.initial.sorted_outcomes()) {
    if (!outcome->vulnerable()) continue;
    out << outcome->address.to_string() << " states=";
    for (const auto state : report.inference.states(outcome->address)) {
      out << static_cast<int>(state) << ",";
    }
    out << "\n";
  }
  out << "notif s=" << report.notification.sent << " b="
      << report.notification.bounced << " d=" << report.notification.delivered
      << " o=" << report.notification.opened << " og=" << report.opened_groups
      << " oep=" << report.opened_eventually_patched
      << " opbd=" << report.opened_patched_between_disclosures
      << " bpbd=" << report.bounced_patched_between_disclosures << "\n";
  out << "clock=" << fleet.clock().now()
      << " queries=" << fleet.dns().query_log().size() << "\n";
  return out.str();
}

std::string run_study(int threads) {
  population::FleetConfig config;
  config.scale = 0.01;
  config.seed = 20211011;
  population::Fleet fleet(config);
  longitudinal::StudyConfig study_config;
  study_config.threads = threads;
  longitudinal::Study study(fleet, study_config);
  const longitudinal::StudyReport report = study.run();
  return serialize_study(fleet, report);
}

TEST(ThreadDeterminism, CampaignBitIdenticalAcrossThreadCounts) {
  const auto run_campaign = [](int threads) {
    population::FleetConfig config;
    config.scale = 0.02;
    config.seed = 7;
    population::Fleet fleet(config);
    scan::CampaignConfig campaign_config;
    campaign_config.prober.responder = fleet.responder();
    campaign_config.threads = threads;
    scan::Campaign campaign(campaign_config, fleet.dns(), fleet.clock(),
                            fleet);
    const scan::CampaignReport report = campaign.run(fleet.targets());
    std::ostringstream out;
    serialize_campaign(out, report);
    out << "clock=" << fleet.clock().now()
        << " queries=" << fleet.dns().query_log().size() << "\n";
    return out.str();
  };
  const std::string serial = run_campaign(1);
  EXPECT_EQ(serial, run_campaign(3));
  EXPECT_EQ(serial, run_campaign(8));
}

TEST(ThreadDeterminism, FaultInjectedCampaignBitIdenticalAcrossThreadCounts) {
  // The tentpole guarantee: with the fault layer live (10% injection, the
  // retry engine, the circuit breaker, and the re-queue wave all active) the
  // report is still a pure function of the seeds — identical at any thread
  // count and across reruns, and actually sensitive to the fault seed.
  const auto run_campaign = [](int threads, std::uint64_t fault_seed) {
    population::FleetConfig config;
    config.scale = 0.02;
    config.seed = 7;
    population::Fleet fleet(config);
    scan::CampaignConfig campaign_config;
    campaign_config.prober.responder = fleet.responder();
    campaign_config.threads = threads;
    campaign_config.faults.rate = 0.10;
    campaign_config.faults.seed = fault_seed;
    scan::Campaign campaign(campaign_config, fleet.dns(), fleet.clock(),
                            fleet);
    const scan::CampaignReport report = campaign.run(fleet.targets());
    std::ostringstream out;
    serialize_campaign(out, report);
    out << "clock=" << fleet.clock().now()
        << " queries=" << fleet.dns().query_log().size() << "\n";
    return out.str();
  };
  const std::string serial = run_campaign(1, 42);
  EXPECT_EQ(serial, run_campaign(2, 42));
  EXPECT_EQ(serial, run_campaign(8, 42));
  EXPECT_EQ(serial, run_campaign(1, 42));  // rerun, same seed
  EXPECT_NE(serial, run_campaign(1, 43));  // the plan really keys off it
}

TEST(ThreadDeterminism, StudyBitIdenticalAcrossThreadCounts) {
  const std::string serial = run_study(1);
  EXPECT_EQ(serial, run_study(2));
  EXPECT_EQ(serial, run_study(8));
}

TEST(ThreadDeterminism, LazyStreamingCampaignBitIdenticalAcrossThreadCounts) {
  // §14: the lazy fleet materialises hosts on probe and evicts them after,
  // and the campaign consumes the zero-copy TargetSource view. Neither may
  // perturb a single output byte relative to the eager serial run.
  const auto run_campaign = [](int threads, bool lazy) {
    population::FleetConfig config;
    config.scale = 0.02;
    config.seed = 7;
    config.lazy_hosts = lazy;
    population::Fleet fleet(config);
    scan::CampaignConfig campaign_config;
    campaign_config.prober.responder = fleet.responder();
    campaign_config.threads = threads;
    scan::Campaign campaign(campaign_config, fleet.dns(), fleet.clock(),
                            fleet);
    const scan::CampaignReport report = campaign.run(fleet.target_source());
    std::ostringstream out;
    serialize_campaign(out, report);
    out << "clock=" << fleet.clock().now()
        << " queries=" << fleet.dns().query_log().size() << "\n";
    return out.str();
  };
  const std::string eager_serial = run_campaign(1, false);
  EXPECT_EQ(eager_serial, run_campaign(1, true));
  EXPECT_EQ(eager_serial, run_campaign(2, true));
  EXPECT_EQ(eager_serial, run_campaign(8, true));
}

}  // namespace
}  // namespace spfail
