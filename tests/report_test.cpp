// Tests for the table/figure renderers: every experiment deliverable must
// produce a well-formed table whose aggregates are internally consistent.
#include <gtest/gtest.h>

#include "report/session.hpp"
#include "report/tables.hpp"

namespace spfail::report {
namespace {

// Shared tiny session; building the study once keeps this file fast.
class ReportFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { session_ = new ReproSession(0.01); }
  static void TearDownTestSuite() {
    delete session_;
    session_ = nullptr;
  }
  static ReproSession* session_;
};

ReproSession* ReportFixture::session_ = nullptr;

TEST_F(ReportFixture, SessionHonoursExplicitScale) {
  EXPECT_DOUBLE_EQ(session_->scale(), 0.01);
  EXPECT_NE(session_->banner().find("scale=0.01"), std::string::npos);
}

TEST_F(ReportFixture, Table1ThreeByThree) {
  const auto table = table1_overlap(session_->fleet());
  EXPECT_EQ(table.rows(), 3u);
  EXPECT_EQ(table.columns(), 4u);
  // Diagonal cells render as 100%.
  EXPECT_NE(table.render().find("(100.0%)"), std::string::npos);
}

TEST_F(ReportFixture, Table2HasFifteenRows) {
  const auto table = table2_tlds(session_->fleet());
  EXPECT_EQ(table.rows(), 15u);
  EXPECT_NE(table.render().find("com"), std::string::npos);
}

TEST_F(ReportFixture, Table3FunnelConsistent) {
  const auto table = table3_outcomes(session_->fleet(), session_->initial());
  const std::string rendered = table.render();
  EXPECT_NE(rendered.find("Total Tested"), std::string::npos);
  EXPECT_NE(rendered.find("BlankMsg Test"), std::string::npos);
  EXPECT_NE(rendered.find("Provider Domains"), std::string::npos);
}

TEST_F(ReportFixture, Table4PartitionsMeasured) {
  const auto table = table4_breakdown(session_->fleet(), session_->initial());
  EXPECT_EQ(table.rows(), 4u);  // measured, vulnerable, erroneous, compliant
}

TEST_F(ReportFixture, Table5SortedByRate) {
  const auto table = table5_tld_patch(session_->fleet(), session_->study());
  EXPECT_GE(table.rows(), 2u);
  EXPECT_LE(table.rows(), 10u);  // top five + bottom five
}

TEST_F(ReportFixture, Table6MatchesStaticFeed) {
  const auto table = table6_pkgmgr();
  EXPECT_EQ(table.rows(), 9u);
  const std::string rendered = table.render();
  EXPECT_NE(rendered.find("Debian"), std::string::npos);
  EXPECT_NE(rendered.find("Unpatched"), std::string::npos);
  EXPECT_NE(rendered.find("0*"), std::string::npos);
}

TEST_F(ReportFixture, Table7CoversAllBehaviors) {
  const auto table = table7_behaviors(session_->fleet(), session_->initial());
  const std::string rendered = table.render();
  EXPECT_NE(rendered.find("Vulnerable libSPF2"), std::string::npos);
  EXPECT_NE(rendered.find("No macro expansion"), std::string::npos);
  EXPECT_NE(rendered.find("Multiple expansion patterns"), std::string::npos);
}

TEST_F(ReportFixture, Fig2RowsPerCohort) {
  const auto table =
      fig2_final_distribution(session_->fleet(), session_->study());
  EXPECT_EQ(table.rows(), 4u);
}

TEST_F(ReportFixture, Fig3HasRegions) {
  const auto table = fig3_geography(session_->fleet(), session_->study());
  EXPECT_GE(table.rows(), 3u);
  EXPECT_NE(table.render().find("europe"), std::string::npos);
}

TEST_F(ReportFixture, Fig4TwentyBuckets) {
  const auto table = fig4_rank_buckets(session_->fleet(), session_->study(),
                                       longitudinal::Cohort::AlexaTopList);
  EXPECT_EQ(table.rows(), 20u);
}

TEST_F(ReportFixture, Fig5OneRowPerRound) {
  const auto table = fig5_conclusive_series(
      session_->fleet(), session_->study(), longitudinal::Cohort::All);
  EXPECT_EQ(table.rows(), session_->study().round_times.size());
}

TEST_F(ReportFixture, Fig6StopsAtWindowBoundary) {
  const auto window1 = fig67_vulnerability_series(session_->fleet(),
                                                  session_->study(), true);
  const auto full = fig67_vulnerability_series(session_->fleet(),
                                               session_->study(), false);
  EXPECT_LT(window1.rows(), full.rows());
  EXPECT_EQ(full.rows(), session_->study().round_times.size());
}

TEST_F(ReportFixture, NotificationFunnelShape) {
  const auto table = notification_funnel(session_->study());
  const std::string rendered = table.render();
  EXPECT_NE(rendered.find("Notifications sent"), std::string::npos);
  EXPECT_NE(rendered.find("Opened (tracking image)"), std::string::npos);
}

TEST(ReportSession, EnvScaleParsing) {
  // Explicit argument takes precedence over anything else.
  ReproSession session(0.004);
  EXPECT_DOUBLE_EQ(session.scale(), 0.004);
}

}  // namespace
}  // namespace spfail::report
