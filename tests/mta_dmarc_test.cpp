// Integration: DMARC-enforcing MTAs and the probe source domain's p=reject
// (paper section 6.2 — blank probe messages must be rejected, not delivered).
#include <gtest/gtest.h>

#include "mta/host.hpp"
#include "scan/prober.hpp"
#include "scan/test_responder.hpp"

namespace spfail {
namespace {

class MtaDmarcFixture : public ::testing::Test {
 protected:
  MtaDmarcFixture() { responder_ = scan::install_test_responder(server_); }

  mta::MailHost make_host(bool checks_dmarc) {
    mta::HostProfile profile;
    profile.address = util::IpAddress::v4(203, 0, 113, 77);
    profile.behaviors = {spfvuln::SpfBehavior::VulnerableLibspf2};
    profile.spf_timing = mta::SpfTiming::AfterData;
    profile.rejects_spf_fail = false;  // isolate the DMARC decision
    profile.checks_dmarc = checks_dmarc;
    return mta::MailHost(profile, server_, clock_);
  }

  scan::ProbeResult probe(mta::MailHost& host, const char* id) {
    scan::ProberConfig config;
    config.responder = responder_;
    net::Transport transport(clock_);
    scan::Prober prober(config, server_, transport);
    return prober.probe(host,
                        "target.example",
                        dns::Name::from_string(std::string(id) +
                                               ".t9.spf-test.dns-lab.org"),
                        scan::TestKind::BlankMsg);
  }

  dns::AuthoritativeServer server_;
  util::SimClock clock_;
  scan::TestResponderConfig responder_;
};

TEST_F(MtaDmarcFixture, ResponderPublishesRejectPolicy) {
  const dns::Message response = server_.handle(
      dns::Message::make_query(
          1, dns::Name::from_string("_dmarc.ab1cd.t9.spf-test.dns-lab.org"),
          dns::RRType::TXT),
      util::IpAddress::v4(9, 9, 9, 9), clock_.now());
  ASSERT_EQ(response.answers.size(), 1u);
  EXPECT_EQ(std::get<dns::TxtRdata>(response.answers[0].rdata).joined(),
            "v=DMARC1; p=reject");
}

TEST_F(MtaDmarcFixture, DmarcCheckerRejectsBlankProbe) {
  mta::MailHost host = make_host(/*checks_dmarc=*/true);
  const scan::ProbeResult result = probe(host, "idaa1");
  // The probe is rejected at end-of-DATA (never delivered) — yet the SPF
  // fingerprint was still measured first. This is exactly the paper's
  // minimally-intrusive design.
  EXPECT_EQ(result.status, scan::ProbeStatus::SpfMeasured);
  EXPECT_TRUE(result.vulnerable());
}

TEST_F(MtaDmarcFixture, NonCheckerAcceptsBlankProbe) {
  mta::MailHost host = make_host(/*checks_dmarc=*/false);
  const scan::ProbeResult result = probe(host, "idaa2");
  EXPECT_EQ(result.status, scan::ProbeStatus::SpfMeasured);
}

TEST_F(MtaDmarcFixture, DmarcQueriesDoNotPolluteTheFingerprint) {
  mta::MailHost host = make_host(/*checks_dmarc=*/true);
  const scan::ProbeResult result = probe(host, "idaa3");
  // The host queried _dmarc.<domain>; the classifier must not call that an
  // erroneous macro expansion.
  ASSERT_EQ(result.behaviors.size(), 1u);
  EXPECT_EQ(*result.behaviors.begin(), spfvuln::SpfBehavior::VulnerableLibspf2);

  bool saw_dmarc_query = false;
  for (const auto& entry : server_.query_log().entries()) {
    if (!entry.qname.labels().empty() &&
        entry.qname.labels().front() == "_dmarc") {
      saw_dmarc_query = true;
    }
  }
  EXPECT_TRUE(saw_dmarc_query);
}

}  // namespace
}  // namespace spfail
