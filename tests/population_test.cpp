#include <gtest/gtest.h>

#include <algorithm>

#include "population/fleet.hpp"
#include "population/geo.hpp"
#include "population/paper_constants.hpp"
#include "population/tld.hpp"

namespace spfail::population {
namespace {

// One shared small fleet for the whole file (construction is the expensive
// part; all assertions are read-only).
class FleetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    FleetConfig config;
    config.scale = 0.02;
    fleet_ = new Fleet(config);
  }
  static void TearDownTestSuite() {
    delete fleet_;
    fleet_ = nullptr;
  }
  static Fleet* fleet_;
};

Fleet* FleetTest::fleet_ = nullptr;

TEST_F(FleetTest, SetSizesScale) {
  std::size_t alexa = 0, mx = 0, alexa1000 = 0, overlap = 0;
  for (const auto& d : fleet_->domains()) {
    alexa += d.in_alexa;
    mx += d.in_mx;
    alexa1000 += d.in_alexa1000;
    overlap += d.in_alexa && d.in_mx;
  }
  EXPECT_NEAR(static_cast<double>(alexa), 0.02 * paper::kAlexaTopListDomains,
              0.02 * paper::kAlexaTopListDomains * 0.05);
  EXPECT_NEAR(static_cast<double>(mx), 0.02 * paper::kTwoWeekMxDomains,
              0.02 * paper::kTwoWeekMxDomains * 0.05);
  // Table 1 overlap: ~12.7% of the MX set is in the Alexa set.
  EXPECT_NEAR(static_cast<double>(overlap) / static_cast<double>(mx), 0.127,
              0.03);
  EXPECT_GE(alexa1000, 20u);  // scaled Top-1000 plus the named providers
}

TEST_F(FleetTest, FleetIncludesBothAddressFamilies) {
  std::size_t v4 = 0, v6 = 0;
  for (const auto& d : fleet_->domains()) {
    for (const auto& address : d.addresses) {
      (address.is_v4() ? v4 : v6) += 1;
    }
  }
  EXPECT_GT(v4, v6);  // v4-dominant, as in the paper's address set
  EXPECT_GT(v6, 0u);
}

TEST_F(FleetTest, AddressToDomainRatio) {
  // Table 3: ~175K addresses for ~419K Alexa domains, i.e. heavy sharing.
  const double ratio = static_cast<double>(fleet_->address_count()) /
                       static_cast<double>(fleet_->domains().size());
  EXPECT_GT(ratio, 0.30);
  EXPECT_LT(ratio, 0.60);
}

TEST_F(FleetTest, EveryDomainHasReachableMapping) {
  for (const auto& d : fleet_->domains()) {
    ASSERT_FALSE(d.addresses.empty()) << d.name;
    for (const auto& address : d.addresses) {
      // Every listed address has a host object (even if it refuses TCP).
      EXPECT_NE(fleet_->find_host(address), nullptr) << d.name;
    }
  }
}

TEST_F(FleetTest, AddressInfoConsistent) {
  for (const auto& d : fleet_->domains()) {
    for (const auto& address : d.addresses) {
      const AddressInfo& info = fleet_->info(address);
      EXPECT_GE(info.domains_hosted, 1u);
      if (d.in_alexa) EXPECT_TRUE(info.in_alexa_set);
      if (d.alexa_rank != 0 && info.best_rank != 0) {
        EXPECT_LE(info.best_rank, d.alexa_rank);
      }
    }
  }
}

TEST_F(FleetTest, TopProvidersPresentAndPinned) {
  std::size_t providers = 0;
  bool naver_vulnerable = false, gmail_vulnerable = true;
  for (const auto& d : fleet_->domains()) {
    if (!d.is_top_provider) continue;
    ++providers;
    EXPECT_TRUE(d.in_alexa1000) << d.name;
    bool vulnerable = false;
    for (const auto& address : d.addresses) {
      const auto* host = fleet_->find_host(address);
      ASSERT_NE(host, nullptr);
      vulnerable |= host->runs_vulnerable_engine();
    }
    if (d.name == "naver.com") naver_vulnerable = vulnerable;
    if (d.name == "gmail.com") gmail_vulnerable = vulnerable;
  }
  EXPECT_EQ(providers, 20u);  // Table 3's Top Email Providers column
  EXPECT_TRUE(naver_vulnerable);    // §7.5
  EXPECT_FALSE(gmail_vulnerable);   // §7.5: majors not susceptible
}

TEST_F(FleetTest, SharedProvidersShareAddresses) {
  const DomainRecord *mailru = nullptr, *vk = nullptr;
  for (const auto& d : fleet_->domains()) {
    if (d.name == "mail.ru") mailru = &d;
    if (d.name == "vk.com") vk = &d;
  }
  ASSERT_NE(mailru, nullptr);
  ASSERT_NE(vk, nullptr);
  EXPECT_TRUE(std::equal(mailru->addresses.begin(), mailru->addresses.end(),
                         vk->addresses.begin(), vk->addresses.end()));
}

TEST_F(FleetTest, GeoAssignedForEveryAddress) {
  std::size_t checked = 0;
  for (const auto& d : fleet_->domains()) {
    for (const auto& address : d.addresses) {
      const GeoPoint* point = fleet_->geo().lookup(address);
      ASSERT_NE(point, nullptr);
      EXPECT_GE(point->lat, -90.0);
      EXPECT_LE(point->lat, 90.0);
      EXPECT_FALSE(point->region.empty());
      if (++checked > 500) return;
    }
  }
}

TEST_F(FleetTest, TargetsFilterBySet) {
  const auto all = fleet_->targets(Fleet::SetFilter::All);
  const auto alexa = fleet_->targets(Fleet::SetFilter::AlexaTopList);
  const auto top1000 = fleet_->targets(Fleet::SetFilter::Alexa1000);
  const auto mx = fleet_->targets(Fleet::SetFilter::TwoWeekMx);
  EXPECT_EQ(all.size(), fleet_->domains().size());
  EXPECT_LT(top1000.size(), alexa.size());
  EXPECT_LT(mx.size(), all.size());
  EXPECT_GT(alexa.size() + mx.size(), all.size());  // overlap exists
}

TEST(FleetDeterminism, SameSeedSameFleet) {
  FleetConfig config;
  config.scale = 0.005;
  Fleet a(config), b(config);
  ASSERT_EQ(a.domains().size(), b.domains().size());
  for (std::size_t i = 0; i < a.domains().size(); ++i) {
    EXPECT_EQ(a.domains()[i].name, b.domains()[i].name);
    EXPECT_TRUE(std::equal(a.domains()[i].addresses.begin(),
                           a.domains()[i].addresses.end(),
                           b.domains()[i].addresses.begin(),
                           b.domains()[i].addresses.end()));
  }
}

TEST(FleetDeterminism, DifferentSeedDifferentFleet) {
  FleetConfig a_config, b_config;
  a_config.scale = b_config.scale = 0.005;
  b_config.seed = a_config.seed + 1;
  Fleet a(a_config), b(b_config);
  // Same counts, different draw outcomes.
  std::size_t differences = 0;
  const std::size_t n = std::min(a.domains().size(), b.domains().size());
  for (std::size_t i = 0; i < n; ++i) {
    differences += a.domains()[i].tld != b.domains()[i].tld;
  }
  EXPECT_GT(differences, 0u);
}

// ---------------------------------------------------------------- TLD table

TEST(TldTable, Table5RatesPresent) {
  EXPECT_DOUBLE_EQ(find_tld("za")->patch_rate, 0.79);
  EXPECT_DOUBLE_EQ(find_tld("gr")->patch_rate, 0.75);
  EXPECT_DOUBLE_EQ(find_tld("de")->patch_rate, 0.46);
  EXPECT_DOUBLE_EQ(find_tld("tw")->patch_rate, 0.00);
  EXPECT_DOUBLE_EQ(find_tld("ru")->patch_rate, 0.02);
  EXPECT_FALSE(find_tld("nonexistent-tld").has_value());
}

TEST(TldTable, Table2CountsPresent) {
  EXPECT_EQ(find_tld("com")->alexa_count, 230801u);
  EXPECT_EQ(find_tld("com")->mx_count, 11182u);
  EXPECT_EQ(find_tld("edu")->mx_count, 2108u);
}

TEST(TldTable, HighRiskTldsAreAboveBaseline) {
  EXPECT_GT(find_tld("ir")->vulnerability_multiplier, 1.5);
  EXPECT_GT(find_tld("ru")->vulnerability_multiplier, 1.5);
  EXPECT_LT(find_tld("com")->vulnerability_multiplier, 1.0);
}

// ---------------------------------------------------------------- GeoDb

TEST(Geo, DeterministicPerAddress) {
  GeoDb geo(util::Rng(1));
  const auto address = util::IpAddress::v4(10, 0, 0, 1);
  const GeoPoint first = geo.assign(address, "de");
  const GeoPoint second = geo.assign(address, "de");
  EXPECT_DOUBLE_EQ(first.lat, second.lat);
  EXPECT_DOUBLE_EQ(first.lon, second.lon);
}

TEST(Geo, CountryTldsAnchorNearCountry) {
  GeoDb geo(util::Rng(2));
  for (int i = 0; i < 20; ++i) {
    const auto point =
        geo.assign(util::IpAddress::v4(10, 0, 1, static_cast<uint8_t>(i)), "za");
    EXPECT_NEAR(point.lat, -29.1, 5.0);
    EXPECT_NEAR(point.lon, 26.2, 5.0);
  }
}

TEST(Geo, GenericTldsScatter) {
  GeoDb geo(util::Rng(3));
  std::set<std::string> regions;
  for (int i = 0; i < 200; ++i) {
    regions.insert(
        geo.assign(util::IpAddress::v4(10, 0, 2, static_cast<uint8_t>(i)), "com")
            .region);
  }
  EXPECT_GE(regions.size(), 3u);
}

TEST(Geo, BucketingIsStable) {
  const GeoPoint point{52.5, 13.4, "europe"};
  EXPECT_EQ(bucket_of(point), bucket_of(point));
  const GeoPoint far{-33.9, 151.2, "oceania"};
  EXPECT_NE(bucket_of(point), bucket_of(far));
}

}  // namespace
}  // namespace spfail::population
