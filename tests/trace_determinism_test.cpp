// The transport layer's determinism contract (DESIGN.md §10):
//
//   * golden trace — with `--trace` attached, the JSONL frame stream is
//     bit-identical at any thread count for a fixed seed (lane ids are
//     master-order label slots and frame times are lane-anchor-relative, so
//     no schedule detail can leak into the file);
//   * fault equivalence — attaching a trace changes nothing about a scan's
//     outcomes, even with the fault layer live;
//   * trace-off byte identity — a scan without a trace renders the exact
//     same report bytes as before the transport refactor (golden digest
//     captured from the pre-refactor tree).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "net/trace_stats.hpp"
#include "population/fleet.hpp"
#include "report/tables.hpp"
#include "scan/campaign.hpp"
#include "util/rng.hpp"

namespace spfail {
namespace {

struct TracedRun {
  std::string jsonl;     // the --trace file's bytes
  std::string outcomes;  // per-address verdicts + degradation counters
  util::SimTime clock = 0;

  friend bool operator==(const TracedRun&, const TracedRun&) = default;
};

TracedRun run_campaign(int threads, double fault_rate, bool tracing) {
  population::FleetConfig fleet_config;
  fleet_config.scale = 0.02;
  fleet_config.seed = 7;
  population::Fleet fleet(fleet_config);

  net::WireTrace trace;
  scan::CampaignConfig config;
  config.prober.responder = fleet.responder();
  config.threads = threads;
  config.faults.rate = fault_rate;
  config.faults.seed = 99;
  if (tracing) config.trace = &trace;
  scan::Campaign campaign(config, fleet.dns(), fleet.clock(), fleet);
  const scan::CampaignReport report = campaign.run(fleet.targets());

  TracedRun run;
  std::ostringstream jsonl;
  trace.write_jsonl(jsonl);
  run.jsonl = jsonl.str();
  std::ostringstream outcomes;
  const faults::DegradationReport& deg = report.degradation;
  outcomes << "pa=" << deg.probe_attempts << " r=" << deg.retries
           << " inj=" << deg.injected_total() << " c=" << deg.conclusive
           << "\n";
  for (const scan::AddressOutcome* outcome : report.sorted_outcomes()) {
    outcomes << outcome->address.to_string() << " v="
             << to_string(outcome->verdict)
             << " pa=" << outcome->probe_attempts << "\n";
  }
  run.outcomes = outcomes.str();
  run.clock = fleet.clock().now();
  return run;
}

TEST(TraceDeterminism, JsonlBitIdenticalAcrossThreadCounts) {
  const TracedRun serial = run_campaign(1, /*fault_rate=*/0.0, true);
  EXPECT_FALSE(serial.jsonl.empty());
  EXPECT_EQ(serial.jsonl.find("\"injected\":true"), std::string::npos);
  EXPECT_EQ(serial, run_campaign(4, 0.0, true));
  EXPECT_EQ(serial, run_campaign(8, 0.0, true));
}

TEST(TraceDeterminism, FaultedJsonlBitIdenticalAcrossThreadCounts) {
  const TracedRun serial = run_campaign(2, /*fault_rate=*/0.10, true);
  // The fault layer's synthesised frames are part of the golden stream.
  EXPECT_NE(serial.jsonl.find("\"injected\":true"), std::string::npos);
  EXPECT_EQ(serial, run_campaign(7, 0.10, true));
}

TEST(TraceDeterminism, TracingDoesNotChangeOutcomes) {
  const TracedRun off = run_campaign(3, /*fault_rate=*/0.10, false);
  const TracedRun on = run_campaign(3, 0.10, true);
  EXPECT_TRUE(off.jsonl.empty());
  EXPECT_EQ(off.outcomes, on.outcomes);
  EXPECT_EQ(off.clock, on.clock);
  // And the trace really carried the whole dialog.
  EXPECT_FALSE(on.jsonl.empty());
}

TEST(TraceDeterminism, TraceOffReportMatchesPreRefactorGoldenDigest) {
  // fnv1a of table3+table4+table7 rendered from a scale-0.01, seed-2021
  // initial campaign, captured on the tree before the transport layer
  // existed. If this digest moves, the refactor changed observable scan
  // behaviour — exactly what the trace-off byte-identity guarantee forbids.
  constexpr std::uint64_t kGoldenDigest = 17914362873369745797ULL;
  constexpr std::size_t kGoldenLength = 3130;
  for (const int threads : {1, 8}) {
    population::FleetConfig fleet_config;
    fleet_config.scale = 0.01;
    fleet_config.seed = 2021;
    population::Fleet fleet(fleet_config);

    scan::CampaignConfig config;
    config.prober.responder = fleet.responder();
    config.threads = threads;
    scan::Campaign campaign(config, fleet.dns(), fleet.clock(), fleet);
    const scan::CampaignReport report = campaign.run(fleet.targets());

    const std::string text = report::table3_outcomes(fleet, report).render() +
                             report::table4_breakdown(fleet, report).render() +
                             report::table7_behaviors(fleet, report).render();
    EXPECT_EQ(text.size(), kGoldenLength) << "threads=" << threads;
    EXPECT_EQ(util::fnv1a(text), kGoldenDigest) << "threads=" << threads;
  }
}

TEST(TraceDeterminism, SummaryStatsCoverEveryFrame) {
  population::FleetConfig fleet_config;
  fleet_config.scale = 0.02;
  fleet_config.seed = 7;
  population::Fleet fleet(fleet_config);

  net::WireTrace trace;
  scan::CampaignConfig config;
  config.prober.responder = fleet.responder();
  config.threads = 3;
  config.faults.rate = 0.10;
  config.faults.seed = 99;
  config.trace = &trace;
  scan::Campaign campaign(config, fleet.dns(), fleet.clock(), fleet);
  campaign.run(fleet.targets());

  const net::TraceStats stats = net::TraceStats::from(trace);
  EXPECT_EQ(stats.frames, trace.size());
  EXPECT_EQ(stats.frames, stats.smtp_commands + stats.smtp_replies +
                              stats.dns_queries + stats.dns_responses);
  EXPECT_EQ(stats.dns_queries, stats.dns_responses);  // every query answered
  EXPECT_GT(stats.injected, 0u);  // the 10% fault layer left wire marks
  EXPECT_GT(stats.lanes, 1u);     // one lane per probe label slot
  EXPECT_GT(stats.smtp_verbs.count("MAIL"), 0u);
  // The summary table renders without touching the campaign again.
  EXPECT_FALSE(report::trace_summary(stats).render().empty());
}

}  // namespace
}  // namespace spfail
