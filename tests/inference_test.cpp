#include <gtest/gtest.h>

#include "longitudinal/inference.hpp"

namespace spfail::longitudinal {
namespace {

constexpr auto V = Observation::Vulnerable;
constexpr auto C = Observation::Compliant;
constexpr auto I = Observation::Inconclusive;

TEST(Inference, AllMeasuredPassThrough) {
  const auto states = infer({V, V, C, C});
  EXPECT_EQ(states[0], InferredState::MeasuredVulnerable);
  EXPECT_EQ(states[1], InferredState::MeasuredVulnerable);
  EXPECT_EQ(states[2], InferredState::MeasuredPatched);
  EXPECT_EQ(states[3], InferredState::MeasuredPatched);
}

TEST(Inference, Rule1BackfillsVulnerable) {
  // Measured vulnerable at round 2 -> rounds 0..1 inferred vulnerable.
  const auto states = infer({I, I, V, I});
  EXPECT_EQ(states[0], InferredState::InferredVulnerable);
  EXPECT_EQ(states[1], InferredState::InferredVulnerable);
  EXPECT_EQ(states[2], InferredState::MeasuredVulnerable);
  EXPECT_EQ(states[3], InferredState::Unknown);  // no forward inference
}

TEST(Inference, Rule2ForwardFillsPatched) {
  const auto states = infer({I, C, I, I});
  EXPECT_EQ(states[0], InferredState::Unknown);  // no backward inference
  EXPECT_EQ(states[1], InferredState::MeasuredPatched);
  EXPECT_EQ(states[2], InferredState::InferredPatched);
  EXPECT_EQ(states[3], InferredState::InferredPatched);
}

TEST(Inference, GapBetweenVulnerableAndPatched) {
  // V I I C: the gap is bounded by both rules; rule 1 fills up to the last
  // vulnerable (index 0), rule 2 fills after the first patched (index 3).
  const auto states = infer({V, I, I, C});
  EXPECT_EQ(states[0], InferredState::MeasuredVulnerable);
  EXPECT_EQ(states[1], InferredState::Unknown);
  EXPECT_EQ(states[2], InferredState::Unknown);
  EXPECT_EQ(states[3], InferredState::MeasuredPatched);
}

TEST(Inference, InterleavedGapInsideVulnerableSpan) {
  const auto states = infer({V, I, V, I});
  EXPECT_EQ(states[1], InferredState::InferredVulnerable);
  EXPECT_EQ(states[3], InferredState::Unknown);
}

TEST(Inference, AllInconclusiveStaysUnknown) {
  for (const auto state : infer({I, I, I})) {
    EXPECT_EQ(state, InferredState::Unknown);
  }
}

TEST(Inference, EmptySeries) { EXPECT_TRUE(infer({}).empty()); }

TEST(Inference, SingleObservation) {
  EXPECT_EQ(infer({V})[0], InferredState::MeasuredVulnerable);
  EXPECT_EQ(infer({C})[0], InferredState::MeasuredPatched);
  EXPECT_EQ(infer({I})[0], InferredState::Unknown);
}

// Property: inference never relabels a direct measurement, and the count of
// inferable rounds is monotone in the information added.
class InferenceProperty : public ::testing::TestWithParam<int> {};

TEST_P(InferenceProperty, MeasurementsPreservedAndSpansConsistent) {
  // Build a pseudo-random series from the parameter.
  std::vector<Observation> series;
  unsigned x = static_cast<unsigned>(GetParam()) * 2654435761u + 1;
  bool patched = false;
  for (int i = 0; i < 12; ++i) {
    x = x * 1664525u + 1013904223u;
    switch ((x >> 16) % 3) {
      case 0:
        series.push_back(I);
        break;
      case 1:
        series.push_back(patched ? C : V);
        break;
      default:
        patched = true;  // the host patches at a random point, no regression
        series.push_back(C);
        break;
    }
  }
  const auto states = infer(series);
  ASSERT_EQ(states.size(), series.size());
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (series[i] == V) {
      EXPECT_EQ(states[i], InferredState::MeasuredVulnerable);
    }
    if (series[i] == C) {
      EXPECT_EQ(states[i], InferredState::MeasuredPatched);
    }
  }
  // No vulnerable state may appear after a patched state (monotonicity).
  bool saw_patched = false;
  for (const auto state : states) {
    if (is_patched(state)) saw_patched = true;
    if (saw_patched) EXPECT_FALSE(is_vulnerable(state));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InferenceProperty, ::testing::Range(0, 25));

TEST(InferenceTable, CountsAggregate) {
  InferenceTable table;
  table.set_series(util::IpAddress::v4(1, 1, 1, 1), {V, V, C});
  table.set_series(util::IpAddress::v4(2, 2, 2, 2), {I, V, I});
  table.set_series(util::IpAddress::v4(3, 3, 3, 3), {I, I, I});

  const auto round0 = table.counts_at(0);
  EXPECT_EQ(round0.measured_vulnerable, 1u);
  EXPECT_EQ(round0.inferred_vulnerable, 1u);  // rule 1 on address 2
  EXPECT_EQ(round0.unknown, 1u);
  EXPECT_EQ(round0.vulnerable(), 2u);

  const auto round2 = table.counts_at(2);
  EXPECT_EQ(round2.measured_patched, 1u);
  EXPECT_EQ(round2.unknown, 2u);
  EXPECT_EQ(round2.inferable(), 1u);
}

TEST(InferenceTable, RejectsMismatchedRounds) {
  InferenceTable table;
  table.set_series(util::IpAddress::v4(1, 1, 1, 1), {V, V});
  EXPECT_THROW(table.set_series(util::IpAddress::v4(2, 2, 2, 2), {V}),
               std::invalid_argument);
}

}  // namespace
}  // namespace spfail::longitudinal
