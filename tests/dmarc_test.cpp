#include <gtest/gtest.h>

#include "dmarc/discovery.hpp"
#include "dmarc/record.hpp"
#include "dns/server.hpp"
#include "dns/zonefile.hpp"

namespace spfail::dmarc {
namespace {

// ------------------------------------------------------------ record parse

TEST(DmarcParse, LooksLikeDmarc) {
  EXPECT_TRUE(looks_like_dmarc("v=DMARC1; p=reject"));
  EXPECT_TRUE(looks_like_dmarc("v=DMARC1"));
  EXPECT_FALSE(looks_like_dmarc("v=DMARC10; p=reject"));
  EXPECT_FALSE(looks_like_dmarc("v=spf1 -all"));
}

TEST(DmarcParse, MinimalReject) {
  const Record r = parse_record("v=DMARC1; p=reject");
  EXPECT_EQ(r.policy, Policy::Reject);
  EXPECT_EQ(r.percent, 100);
  EXPECT_EQ(r.spf_alignment, Alignment::Relaxed);
  EXPECT_FALSE(r.subdomain_policy.has_value());
}

TEST(DmarcParse, FullRecord) {
  const Record r = parse_record(
      "v=DMARC1; p=quarantine; sp=none; aspf=s; adkim=r; pct=42; "
      "rua=mailto:agg@example.com; ruf=mailto:fail@example.com");
  EXPECT_EQ(r.policy, Policy::Quarantine);
  ASSERT_TRUE(r.subdomain_policy.has_value());
  EXPECT_EQ(*r.subdomain_policy, Policy::None);
  EXPECT_EQ(r.spf_alignment, Alignment::Strict);
  EXPECT_EQ(r.percent, 42);
  EXPECT_EQ(r.rua, "mailto:agg@example.com");
}

TEST(DmarcParse, WhitespaceTolerant) {
  const Record r = parse_record("v=DMARC1;  p = reject ;pct=50");
  EXPECT_EQ(r.policy, Policy::Reject);
  EXPECT_EQ(r.percent, 50);
}

TEST(DmarcParse, UnknownTagsIgnored) {
  const Record r = parse_record("v=DMARC1; p=none; fo=1; ri=86400");
  EXPECT_EQ(r.policy, Policy::None);
}

TEST(DmarcParse, Errors) {
  EXPECT_THROW(parse_record("p=reject"), RecordSyntaxError);
  EXPECT_THROW(parse_record("v=DMARC1"), RecordSyntaxError);  // missing p
  EXPECT_THROW(parse_record("v=DMARC1; p=bogus"), RecordSyntaxError);
  EXPECT_THROW(parse_record("v=DMARC1; p=reject; pct=101"), RecordSyntaxError);
  EXPECT_THROW(parse_record("v=DMARC1; p=reject; aspf=x"), RecordSyntaxError);
  EXPECT_THROW(parse_record("v=DMARC1; junk; p=reject"), RecordSyntaxError);
}

TEST(DmarcParse, RoundTripThroughText) {
  const Record original = parse_record(
      "v=DMARC1; p=reject; sp=quarantine; aspf=s; pct=10; rua=mailto:x@y.z");
  EXPECT_EQ(parse_record(to_text(original)), original);
}

TEST(DmarcParse, SubdomainPolicyDefaultsToPolicy) {
  EXPECT_EQ(parse_record("v=DMARC1; p=reject").effective_subdomain_policy(),
            Policy::Reject);
  EXPECT_EQ(parse_record("v=DMARC1; p=reject; sp=none")
                .effective_subdomain_policy(),
            Policy::None);
}

// ------------------------------------------------------------ org domain

TEST(OrgDomain, SimpleTld) {
  EXPECT_EQ(organizational_domain(dns::Name::from_string("a.b.example.com")),
            dns::Name::from_string("example.com"));
  EXPECT_EQ(organizational_domain(dns::Name::from_string("example.com")),
            dns::Name::from_string("example.com"));
}

TEST(OrgDomain, TwoLevelPublicSuffix) {
  EXPECT_EQ(organizational_domain(dns::Name::from_string("mail.shop.co.uk")),
            dns::Name::from_string("shop.co.uk"));
  EXPECT_EQ(organizational_domain(dns::Name::from_string("x.y.bank.co.za")),
            dns::Name::from_string("bank.co.za"));
}

TEST(OrgDomain, AlreadyOrganizational) {
  EXPECT_EQ(organizational_domain(dns::Name::from_string("shop.co.uk")),
            dns::Name::from_string("shop.co.uk"));
}

// ------------------------------------------------------------ alignment

TEST(Alignment, StrictRequiresEquality) {
  EXPECT_TRUE(aligned(dns::Name::from_string("example.com"),
                      dns::Name::from_string("example.com"),
                      Alignment::Strict));
  EXPECT_FALSE(aligned(dns::Name::from_string("mail.example.com"),
                       dns::Name::from_string("example.com"),
                       Alignment::Strict));
}

TEST(Alignment, RelaxedUsesOrgDomain) {
  EXPECT_TRUE(aligned(dns::Name::from_string("mail.example.com"),
                      dns::Name::from_string("example.com"),
                      Alignment::Relaxed));
  EXPECT_FALSE(aligned(dns::Name::from_string("other.org"),
                       dns::Name::from_string("example.com"),
                       Alignment::Relaxed));
}

// ------------------------------------------------------------ discovery

class DiscoveryFixture : public ::testing::Test {
 protected:
  DiscoveryFixture()
      : resolver_(server_, clock_, util::IpAddress::v4(10, 0, 0, 1)) {
    server_.add_zone(dns::parse_zone_text(R"(
$ORIGIN example.com.
_dmarc       IN TXT "v=DMARC1; p=reject; sp=quarantine"
)",
                                          dns::Name::from_string("example.com")));
  }
  dns::AuthoritativeServer server_;
  util::SimClock clock_;
  dns::StubResolver resolver_;
};

TEST_F(DiscoveryFixture, DirectRecord) {
  const auto result = discover(resolver_, dns::Name::from_string("example.com"));
  ASSERT_TRUE(result.record.has_value());
  EXPECT_EQ(result.record->policy, Policy::Reject);
  EXPECT_FALSE(result.from_organizational_fallback);
  EXPECT_EQ(result.source.to_string(), "_dmarc.example.com");
}

TEST_F(DiscoveryFixture, OrganizationalFallback) {
  const auto result =
      discover(resolver_, dns::Name::from_string("deep.sub.example.com"));
  ASSERT_TRUE(result.record.has_value());
  EXPECT_TRUE(result.from_organizational_fallback);
}

TEST_F(DiscoveryFixture, NoRecordAnywhere) {
  const auto result = discover(resolver_, dns::Name::from_string("other.org"));
  EXPECT_FALSE(result.record.has_value());
}

// ------------------------------------------------------------ disposition

TEST(Disposition, NoRecordDelivers) {
  DiscoveryResult none;
  EXPECT_EQ(disposition_for(none, spf::Result::Fail,
                            dns::Name::from_string("x.com"),
                            dns::Name::from_string("x.com")),
            Disposition::Deliver);
}

TEST(Disposition, AlignedSpfPassDelivers) {
  DiscoveryResult discovery;
  discovery.record = parse_record("v=DMARC1; p=reject");
  EXPECT_EQ(disposition_for(discovery, spf::Result::Pass,
                            dns::Name::from_string("mail.example.com"),
                            dns::Name::from_string("example.com")),
            Disposition::Deliver);
}

TEST(Disposition, UnalignedPassTriggersPolicy) {
  DiscoveryResult discovery;
  discovery.record = parse_record("v=DMARC1; p=reject");
  EXPECT_EQ(disposition_for(discovery, spf::Result::Pass,
                            dns::Name::from_string("unrelated.org"),
                            dns::Name::from_string("example.com")),
            Disposition::Reject);
}

TEST(Disposition, FailTriggersPolicy) {
  DiscoveryResult discovery;
  discovery.record = parse_record("v=DMARC1; p=quarantine");
  EXPECT_EQ(disposition_for(discovery, spf::Result::Fail,
                            dns::Name::from_string("example.com"),
                            dns::Name::from_string("example.com")),
            Disposition::Quarantine);
}

TEST(Disposition, SubdomainPolicyAppliesOnFallback) {
  DiscoveryResult discovery;
  discovery.record = parse_record("v=DMARC1; p=reject; sp=none");
  discovery.from_organizational_fallback = true;
  EXPECT_EQ(disposition_for(discovery, spf::Result::Fail,
                            dns::Name::from_string("sub.example.com"),
                            dns::Name::from_string("sub.example.com")),
            Disposition::Deliver);
}

TEST(Disposition, StrictAlignmentBlocksSubdomainPass) {
  DiscoveryResult discovery;
  discovery.record = parse_record("v=DMARC1; p=reject; aspf=s");
  EXPECT_EQ(disposition_for(discovery, spf::Result::Pass,
                            dns::Name::from_string("mail.example.com"),
                            dns::Name::from_string("example.com")),
            Disposition::Reject);
}

}  // namespace
}  // namespace spfail::dmarc
