// Tests for the "p" (validated domain) macro, which requires its own
// PTR-plus-forward-confirmation resolution during evaluation.
#include <gtest/gtest.h>

#include "dns/resolver.hpp"
#include "dns/server.hpp"
#include "dns/zonefile.hpp"
#include "spf/eval.hpp"

namespace spfail::spf {
namespace {

class PMacroFixture : public ::testing::Test {
 protected:
  PMacroFixture()
      : resolver_(server_, clock_, util::IpAddress::v4(10, 0, 0, 53)) {}

  void add_zone_text(const char* origin, const char* text) {
    server_.add_zone(
        dns::parse_zone_text(text, dns::Name::from_string(origin)));
  }

  CheckOutcome check(const char* client_ip) {
    Rfc7208Expander expander;
    Evaluator evaluator(resolver_, expander);
    CheckRequest request;
    request.sender_local = "user";
    request.sender_domain = dns::Name::from_string("example.com");
    request.client_ip = *util::IpAddress::parse(client_ip);
    return evaluator.check_host(request);
  }

  dns::AuthoritativeServer server_;
  util::SimClock clock_;
  dns::StubResolver resolver_;
};

TEST_F(PMacroFixture, ValidatedDomainUsedInExistsMechanism) {
  add_zone_text("example.com", R"(
$ORIGIN example.com.
@ IN TXT "v=spf1 exists:%{p}.ok.example.com -all"
; the exists target that should be hit when p validates to mail.example.com
mail.example.com.ok IN A 127.0.0.2
mail IN A 203.0.113.7
)");
  add_zone_text("113.0.203.in-addr.arpa", R"(
$ORIGIN 113.0.203.in-addr.arpa.
7 IN PTR mail.example.com.
)");
  EXPECT_EQ(check("203.0.113.7").result, Result::Pass);
}

TEST_F(PMacroFixture, UnvalidatablePBecomesUnknown) {
  add_zone_text("example.com", R"(
$ORIGIN example.com.
@ IN TXT "v=spf1 exists:%{p}.ok.example.com -all"
unknown.ok IN A 127.0.0.2
)");
  // No PTR zone at all: p expands to "unknown" and (here) still matches the
  // deliberately published unknown.ok record.
  EXPECT_EQ(check("203.0.113.9").result, Result::Pass);
}

TEST_F(PMacroFixture, ForwardConfirmationRequired) {
  add_zone_text("example.com", R"(
$ORIGIN example.com.
@ IN TXT "v=spf1 exists:%{p}.ok.example.com -all"
liar.ok IN A 127.0.0.2
unknown.ok IN A 127.0.0.3
)");
  add_zone_text("113.0.203.in-addr.arpa", R"(
$ORIGIN 113.0.203.in-addr.arpa.
7 IN PTR liar.example.com.
)");
  // liar.example.com has no A record confirming 203.0.113.7, so the PTR name
  // must NOT be used; p falls back to "unknown" — which is published, so the
  // check still passes via unknown.ok (proving the fallback path ran).
  EXPECT_EQ(check("203.0.113.7").result, Result::Pass);
}

}  // namespace
}  // namespace spfail::spf
