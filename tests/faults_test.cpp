// Unit tests for the deterministic fault-injection layer: the pure FaultPlan,
// the retry/backoff engine, degradation accounting, and the DNS-side
// injection points (the transport's exchange_with_faults, the caching
// forwarder, the recursive resolver). Suite names match the `asan_faults`
// ctest filter.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <set>

#include "dns/forwarder.hpp"
#include "dns/recursive.hpp"
#include "dns/server.hpp"
#include "dns/zonefile.hpp"
#include "net/transport.hpp"
#include "faults/degradation.hpp"
#include "faults/fault.hpp"
#include "faults/retry.hpp"
#include "util/rng.hpp"

namespace spfail::faults {
namespace {

using util::IpAddress;

// ------------------------------------------------------------- FaultPlan

TEST(FaultPlan, DisabledPlanNeverFaults) {
  const FaultPlan plan;  // default config: rate 0
  EXPECT_FALSE(plan.enabled());
  const IpAddress address = IpAddress::v4(198, 51, 100, 1);
  for (std::uint64_t attempt = 0; attempt < 64; ++attempt) {
    EXPECT_EQ(plan.probe_decision(address, 0, attempt).kind, FaultKind::None);
    EXPECT_EQ(plan.dns_decision(0xBEEF, 16, attempt).kind, FaultKind::None);
  }
}

TEST(FaultPlan, RateOneAlwaysFaultsWithTheRightKinds) {
  FaultConfig config;
  config.rate = 1.0;
  const FaultPlan plan(config);
  ASSERT_TRUE(plan.enabled());
  for (std::uint64_t attempt = 0; attempt < 256; ++attempt) {
    const FaultDecision probe =
        plan.probe_decision(IpAddress::v4(203, 0, 113, 5), 1, attempt);
    ASSERT_TRUE(probe.active());
    EXPECT_TRUE(probe.kind == FaultKind::SmtpTempfail ||
                probe.kind == FaultKind::ConnectionDrop ||
                probe.kind == FaultKind::LatencySpike)
        << to_string(probe.kind);
    const FaultDecision dns = plan.dns_decision(0xD15EA5E, 16, attempt);
    ASSERT_TRUE(dns.active());
    EXPECT_TRUE(dns.kind == FaultKind::DnsServfail ||
                dns.kind == FaultKind::DnsTimeout ||
                dns.kind == FaultKind::LameDelegation)
        << to_string(dns.kind);
  }
}

TEST(FaultPlan, DecisionsArePureFunctionsOfTheKey) {
  FaultConfig config;
  config.rate = 0.5;
  const FaultPlan plan(config);
  const FaultPlan twin(config);
  const IpAddress address = IpAddress::v4(192, 0, 2, 77);
  for (std::uint64_t attempt = 0; attempt < 128; ++attempt) {
    const FaultDecision first = plan.probe_decision(address, 3, attempt);
    // Re-asking the same plan, or an identically configured one, in any
    // order, gives the identical decision: no hidden stream state.
    const FaultDecision again = plan.probe_decision(address, 3, attempt);
    const FaultDecision other = twin.probe_decision(address, 3, attempt);
    EXPECT_EQ(first.kind, again.kind);
    EXPECT_EQ(first.stage, other.stage);
    EXPECT_EQ(first.smtp_code, again.smtp_code);
    EXPECT_EQ(first.latency, other.latency);
  }
}

TEST(FaultPlan, DifferentSeedsGiveDifferentPlans) {
  FaultConfig a, b;
  a.rate = b.rate = 0.5;
  a.seed = 1;
  b.seed = 2;
  const FaultPlan plan_a(a), plan_b(b);
  int differing = 0;
  for (std::uint64_t attempt = 0; attempt < 128; ++attempt) {
    const IpAddress address = IpAddress::v4(10, 0, 0, 9);
    if (plan_a.probe_decision(address, 0, attempt).kind !=
        plan_b.probe_decision(address, 0, attempt).kind) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultPlan, EmpiricalRateTracksConfiguredRate) {
  FaultConfig config;
  config.rate = 0.3;
  const FaultPlan plan(config);
  int faulted = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const IpAddress address =
        IpAddress::v4(10, 1, static_cast<std::uint8_t>(i >> 8),
                      static_cast<std::uint8_t>(i));
    faulted += plan.probe_decision(address, 0, 0).active();
  }
  const double observed = static_cast<double>(faulted) / n;
  EXPECT_NEAR(observed, config.rate, 0.03);
}

TEST(FaultPlan, SmtpShapesAreWellFormed) {
  FaultConfig config;
  config.rate = 1.0;
  const FaultPlan plan(config);
  std::set<int> codes;
  std::set<SmtpStage> stages;
  bool saw_latency = false;
  for (std::uint64_t attempt = 0; attempt < 512; ++attempt) {
    const FaultDecision d =
        plan.probe_decision(IpAddress::v4(198, 18, 0, 1), 0, attempt);
    switch (d.kind) {
      case FaultKind::SmtpTempfail:
        EXPECT_TRUE(d.smtp_code == 421 || d.smtp_code == 451 ||
                    d.smtp_code == 452)
            << d.smtp_code;
        codes.insert(d.smtp_code);
        stages.insert(d.stage);
        EXPECT_TRUE(d.fails_probe());
        break;
      case FaultKind::ConnectionDrop:
        stages.insert(d.stage);
        EXPECT_TRUE(d.fails_probe());
        break;
      case FaultKind::LatencySpike:
        EXPECT_GE(d.latency, 2);
        EXPECT_LE(d.latency, 120);
        EXPECT_FALSE(d.fails_probe());
        saw_latency = true;
        break;
      default:
        FAIL() << "unexpected kind " << to_string(d.kind);
    }
  }
  // Over 512 draws at rate 1, every code, every stage, and the slow path
  // all show up.
  EXPECT_EQ(codes.size(), 3u);
  EXPECT_EQ(stages.size(), 4u);
  EXPECT_TRUE(saw_latency);
}

TEST(FaultPlan, DnsShapesAreWellFormed) {
  FaultConfig config;
  config.rate = 1.0;
  const FaultPlan plan(config);
  std::set<FaultKind> kinds;
  for (std::uint64_t attempt = 0; attempt < 256; ++attempt) {
    const FaultDecision d = plan.dns_decision(0xFEED, 1, attempt);
    kinds.insert(d.kind);
    if (d.kind == FaultKind::DnsTimeout) {
      EXPECT_GE(d.latency, 3);
      EXPECT_LE(d.latency, 30);
    }
    EXPECT_FALSE(d.fails_probe());  // DNS faults never fail an SMTP dialog
  }
  EXPECT_EQ(kinds, (std::set<FaultKind>{FaultKind::DnsServfail,
                                        FaultKind::DnsTimeout,
                                        FaultKind::LameDelegation}));
}

// --------------------------------------------------------- FaultConfigEnv

TEST(FaultConfigEnv, DefaultsWhenUnset) {
  ::unsetenv("SPFAIL_FAULT_SEED");
  ::unsetenv("SPFAIL_FAULT_RATE");
  const FaultConfig config = FaultConfig::from_env();
  EXPECT_EQ(config.seed, 0xFA171ULL);
  EXPECT_EQ(config.rate, 0.0);
}

TEST(FaultConfigEnv, ReadsSeedAndRate) {
  ::setenv("SPFAIL_FAULT_SEED", "12345", 1);
  ::setenv("SPFAIL_FAULT_RATE", "0.25", 1);
  const FaultConfig config = FaultConfig::from_env();
  EXPECT_EQ(config.seed, 12345u);
  EXPECT_DOUBLE_EQ(config.rate, 0.25);
  ::unsetenv("SPFAIL_FAULT_SEED");
  ::unsetenv("SPFAIL_FAULT_RATE");
}

TEST(FaultConfigEnv, ClampsRateIntoRange) {
  ::setenv("SPFAIL_FAULT_RATE", "7.5", 1);
  EXPECT_DOUBLE_EQ(FaultConfig::from_env().rate, 1.0);
  ::setenv("SPFAIL_FAULT_RATE", "-0.5", 1);
  EXPECT_DOUBLE_EQ(FaultConfig::from_env().rate, 0.0);
  ::setenv("SPFAIL_FAULT_RATE", "", 1);
  EXPECT_DOUBLE_EQ(FaultConfig::from_env().rate, 0.0);
  ::unsetenv("SPFAIL_FAULT_RATE");
}

// ----------------------------------------------------------- RetryPolicy

TEST(RetryPolicy, ZeroSentinelClampsToOneAttempt) {
  const RetryPolicy policy;  // default config: max_attempts = 0
  EXPECT_EQ(policy.max_attempts(), 1);
  EXPECT_FALSE(policy.allow_retry(1, 100));
}

TEST(RetryPolicy, AllowRetryRespectsAttemptsAndBudget) {
  RetryConfig config;
  config.max_attempts = 3;
  const RetryPolicy policy(config);
  EXPECT_TRUE(policy.allow_retry(1, 5));
  EXPECT_TRUE(policy.allow_retry(2, 5));
  EXPECT_FALSE(policy.allow_retry(3, 5));  // attempts exhausted
  EXPECT_FALSE(policy.allow_retry(1, 0));  // budget exhausted
}

TEST(RetryPolicy, BackoffGrowsExponentiallyAndClamps) {
  RetryConfig config;
  config.max_attempts = 8;
  config.base_backoff = 8 * util::kMinute;
  config.multiplier = 2.0;
  config.max_backoff = 64 * util::kMinute;
  config.jitter = 0.0;
  const RetryPolicy policy(config);
  EXPECT_EQ(policy.backoff(1u, 0, 0), 8 * util::kMinute);
  EXPECT_EQ(policy.backoff(1u, 0, 1), 16 * util::kMinute);
  EXPECT_EQ(policy.backoff(1u, 0, 2), 32 * util::kMinute);
  EXPECT_EQ(policy.backoff(1u, 0, 3), 64 * util::kMinute);
  EXPECT_EQ(policy.backoff(1u, 0, 4), 64 * util::kMinute);  // clamped
}

TEST(RetryPolicy, FlatPolicyMatchesTheLegacyGreylistSchedule) {
  // The campaign's zero-sentinel derivation: flat greylist backoff at every
  // retry index — the schedule probe_with_greylist_retry used to produce.
  RetryConfig config;
  config.max_attempts = 4;
  config.base_backoff = 8 * util::kMinute;
  config.multiplier = 1.0;
  config.max_backoff = 8 * util::kMinute;
  config.jitter = 0.0;
  const RetryPolicy policy(config);
  for (int index = 0; index < 6; ++index) {
    EXPECT_EQ(policy.backoff(IpAddress::v4(10, 0, 0, 1), 0, index),
              8 * util::kMinute);
  }
}

TEST(RetryPolicy, JitterIsBoundedAndDeterministicPerKey) {
  RetryConfig config;
  config.max_attempts = 4;
  config.base_backoff = 8 * util::kMinute;
  config.multiplier = 1.0;
  config.max_backoff = 8 * util::kMinute;
  config.jitter = 0.25;
  const RetryPolicy policy(config);
  const double base = 8 * util::kMinute;
  std::set<util::SimTime> seen;
  for (std::uint64_t key = 0; key < 32; ++key) {
    const util::SimTime wait = policy.backoff(key, 2, 1);
    EXPECT_GE(static_cast<double>(wait), base * 0.75 - 1);
    EXPECT_LE(static_cast<double>(wait), base * 1.25 + 1);
    EXPECT_EQ(wait, policy.backoff(key, 2, 1));  // same key, same wait
    seen.insert(wait);
  }
  EXPECT_GT(seen.size(), 1u);  // jitter actually varies across keys
}

TEST(RetryPolicy, BackoffNeverBelowOneSecond) {
  RetryConfig config;
  config.base_backoff = 0;
  config.max_backoff = 0;
  const RetryPolicy policy(config);
  EXPECT_EQ(policy.backoff(9u, 0, 0), 1);
}

TEST(RetryOutcomeStrings, RoundTrip) {
  EXPECT_EQ(to_string(RetryOutcome::FirstTry), "first-try");
  EXPECT_EQ(to_string(RetryOutcome::Recovered), "recovered");
  EXPECT_EQ(to_string(RetryOutcome::Exhausted), "exhausted");
}

// ----------------------------------------------------------- Degradation

TEST(Degradation, MergeSumsCountersAndAdoptsRate) {
  DegradationReport a;
  a.probe_attempts = 10;
  a.retries = 3;
  a.injected_tempfail = 2;
  a.injected_drop = 1;
  a.injected_latency = 1;
  a.injected_dns = 4;
  a.latency_injected = 55;
  a.transient_addresses = 3;
  a.recovered = 2;
  a.exhausted = 1;
  a.addresses_tested = 8;
  a.conclusive = 6;

  DegradationReport b;
  b.configured_rate = 0.1;
  b.probe_attempts = 5;
  b.retries = 1;
  b.injected_dns = 1;
  b.breaker_trips = 1;
  b.breaker_skipped = 2;
  b.requeued = 3;
  b.requeue_recovered = 2;
  b.addresses_tested = 4;
  b.conclusive = 2;

  a.merge(b);
  EXPECT_DOUBLE_EQ(a.configured_rate, 0.1);  // adopted from b
  EXPECT_EQ(a.probe_attempts, 15u);
  EXPECT_EQ(a.retries, 4u);
  EXPECT_EQ(a.injected_total(), 2u + 1u + 1u + 5u);
  EXPECT_EQ(a.latency_injected, 55);
  EXPECT_EQ(a.transient_addresses, 3u);
  EXPECT_EQ(a.breaker_trips, 1u);
  EXPECT_EQ(a.breaker_skipped, 2u);
  EXPECT_EQ(a.requeued, 3u);
  EXPECT_EQ(a.requeue_recovered, 2u);
  EXPECT_EQ(a.addresses_tested, 12u);
  EXPECT_EQ(a.conclusive, 8u);
  EXPECT_DOUBLE_EQ(a.conclusive_rate(), 8.0 / 12.0);
}

TEST(Degradation, ConclusiveRateOfEmptyReportIsZero) {
  const DegradationReport report;
  EXPECT_DOUBLE_EQ(report.conclusive_rate(), 0.0);
  EXPECT_EQ(report.injected_total(), 0u);
}

TEST(Degradation, TableRendersAllSections) {
  DegradationReport report;
  report.configured_rate = 0.1;
  report.addresses_tested = 10;
  report.conclusive = 9;
  std::ostringstream out;
  out << report.to_table();
  const std::string text = out.str();
  EXPECT_NE(text.find("Configured fault rate"), std::string::npos);
  EXPECT_NE(text.find("10.00%"), std::string::npos);
  EXPECT_NE(text.find("Conclusive rate"), std::string::npos);
  EXPECT_NE(text.find("90.00%"), std::string::npos);
}

}  // namespace
}  // namespace spfail::faults

// ----------------------------------------------- DNS-side injection points

namespace spfail::dns {
namespace {

using util::IpAddress;

AuthoritativeServer& example_zone(AuthoritativeServer& server) {
  server.add_zone(parse_zone_text(R"(
$ORIGIN example.com.
@    IN TXT "v=spf1 mx -all"
@    IN A   192.0.2.80
)",
                                  Name::from_string("example.com")));
  return server;
}

TEST(FaultDnsTransport, InjectsServfailAndCountsAttempts) {
  AuthoritativeServer server;
  example_zone(server);
  util::SimClock clock;
  faults::FaultConfig config;
  config.rate = 1.0;
  const faults::FaultPlan plan(config);
  net::Transport transport(clock);
  transport.set_fault_plan(&plan);
  const IpAddress client = IpAddress::v4(9, 9, 9, 9);
  const net::Endpoint src = net::Endpoint::ip(client);
  const net::Endpoint dst = net::Endpoint::named("authority");
  const Message query =
      Message::make_query(7, Name::from_string("example.com"), RRType::TXT);
  const Message first =
      transport.exchange_with_faults(server, query, src, dst, client);
  EXPECT_EQ(first.header.rcode, Rcode::ServFail);
  EXPECT_TRUE(first.answers.empty());
  EXPECT_EQ(transport.injected(), 1u);
  // The fault ate the query on the wire: the authority never saw it.
  EXPECT_TRUE(server.query_log().entries().empty());
  // The attempt counter advances per query, so retries draw fresh decisions
  // (at rate 1 they all fault, but they are distinct draws).
  transport.exchange_with_faults(server, query, src, dst, client);
  EXPECT_EQ(transport.injected(), 2u);
}

TEST(FaultDnsTransport, NoPlanPassesThrough) {
  AuthoritativeServer server;
  example_zone(server);
  util::SimClock clock;
  net::Transport transport(clock);
  const IpAddress client = IpAddress::v4(9, 9, 9, 9);
  const Message response = transport.exchange_with_faults(
      server, Message::make_query(8, Name::from_string("example.com"),
                                  RRType::A),
      net::Endpoint::ip(client), net::Endpoint::named("authority"), client);
  EXPECT_EQ(response.header.rcode, Rcode::NoError);
  ASSERT_EQ(response.answers.size(), 1u);
  EXPECT_EQ(transport.injected(), 0u);
}

TEST(FaultForwarder, FaultedAnswersAreNeverCached) {
  AuthoritativeServer server;
  example_zone(server);
  util::SimClock clock;
  CachingForwarder forwarder(server, clock);
  faults::FaultConfig config;
  config.rate = 1.0;
  const faults::FaultPlan plan(config);
  faults::RetryConfig retry;
  retry.max_attempts = 3;
  forwarder.inject_faults(&plan, retry);

  const Message query =
      Message::make_query(9, Name::from_string("example.com"), RRType::TXT);
  const Message faulted =
      forwarder.handle(query, IpAddress::v4(9, 9, 9, 9), clock.now());
  EXPECT_EQ(faulted.header.rcode, Rcode::ServFail);
  EXPECT_EQ(forwarder.injected_faults(), 3u);  // all attempts faulted
  EXPECT_EQ(forwarder.fault_retries(), 2u);
  EXPECT_EQ(forwarder.cache_hits(), 0u);

  // Detach the plan: the very same query now reaches the authority — the
  // SERVFAIL was never cached.
  forwarder.inject_faults(nullptr);
  const Message clean =
      forwarder.handle(query, IpAddress::v4(9, 9, 9, 9), clock.now());
  EXPECT_EQ(clean.header.rcode, Rcode::NoError);
  ASSERT_EQ(clean.answers.size(), 1u);
  // And a clean answer does cache.
  forwarder.handle(query, IpAddress::v4(9, 9, 9, 9), clock.now());
  EXPECT_EQ(forwarder.cache_hits(), 1u);
}

TEST(FaultRecursive, InjectedFaultsRetryAndSurfaceAsServfail) {
  // Minimal one-zone namespace: the root is authoritative for everything.
  AuthoritativeServer root;
  example_zone(root);
  NameServerRegistry registry;
  registry.add(Name::from_string("root-ns.example"), root);
  util::SimClock clock;
  RecursiveResolver resolver(registry, Name::from_string("root-ns.example"),
                             clock, IpAddress::v4(10, 9, 9, 9));

  faults::FaultConfig config;
  config.rate = 1.0;
  const faults::FaultPlan plan(config);
  faults::RetryConfig retry;
  retry.max_attempts = 3;
  resolver.inject_faults(&plan, retry);

  const ResolveResult result =
      resolver.resolve(Name::from_string("example.com"), RRType::TXT);
  EXPECT_FALSE(result.ok());
  const RecursiveStats& stats = resolver.stats();
  EXPECT_EQ(stats.retries, 2u);  // three attempts, all faulted
  EXPECT_EQ(stats.injected_servfail + stats.injected_timeouts +
                stats.injected_lame,
            3u);

  // Detach: the same query resolves (nothing bogus was cached), and the
  // fault counters stay put.
  resolver.inject_faults(nullptr);
  const ResolveResult clean =
      resolver.resolve(Name::from_string("example.com"), RRType::TXT);
  EXPECT_TRUE(clean.ok());
  EXPECT_EQ(resolver.stats().injected_servfail + stats.injected_timeouts +
                stats.injected_lame,
            3u);
}

}  // namespace
}  // namespace spfail::dns
