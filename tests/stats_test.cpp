#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "util/stats.hpp"

namespace spfail::util {
namespace {

TEST(Stats, Mean) {
  const std::array<double, 4> values = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(values), 2.5);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, Stddev) {
  const std::array<double, 4> values = {2, 4, 4, 6};
  EXPECT_NEAR(stddev(values), std::sqrt(2.0), 1e-12);
  const std::array<double, 1> single = {5};
  EXPECT_DOUBLE_EQ(stddev(single), 0.0);
}

TEST(Stats, Percentile) {
  const std::array<double, 5> values = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(values, 0.0), 10);
  EXPECT_DOUBLE_EQ(percentile(values, 1.0), 50);
  EXPECT_DOUBLE_EQ(percentile(values, 0.5), 30);
  EXPECT_DOUBLE_EQ(percentile(values, 0.25), 20);
  EXPECT_DOUBLE_EQ(median(values), 30);
}

TEST(Stats, PercentileInterpolates) {
  const std::array<double, 2> values = {0, 10};
  EXPECT_DOUBLE_EQ(percentile(values, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile(values, 0.75), 7.5);
}

TEST(Stats, PercentileUnsortedInput) {
  const std::array<double, 4> values = {40, 10, 30, 20};
  EXPECT_DOUBLE_EQ(median(values), 25.0);
}

TEST(Stats, PercentileEmptyThrows) {
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
}

TEST(Stats, SparklineShape) {
  const std::array<double, 4> rising = {0, 1, 2, 3};
  const std::string line = sparkline(rising);
  EXPECT_EQ(line.substr(0, 3), "▁");  // UTF-8: 3 bytes per block char
  EXPECT_EQ(line.substr(line.size() - 3), "█");
}

TEST(Stats, SparklineConstantSeries) {
  const std::array<double, 3> flat = {5, 5, 5};
  EXPECT_EQ(sparkline(flat), "▁▁▁");
}

TEST(Stats, SparklineEmpty) { EXPECT_EQ(sparkline({}), ""); }

}  // namespace
}  // namespace spfail::util
