// The scan service (DESIGN.md §18): control-file parsing, admission-control
// determinism, the ServiceLoop's run/checkpoint/restart machinery, and the
// byte-identity guarantees — same submissions produce the same event log and
// reports at any per-job thread count, and a service killed at any hook
// point restarts to byte-identical final outputs.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "snapshot/snapshot.hpp"
#include "svc/admission.hpp"
#include "svc/control.hpp"
#include "svc/job.hpp"
#include "svc/service.hpp"

namespace spfail {
namespace {

// A fresh per-test scratch directory (gtest's TempDir persists across
// cases, so each test gets its own subtree and clears it up front).
std::string scratch_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "spfail_svc_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

svc::SvcConfig small_config(const std::string& dir) {
  svc::SvcConfig config;
  config.dir = dir + "/state";
  config.control = dir + "/control.txt";
  config.rounds_per_tick = 8;
  return config;
}

constexpr const char* kTinyScale = "scale 0.004";

// --- control parsing ---

TEST(SvcControl, ParsesSubmitStatusDrainAndAt) {
  const auto commands = svc::parse_control_text(
      "# a comment\n"
      "submit alpha scale 0.02 seed 7 priority 3 recur 5 runs 2\n"
      "\n"
      "status   # trailing comment\n"
      "at 12 submit beta nets 4,9\n"
      "drain\n");
  ASSERT_EQ(commands.size(), 4u);
  EXPECT_EQ(commands[0].kind, svc::Command::Kind::Submit);
  EXPECT_EQ(commands[0].spec.id, "alpha");
  EXPECT_DOUBLE_EQ(commands[0].spec.scale, 0.02);
  EXPECT_EQ(commands[0].spec.seed, 7u);
  EXPECT_EQ(commands[0].spec.priority, 3);
  EXPECT_EQ(commands[0].spec.recur, 5u);
  EXPECT_EQ(commands[0].spec.runs, 2u);
  EXPECT_EQ(commands[1].kind, svc::Command::Kind::Status);
  EXPECT_EQ(commands[2].kind, svc::Command::Kind::Submit);
  EXPECT_EQ(commands[2].at_tick, 12u);
  EXPECT_EQ(commands[2].spec.nets, (std::vector<std::uint64_t>{4, 9}));
  EXPECT_EQ(commands[3].kind, svc::Command::Kind::Drain);
}

TEST(SvcControl, RejectsMalformedLines) {
  EXPECT_THROW(svc::parse_control_text("submit\n"), svc::ControlError);
  EXPECT_THROW(svc::parse_control_text("submit a scale\n"),
               svc::ControlError);
  EXPECT_THROW(svc::parse_control_text("submit a scale x\n"),
               svc::ControlError);
  EXPECT_THROW(svc::parse_control_text("submit a bogus 1\n"),
               svc::ControlError);
  EXPECT_THROW(svc::parse_control_text("submit bad/id\n"),
               svc::ControlError);
  EXPECT_THROW(svc::parse_control_text("launch a\n"), svc::ControlError);
  EXPECT_THROW(svc::parse_control_text("at x submit a\n"),
               svc::ControlError);
  EXPECT_THROW(svc::parse_control_text("status now\n"), svc::ControlError);
  // runs > 1 without a recurrence interval cannot be scheduled.
  EXPECT_THROW(svc::parse_control_text("submit a runs 3\n"),
               svc::ControlError);
}

TEST(SvcControl, MissingFileIsEmptyScript) {
  EXPECT_TRUE(svc::read_control_file("/nonexistent/control").empty());
}

// --- job spec codec ---

TEST(SvcSpecCodec, RoundTrips) {
  svc::JobSpec spec;
  spec.id = "codec-job";
  spec.scale = 0.015;
  spec.seed = 99;
  spec.study_seed = 777;
  spec.threads = 4;
  spec.scenario = "forwarding";
  spec.scenario_rounds = 6;
  spec.fault_rate = 0.01;
  spec.fault_seed = 0xBEEF;
  spec.priority = -2;
  spec.recur = 9;
  spec.runs = 3;
  spec.nets = {3, 8, 21};

  snapshot::Writer w;
  spec.encode(w);
  snapshot::Reader r(w.bytes());
  const svc::JobSpec back = svc::JobSpec::decode(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(back, spec);
}

TEST(SvcSpecCodec, TargetNetworksDeterministicAndSeedKeyed) {
  svc::JobSpec spec;
  spec.id = "nets";
  spec.scale = 0.05;
  const auto nets1 = svc::target_networks(spec);
  const auto nets2 = svc::target_networks(spec);
  EXPECT_EQ(nets1, nets2);
  EXPECT_FALSE(nets1.empty());
  EXPECT_TRUE(std::is_sorted(nets1.begin(), nets1.end()));

  svc::JobSpec other = spec;
  other.seed = 4242;
  EXPECT_NE(svc::target_networks(other), nets1);

  // An explicit override wins, deduplicated and sorted.
  spec.nets = {9, 4, 9};
  EXPECT_EQ(svc::target_networks(spec), (std::vector<std::uint64_t>{4, 9}));
}

// --- admission controller ---

svc::AdmissionConfig tight_admission() {
  svc::AdmissionConfig config;
  config.bucket_capacity = 1;
  config.bucket_refill = 1;
  config.breaker_threshold = 2;
  config.breaker_cooldown = 3;
  config.defer_budget = 16;
  return config;
}

TEST(SvcAdmission, TokenBucketChargesAndRefills) {
  svc::AdmissionController admission(tight_admission());
  const std::vector<std::uint64_t> nets{7};
  int budget = 16;
  EXPECT_EQ(admission.decide(nets, budget), svc::Decision::Admit);
  EXPECT_EQ(admission.decide(nets, budget), svc::Decision::Defer);
  EXPECT_EQ(budget, 15);
  admission.refill();
  EXPECT_EQ(admission.decide(nets, budget), svc::Decision::Admit);
}

TEST(SvcAdmission, BreakerOpensAfterConsecutiveDeferralsAndCoolsDown) {
  svc::AdmissionController admission(tight_admission());
  const std::vector<std::uint64_t> nets{5};
  int budget = 16;
  ASSERT_EQ(admission.decide(nets, budget), svc::Decision::Admit);
  // Two consecutive token-short deferrals open the breaker (threshold 2).
  EXPECT_EQ(admission.decide(nets, budget), svc::Decision::Defer);
  EXPECT_EQ(admission.decide(nets, budget), svc::Decision::Defer);
  EXPECT_EQ(admission.breaker_trips(), 1u);
  EXPECT_EQ(admission.open_breakers(), std::vector<std::uint64_t>{5});
  // While open, even a refilled bucket defers.
  admission.refill();
  EXPECT_EQ(admission.decide(nets, budget), svc::Decision::Defer);
  // Cool-down elapses (3 ticks from the trip; one refill consumed above).
  admission.refill();
  admission.refill();
  EXPECT_TRUE(admission.open_breakers().empty());
  EXPECT_EQ(admission.decide(nets, budget), svc::Decision::Admit);
}

TEST(SvcAdmission, ExhaustedDeferBudgetForcesRun) {
  svc::AdmissionController admission(tight_admission());
  const std::vector<std::uint64_t> nets{3};
  int budget = 1;
  ASSERT_EQ(admission.decide(nets, budget), svc::Decision::Admit);
  EXPECT_EQ(admission.decide(nets, budget), svc::Decision::Defer);
  EXPECT_EQ(budget, 0);
  // Budget gone: the job runs anyway instead of starving.
  EXPECT_EQ(admission.decide(nets, budget), svc::Decision::ForceRun);
}

TEST(SvcAdmission, CodecRoundTripsMidStream) {
  svc::AdmissionController admission(tight_admission());
  const std::vector<std::uint64_t> a{1, 2}, b{2, 3};
  int budget = 16;
  admission.decide(a, budget);
  admission.decide(b, budget);
  admission.decide(b, budget);
  admission.refill();

  snapshot::Writer w;
  admission.encode(w);
  snapshot::Reader r(w.bytes());
  const svc::AdmissionController back = svc::AdmissionController::decode(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(back, admission);
}

TEST(SvcAdmission, DecodeRejectsOutOfRangeState) {
  // Hand-craft a stream whose network state breaks the invariants: tokens
  // above the bucket capacity must be refused, not silently clamped.
  snapshot::Writer w;
  w.i64(1);   // bucket_capacity
  w.i64(1);   // bucket_refill
  w.i64(2);   // breaker_threshold
  w.i64(3);   // breaker_cooldown
  w.i64(16);  // defer_budget
  w.u64(0);   // breaker_trips
  w.u32(1);   // one network
  w.u64(7);
  w.i64(99);  // tokens > capacity
  w.i64(0);
  w.i64(0);
  snapshot::Reader r(w.bytes());
  EXPECT_THROW(svc::AdmissionController::decode(r),
               snapshot::SnapshotError);
}

// --- service loop ---

// Run a service over the given control script until it drains; returns the
// final event log text.
std::string run_to_drain(const svc::SvcConfig& config) {
  svc::ServiceLoop loop(config);
  EXPECT_EQ(loop.run(), svc::ServiceLoop::Status::Drained);
  return read_file(config.dir + "/events.log");
}

TEST(SvcService, RunsJobsToReportsAndDrains) {
  const std::string dir = scratch_dir("run");
  svc::SvcConfig config = small_config(dir);
  config.metrics_path = dir + "/metrics.jsonl";
  write_file(config.control,
             std::string("submit a ") + kTinyScale + "\n" +
                 "submit b " + kTinyScale + " seed 4\ndrain\n");

  svc::ServiceLoop loop(config);
  ASSERT_EQ(loop.run(), svc::ServiceLoop::Status::Drained);
  EXPECT_EQ(loop.job_phase("a"), svc::JobPhase::Done);
  EXPECT_EQ(loop.job_phase("b"), svc::JobPhase::Done);
  EXPECT_FALSE(loop.job_phase("nope").has_value());

  const std::string report_a = read_file(config.dir + "/a.report");
  EXPECT_NE(report_a.find("spfail svc report: job a"), std::string::npos);
  EXPECT_NE(report_a.find("rounds 34"), std::string::npos);
  const std::string report_b = read_file(config.dir + "/b.report");
  EXPECT_NE(report_b, report_a);  // different seed, different population

  // Per-job progress gauges reach both exporters (the acceptance surface).
  const std::string jsonl = read_file(config.metrics_path);
  EXPECT_NE(jsonl.find("svc_job_phase{job=\\\"a\\\"}"), std::string::npos);
  EXPECT_NE(jsonl.find("svc_job_rounds{job=\\\"a\\\"}"), std::string::npos);
  const std::string prom = read_file(config.metrics_path + ".prom");
  EXPECT_NE(prom.find("svc_job_phase{job=\"a\"}"), std::string::npos);
  EXPECT_NE(prom.find("svc_job_rounds{job=\"b\"}"), std::string::npos);
  EXPECT_NE(prom.find("svc_admission_wait_ticks_bucket"), std::string::npos);
}

TEST(SvcService, BackpressureQueuesBeyondMaxActiveByPriority) {
  const std::string dir = scratch_dir("backpressure");
  svc::SvcConfig config = small_config(dir);
  config.max_active_jobs = 1;
  write_file(config.control,
             std::string("submit low ") + kTinyScale + " priority 1\n" +
                 "submit high " + kTinyScale + " seed 5 priority 9\n" +
                 "drain\n");
  const std::string events = run_to_drain(config);
  // Both were submitted on tick 0; the higher priority one admits first
  // even though it was submitted second.
  const std::size_t high_admit = events.find("admitted job=high");
  const std::size_t low_admit = events.find("admitted job=low");
  ASSERT_NE(high_admit, std::string::npos);
  ASSERT_NE(low_admit, std::string::npos);
  EXPECT_LT(high_admit, low_admit);
  // And the deferred one's first admission attempt logged nothing — it was
  // capacity backpressure, not an admission-controller deferral.
  EXPECT_EQ(events.find("deferred job=low"), std::string::npos);
}

TEST(SvcService, NetworkContentionDefersThenBreakerTrips) {
  const std::string dir = scratch_dir("contention");
  svc::SvcConfig config = small_config(dir);
  config.max_active_jobs = 4;
  config.admission.bucket_capacity = 1;
  config.admission.bucket_refill = 0;  // nothing comes back: forces a streak
  config.admission.breaker_threshold = 2;
  config.admission.breaker_cooldown = 2;
  config.admission.defer_budget = 3;
  // Same explicit network: the second job must defer behind the first,
  // trip the breaker, exhaust its budget, and finally force-run.
  write_file(config.control,
             std::string("submit first ") + kTinyScale + " nets 7\n" +
                 "submit second " + kTinyScale + " seed 5 nets 7\n" +
                 "drain\n");
  const std::string events = run_to_drain(config);
  EXPECT_NE(events.find("admitted job=first"), std::string::npos);
  EXPECT_NE(events.find("deferred job=second"), std::string::npos);
  EXPECT_NE(events.find("force-run job=second"), std::string::npos);

  // The breaker trip is visible in the admission log and both reports exist.
  read_file(config.dir + "/first.report");
  read_file(config.dir + "/second.report");
}

// The admission/deferral stream must not depend on how many threads each
// job's scan engine uses: the schedule is serial service state.
TEST(SvcServiceDeterminism, EventLogInvariantAcrossJobThreadCounts) {
  std::vector<std::string> logs;
  for (const int threads : {1, 2, 8}) {
    const std::string dir =
        scratch_dir("threads" + std::to_string(threads));
    svc::SvcConfig config = small_config(dir);
    config.max_active_jobs = 2;
    config.admission.bucket_capacity = 1;
    write_file(config.control,
               std::string("submit a ") + kTinyScale + " threads " +
                   std::to_string(threads) + " nets 3\n" +
                   "submit b " + kTinyScale + " seed 5 threads " +
                   std::to_string(threads) + " nets 3\n" +
                   "at 3 submit c " + kTinyScale + " seed 9 threads " +
                   std::to_string(threads) + "\n" +
                   "drain\n");
    std::string events = run_to_drain(config);
    // The thread count appears in no event line, so the logs must match
    // byte for byte.
    logs.push_back(std::move(events));
  }
  EXPECT_EQ(logs[0], logs[1]);
  EXPECT_EQ(logs[0], logs[2]);
}

// Reports are byte-identical across job thread counts too (the underlying
// study guarantee, re-checked through the service path).
TEST(SvcServiceDeterminism, ReportsInvariantAcrossJobThreadCounts) {
  std::vector<std::string> reports;
  for (const int threads : {1, 4}) {
    const std::string dir =
        scratch_dir("rthreads" + std::to_string(threads));
    svc::SvcConfig config = small_config(dir);
    write_file(config.control,
               std::string("submit a ") + kTinyScale + " threads " +
                   std::to_string(threads) +
                   " scenario forwarding scenario-rounds 3\ndrain\n");
    run_to_drain(config);
    reports.push_back(read_file(config.dir + "/a.report"));
  }
  EXPECT_EQ(reports[0], reports[1]);
  EXPECT_NE(reports[0].find("scenario forwarding"), std::string::npos);
}

// Kill the service at every hook point of several ticks; each restart must
// finish with byte-identical reports, event log, and metric files.
TEST(SvcServiceRestart, KillAnywhereRestartsByteIdentical) {
  // Uninterrupted baseline.
  const std::string base_dir = scratch_dir("kill_base");
  svc::SvcConfig base = small_config(base_dir);
  base.admission.bucket_capacity = 1;
  base.metrics_path = base_dir + "/metrics.jsonl";
  const std::string script =
      std::string("submit a ") + kTinyScale + " nets 2\n" +
      "submit b " + kTinyScale + " seed 5 nets 2\n" + "drain\n";
  write_file(base.control, script);
  run_to_drain(base);
  const std::string want_a = read_file(base.dir + "/a.report");
  const std::string want_b = read_file(base.dir + "/b.report");
  const std::string want_events = read_file(base.dir + "/events.log");
  const std::string want_jsonl = read_file(base.metrics_path);
  const std::string want_prom = read_file(base.metrics_path + ".prom");

  using KP = svc::KillPoint;
  for (const auto& [tick, point] :
       std::vector<std::pair<std::uint64_t, KP>>{
           {0, KP::AfterAdmission},
           {1, KP::AfterJobCheckpoint},
           {2, KP::AfterStateSave},
           {4, KP::AfterJobCheckpoint},
           {4, KP::AfterReportWrite},
           {5, KP::AfterStateSave},
       }) {
    const std::string dir = scratch_dir(
        "kill_t" + std::to_string(tick) +
        "_p" + std::to_string(static_cast<int>(point)));
    svc::SvcConfig config = small_config(dir);
    config.admission.bucket_capacity = 1;
    config.metrics_path = dir + "/metrics.jsonl";
    write_file(config.control, script);

    svc::ServiceOptions options;
    options.kill_at = svc::ServiceOptions::KillAt{tick, point};
    {
      svc::ServiceLoop victim(config, options);
      ASSERT_EQ(victim.run(), svc::ServiceLoop::Status::Killed)
          << "tick " << tick;
    }
    {
      svc::ServiceLoop revived(config);
      ASSERT_EQ(revived.run(), svc::ServiceLoop::Status::Drained)
          << "tick " << tick;
    }
    EXPECT_EQ(read_file(config.dir + "/a.report"), want_a);
    EXPECT_EQ(read_file(config.dir + "/b.report"), want_b);
    EXPECT_EQ(read_file(config.dir + "/events.log"), want_events);
    EXPECT_EQ(read_file(config.metrics_path), want_jsonl);
    EXPECT_EQ(read_file(config.metrics_path + ".prom"), want_prom);
  }
}

TEST(SvcServiceRestart, RecurringJobRunsTwiceWithIdenticalReports) {
  const std::string dir = scratch_dir("recur");
  svc::SvcConfig config = small_config(dir);
  write_file(config.control,
             std::string("submit cron ") + kTinyScale +
                 " recur 3 runs 2\nat 40 drain\n");
  const std::string events = run_to_drain(config);
  EXPECT_NE(events.find("done job=cron run=1"), std::string::npos);
  EXPECT_NE(events.find("done job=cron run=2"), std::string::npos);
  // Same spec, same seeds: the recurring re-scan reproduces the report
  // byte for byte (nothing in the simulated world changed between runs).
  EXPECT_EQ(read_file(config.dir + "/cron.report"),
            read_file(config.dir + "/cron.run2.report"));
}

TEST(SvcServiceRestart, CorruptStateFileIsRejected) {
  const std::string dir = scratch_dir("corrupt");
  svc::SvcConfig config = small_config(dir);
  config.max_ticks = 2;  // stop mid-run with live state
  write_file(config.control, std::string("submit a ") + kTinyScale + "\n");
  {
    svc::ServiceLoop loop(config);
    ASSERT_EQ(loop.run(), svc::ServiceLoop::Status::MaxTicks);
  }
  std::string state = read_file(config.dir + "/svc_state");
  state[state.size() / 2] ^= 0x5A;
  write_file(config.dir + "/svc_state", state);
  svc::ServiceLoop loop(config);
  EXPECT_THROW(loop.run(), snapshot::SnapshotError);
}

TEST(SvcService, StatusCommandWritesStatusFile) {
  const std::string dir = scratch_dir("status");
  svc::SvcConfig config = small_config(dir);
  write_file(config.control, std::string("submit a ") + kTinyScale +
                                 "\nat 2 status\nat 2 drain\n");
  run_to_drain(config);
  const std::string status = read_file(config.dir + "/status.txt");
  EXPECT_NE(status.find("tick 2"), std::string::npos);
  EXPECT_NE(status.find("job a phase"), std::string::npos);
}

TEST(SvcService, DuplicateJobIdIsFatal) {
  const std::string dir = scratch_dir("dup");
  svc::SvcConfig config = small_config(dir);
  write_file(config.control, std::string("submit a ") + kTinyScale + "\n" +
                                 "submit a " + kTinyScale + "\ndrain\n");
  svc::ServiceLoop loop(config);
  EXPECT_THROW(loop.run(), svc::ControlError);
}

TEST(SvcService, MaxTicksBoundsAnIdleService) {
  const std::string dir = scratch_dir("idle");
  svc::SvcConfig config = small_config(dir);
  config.max_ticks = 3;
  write_file(config.control, "# nothing yet\n");
  svc::ServiceLoop loop(config);
  EXPECT_EQ(loop.run(), svc::ServiceLoop::Status::MaxTicks);
  EXPECT_EQ(loop.ticks(), 3u);
}

// --- svc flag registry ---

TEST(SvcFlagRegistry, ParsesArgsOverEnvAndRejectsDuplicates) {
  const char* argv[] = {"spfail_svc", "--dir", "d", "--max-active-jobs",
                        "3", "--rounds-per-tick", "2"};
  const svc::SvcConfig config =
      svc::svc_config_from_args(7, argv);
  EXPECT_EQ(config.dir, "d");
  EXPECT_EQ(config.max_active_jobs, 3);
  EXPECT_EQ(config.rounds_per_tick, 2);

  const char* dup[] = {"spfail_svc", "--dir", "a", "--dir", "b"};
  EXPECT_THROW(svc::svc_config_from_args(5, dup),
               session::ScanConfigError);
  const char* bad[] = {"spfail_svc", "--max-active-jobs", "0"};
  EXPECT_THROW(svc::svc_config_from_args(3, bad),
               session::ScanConfigError);
  const char* unknown[] = {"spfail_svc", "--bogus"};
  EXPECT_THROW(svc::svc_config_from_args(2, unknown),
               session::ScanConfigError);
}

TEST(SvcFlagRegistry, FlagTableListsEveryFlag) {
  const std::string table = svc::svc_flag_table_markdown();
  for (const svc::SvcFlagDef& row : svc::svc_flag_registry()) {
    EXPECT_NE(table.find(row.flag), std::string::npos) << row.flag;
  }
}

}  // namespace
}  // namespace spfail
