// Integration tests for the resilient probe engine: fault injection through
// the prober, the campaign's retry/re-queue/circuit-breaker machinery, the
// greylist retry schedule, and rate-0 byte-identity. Suite names match the
// `asan_faults` ctest filter.
#include <gtest/gtest.h>

#include <sstream>

#include "mail/message.hpp"
#include "mta/host.hpp"
#include "population/fleet.hpp"
#include "scan/campaign.hpp"
#include "scan/prober.hpp"
#include "scan/test_responder.hpp"
#include "smtp/client.hpp"

namespace spfail {
namespace {

using scan::AddressVerdict;
using scan::ProbeStatus;
using scan::TestKind;
using spfvuln::SpfBehavior;
using util::IpAddress;

class FaultScanFixture : public ::testing::Test, public scan::HostRegistry {
 protected:
  FaultScanFixture() {
    responder_config_ = scan::install_test_responder(server_);
    prober_config_.responder = responder_config_;
  }

  mta::MailHost& add_host(mta::HostProfile profile) {
    auto host =
        std::make_unique<mta::MailHost>(std::move(profile), server_, clock_);
    auto& ref = *host;
    hosts_.emplace(ref.address(), std::move(host));
    return ref;
  }

  mta::MailHost* find_host(const IpAddress& address) override {
    const auto it = hosts_.find(address);
    return it == hosts_.end() ? nullptr : it->second.get();
  }

  scan::ProbeResult probe(mta::MailHost& host, TestKind kind,
                          const faults::FaultDecision& fault = {},
                          const std::string& id = "abc4z") {
    net::Transport transport(clock_);
    scan::Prober prober(prober_config_, server_, transport);
    const dns::Name mail_from =
        dns::Name::from_string(id + ".t001.spf-test.dns-lab.org");
    return prober.probe(host, "target.example", mail_from, kind, fault);
  }

  scan::CampaignReport run_campaign(scan::CampaignConfig config,
                                    const std::vector<scan::TargetDomain>&
                                        targets) {
    config.prober.responder = responder_config_;
    config.threads = 2;
    scan::Campaign campaign(config, server_, clock_, *this);
    return campaign.run(targets);
  }

  static mta::HostProfile base_profile(SpfBehavior behavior,
                                       std::uint8_t last_octet = 10,
                                       std::uint8_t third_octet = 113) {
    mta::HostProfile profile;
    profile.address = IpAddress::v4(203, 0, third_octet, last_octet);
    profile.behaviors = {behavior};
    return profile;
  }

  dns::AuthoritativeServer server_;
  util::SimClock clock_;
  scan::TestResponderConfig responder_config_;
  scan::ProberConfig prober_config_;
  std::map<IpAddress, std::unique_ptr<mta::MailHost>> hosts_;
};

// Stage-by-stage injection through the prober.
class FaultProber : public FaultScanFixture {};
// Greylist retry schedule regression (the old probe_with_greylist_retry bug:
// only ever one retry regardless of max_greylist_retries).
class RetryGreylist : public FaultScanFixture {};
// Campaign-level resilience: accounting invariant, breaker, re-queue wave.
class FaultCampaign : public FaultScanFixture {};

// ------------------------------------------------------------ FaultProber

TEST_F(FaultProber, TempfailInjectionPreemptsEveryStage) {
  // A non-validating host lets the clean dialog run through RCPT and DATA,
  // so the late injection points are actually reachable (an SPF-validating
  // host would already have rejected MAIL FROM).
  mta::HostProfile profile = base_profile(SpfBehavior::RfcCompliant);
  profile.validates_spf = false;
  auto& host = add_host(profile);
  int stage_index = 0;
  for (const auto stage :
       {faults::SmtpStage::Helo, faults::SmtpStage::MailFrom,
        faults::SmtpStage::RcptTo, faults::SmtpStage::Data}) {
    faults::FaultDecision fault;
    fault.kind = faults::FaultKind::SmtpTempfail;
    fault.stage = stage;
    fault.smtp_code = 452;
    const scan::ProbeResult result = probe(
        host, TestKind::NoMsg, fault, "tf" + std::to_string(stage_index++));
    EXPECT_EQ(result.status, ProbeStatus::TempFailed) << to_string(stage);
    EXPECT_EQ(result.failing_code, 452);
    EXPECT_EQ(result.injected, faults::FaultKind::SmtpTempfail);
    EXPECT_TRUE(is_transient(result.status));
  }
}

TEST_F(FaultProber, DropInjectionPreemptsEveryStage) {
  mta::HostProfile profile = base_profile(SpfBehavior::RfcCompliant);
  profile.validates_spf = false;
  auto& host = add_host(profile);
  int stage_index = 0;
  for (const auto stage :
       {faults::SmtpStage::Helo, faults::SmtpStage::MailFrom,
        faults::SmtpStage::RcptTo, faults::SmtpStage::Data}) {
    faults::FaultDecision fault;
    fault.kind = faults::FaultKind::ConnectionDrop;
    fault.stage = stage;
    const scan::ProbeResult result = probe(
        host, TestKind::NoMsg, fault, "dr" + std::to_string(stage_index++));
    EXPECT_EQ(result.status, ProbeStatus::Dropped) << to_string(stage);
    EXPECT_EQ(result.injected, faults::FaultKind::ConnectionDrop);
    EXPECT_TRUE(is_transient(result.status));
  }
}

TEST_F(FaultProber, LatencySpikeOnlyStretchesTheDialog) {
  auto& host = add_host(base_profile(SpfBehavior::VulnerableLibspf2));
  faults::FaultDecision fault;
  fault.kind = faults::FaultKind::LatencySpike;
  fault.latency = 77;
  const util::SimTime before = clock_.now();
  const scan::ProbeResult result = probe(host, TestKind::NoMsg, fault);
  EXPECT_EQ(result.status, ProbeStatus::SpfMeasured);
  EXPECT_TRUE(result.vulnerable());
  EXPECT_EQ(result.injected, faults::FaultKind::LatencySpike);
  EXPECT_GE(clock_.now() - before, 77);
}

TEST_F(FaultProber, HostDnsTempfailSurfacesAsTransient450) {
  mta::HostProfile profile = base_profile(SpfBehavior::VulnerableLibspf2);
  profile.dns_tempfail_rate = 1.0;  // the host's own resolver path is down
  auto& host = add_host(profile);
  const scan::ProbeResult result = probe(host, TestKind::NoMsg);
  EXPECT_EQ(result.status, ProbeStatus::TempFailed);
  EXPECT_EQ(result.failing_code, 450);
  EXPECT_EQ(result.injected, faults::FaultKind::None);  // host-side, not ours
  EXPECT_TRUE(is_transient(result.status));
}

// ----------------------------------------------------------- RetryGreylist

TEST_F(RetryGreylist, HonoursMoreThanOneGreylistRetry) {
  // A host whose greylist window (20 min) outlasts two flat 8-minute
  // backoffs: only the third retry can pass. The legacy loop retried once no
  // matter what max_greylist_retries said.
  mta::HostProfile profile = base_profile(SpfBehavior::VulnerableLibspf2);
  profile.greylists = true;
  profile.greylist_delay = 20 * util::kMinute;
  add_host(profile);

  scan::CampaignConfig config;
  config.max_greylist_retries = 3;
  const scan::CampaignReport report = run_campaign(
      config, {scan::TargetDomain{"gl.example", {profile.address}}});

  ASSERT_EQ(report.addresses.size(), 1u);
  const scan::AddressOutcome& outcome =
      report.addresses.find(profile.address)->second;
  EXPECT_EQ(outcome.verdict, AddressVerdict::Measured);
  ASSERT_TRUE(outcome.nomsg.has_value());
  EXPECT_EQ(outcome.nomsg->status, ProbeStatus::SpfMeasured);
  EXPECT_EQ(outcome.retries_used, 3);
  EXPECT_EQ(outcome.probe_attempts, 4);
  EXPECT_TRUE(outcome.saw_transient);
  EXPECT_EQ(report.degradation.transient_addresses, 1u);
  EXPECT_EQ(report.degradation.recovered, 1u);
  EXPECT_EQ(report.degradation.exhausted, 0u);
}

TEST_F(RetryGreylist, SingleRetryCannotOutwaitALongGreylist) {
  mta::HostProfile profile = base_profile(SpfBehavior::VulnerableLibspf2);
  profile.greylists = true;
  profile.greylist_delay = 20 * util::kMinute;
  add_host(profile);

  scan::CampaignConfig config;
  config.max_greylist_retries = 1;  // the default
  const scan::CampaignReport report = run_campaign(
      config, {scan::TargetDomain{"gl.example", {profile.address}}});

  const scan::AddressOutcome& outcome =
      report.addresses.find(profile.address)->second;
  EXPECT_EQ(outcome.verdict, AddressVerdict::SmtpFailure);
  ASSERT_TRUE(outcome.nomsg.has_value());
  EXPECT_EQ(outcome.nomsg->status, ProbeStatus::Greylisted);
  EXPECT_EQ(outcome.retries_used, 1);
  EXPECT_EQ(report.degradation.exhausted, 1u);
  EXPECT_EQ(report.degradation.recovered, 0u);
}

TEST_F(RetryGreylist, OrdinaryGreylistStillPassesOnTheFirstRetry) {
  // The seed behaviour: an 8-minute greylist clears after one 8-minute
  // backoff. This must keep working identically with the retry engine.
  mta::HostProfile profile = base_profile(SpfBehavior::VulnerableLibspf2);
  profile.greylists = true;  // default delay: 8 minutes
  add_host(profile);

  scan::CampaignConfig config;
  const scan::CampaignReport report = run_campaign(
      config, {scan::TargetDomain{"gl.example", {profile.address}}});

  const scan::AddressOutcome& outcome =
      report.addresses.find(profile.address)->second;
  EXPECT_EQ(outcome.verdict, AddressVerdict::Measured);
  EXPECT_EQ(outcome.retries_used, 1);
  EXPECT_EQ(outcome.probe_attempts, 2);
}

// ------------------------------------------------------------ RetryClient

TEST(RetryClientDelivery, RecoversFromGreylisting) {
  dns::AuthoritativeServer server;
  util::SimClock clock;
  mta::HostProfile profile;
  profile.address = IpAddress::v4(203, 0, 113, 40);
  profile.greylists = true;  // 8-minute window
  profile.validates_spf = false;
  mta::MailHost host(profile, server, clock);

  mail::Message message;
  message.add_header("From", "sender@research.example");
  message.add_header("Subject", "notification");
  message.set_body("hello\r\n");

  faults::RetryConfig retry;
  retry.max_attempts = 3;
  retry.multiplier = 1.0;
  retry.max_backoff = retry.base_backoff;

  smtp::Client client("notifier.research.example");
  const smtp::DeliveryResult result = client.deliver_with_retry(
      [&] { return host.connect(IpAddress::v4(198, 51, 100, 10)); },
      "sender@research.example", {"postmaster@target.example"}, message,
      faults::RetryPolicy(retry), clock);

  EXPECT_TRUE(result.accepted);
  EXPECT_EQ(result.attempts, 2);
}

TEST(RetryClientDelivery, ExhaustsAgainstAPersistentTempfail) {
  dns::AuthoritativeServer server;
  util::SimClock clock;
  mta::HostProfile profile;
  profile.address = IpAddress::v4(203, 0, 113, 41);
  profile.greylists = true;
  profile.greylist_delay = 600 * util::kMinute;  // never clears in time
  profile.validates_spf = false;
  mta::MailHost host(profile, server, clock);

  mail::Message message;
  message.add_header("From", "sender@research.example");
  message.set_body("hello\r\n");

  faults::RetryConfig retry;
  retry.max_attempts = 3;

  smtp::Client client("notifier.research.example");
  const smtp::DeliveryResult result = client.deliver_with_retry(
      [&] { return host.connect(IpAddress::v4(198, 51, 100, 10)); },
      "sender@research.example", {"postmaster@target.example"}, message,
      faults::RetryPolicy(retry), clock);

  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.attempts, 3);
  EXPECT_EQ(result.final_code, 451);
  EXPECT_TRUE(result.transient());
}

TEST(RetryClientDelivery, TransientClassifiesCodes) {
  smtp::DeliveryResult result;
  result.final_code = 0;  // refused connect
  EXPECT_TRUE(result.transient());
  result.final_code = 451;
  EXPECT_TRUE(result.transient());
  result.final_code = 550;
  EXPECT_FALSE(result.transient());
  result.final_code = 451;
  result.accepted = true;
  EXPECT_FALSE(result.transient());
}

// ----------------------------------------------------------- FaultCampaign

std::string serialize(const scan::CampaignReport& report) {
  std::ostringstream out;
  out << "suite=" << report.suite_label << "\n";
  for (const scan::AddressOutcome* outcome : report.sorted_outcomes()) {
    out << outcome->address.to_string() << " v=" << to_string(outcome->verdict)
        << " pa=" << outcome->probe_attempts << " ru=" << outcome->retries_used
        << " b=";
    for (const auto behavior : outcome->behaviors) {
      out << spfvuln::to_string(behavior) << ",";
    }
    for (const auto& probe : {outcome->nomsg, outcome->blankmsg}) {
      if (!probe.has_value()) {
        out << " -";
        continue;
      }
      out << " [" << to_string(probe->status) << " "
          << probe->mail_from_domain.to_string() << " f=" << probe->failing_code
          << " i=" << to_string(probe->injected) << "]";
    }
    out << "\n";
  }
  const faults::DegradationReport& deg = report.degradation;
  out << "deg pa=" << deg.probe_attempts << " r=" << deg.retries
      << " it=" << deg.injected_tempfail << " id=" << deg.injected_drop
      << " il=" << deg.injected_latency << " tr=" << deg.transient_addresses
      << " rec=" << deg.recovered << " ex=" << deg.exhausted
      << " bt=" << deg.breaker_trips << " bs=" << deg.breaker_skipped
      << " rq=" << deg.requeued << " rr=" << deg.requeue_recovered << "\n";
  return out.str();
}

TEST_F(FaultCampaign, RateZeroIsByteIdenticalWhateverTheFaultSeed) {
  const auto run = [](std::uint64_t fault_seed) {
    population::FleetConfig fleet_config;
    fleet_config.scale = 0.01;
    fleet_config.seed = 20211011;
    population::Fleet fleet(fleet_config);
    scan::CampaignConfig config;
    config.prober.responder = fleet.responder();
    config.threads = 2;
    config.faults.seed = fault_seed;  // must be inert while rate == 0
    scan::Campaign campaign(config, fleet.dns(), fleet.clock(), fleet);
    const scan::CampaignReport report = campaign.run(fleet.targets());
    std::ostringstream out;
    out << serialize(report) << "clock=" << fleet.clock().now()
        << " queries=" << fleet.dns().query_log().size() << "\n";
    return out.str();
  };
  const std::string baseline = run(0xFA171ULL);
  EXPECT_EQ(baseline, run(999));
  EXPECT_NE(baseline.find(" it=0 id=0 il=0 "), std::string::npos);
}

TEST_F(FaultCampaign, TenPercentRateConvergesAndAccountingHolds) {
  const auto run = [] {
    population::FleetConfig fleet_config;
    fleet_config.scale = 0.02;
    fleet_config.seed = 7;
    population::Fleet fleet(fleet_config);
    scan::CampaignConfig config;
    config.prober.responder = fleet.responder();
    config.threads = 2;
    config.faults.rate = 0.10;
    scan::Campaign campaign(config, fleet.dns(), fleet.clock(), fleet);
    return campaign.run(fleet.targets());
  };
  const scan::CampaignReport report = run();
  const faults::DegradationReport& deg = report.degradation;

  // Faults were really injected and really retried.
  EXPECT_GT(deg.injected_total(), 0u);
  EXPECT_GT(deg.retries, 0u);
  EXPECT_GE(deg.probe_attempts, deg.retries);

  // The load-bearing invariant: every address that ever went transient is
  // either retried to a conclusion or surfaced as exhausted — nothing is
  // silently dropped.
  EXPECT_EQ(deg.transient_addresses, deg.recovered + deg.exhausted);
  EXPECT_EQ(deg.addresses_tested, report.addresses.size());
  EXPECT_EQ(deg.conclusive, report.count_verdict(AddressVerdict::Measured));

  std::size_t pending = 0, transient_seen = 0;
  for (const auto& [address, outcome] : report.addresses) {
    pending += outcome.pending_transient().has_value();
    transient_seen += outcome.saw_transient;
    EXPECT_LE(outcome.retries_used, 16);  // per-address budget
  }
  EXPECT_EQ(deg.exhausted, pending);
  EXPECT_EQ(deg.transient_addresses, transient_seen);

  // And the whole faulted run is reproducible from the seed alone.
  EXPECT_EQ(serialize(report), serialize(run()));
}

TEST_F(FaultCampaign, BreakerSkipsASystemicallySickProvider) {
  // Eight hosts in one /24, all stuck behind a greylist window nothing can
  // outwait: the whole group stays transient, so the breaker opens and the
  // re-queue wave must not hammer it. A lone host in another /24 with the
  // same symptom is below the breaker threshold and is re-queued.
  std::vector<IpAddress> sick, targets_addrs;
  for (std::uint8_t i = 1; i <= 8; ++i) {
    mta::HostProfile profile =
        base_profile(SpfBehavior::VulnerableLibspf2, i, 113);
    profile.greylists = true;
    profile.greylist_delay = 600 * util::kMinute;
    add_host(profile);
    sick.push_back(profile.address);
  }
  mta::HostProfile lonely =
      base_profile(SpfBehavior::VulnerableLibspf2, 1, 114);
  lonely.greylists = true;
  lonely.greylist_delay = 600 * util::kMinute;
  add_host(lonely);

  scan::CampaignConfig config;
  // Enable the resilience layer without injecting measurable faults.
  config.faults.rate = 1e-12;
  const scan::CampaignReport report = run_campaign(
      config, {scan::TargetDomain{"sick.example", sick},
               scan::TargetDomain{"lonely.example", {lonely.address}}});

  const faults::DegradationReport& deg = report.degradation;
  EXPECT_EQ(deg.breaker_trips, 1u);
  EXPECT_EQ(deg.breaker_skipped, 8u);
  EXPECT_EQ(deg.requeued, 1u);  // only the lonely host
  EXPECT_EQ(deg.requeue_recovered, 0u);
  EXPECT_EQ(deg.transient_addresses, 9u);
  EXPECT_EQ(deg.exhausted, 9u);
  EXPECT_EQ(deg.recovered, 0u);
  EXPECT_EQ(deg.conclusive, 0u);
}

TEST_F(FaultCampaign, RequeueWaveRecoversAStraggler) {
  // Greylist window (30 min) longer than the in-wave schedule reaches
  // (attempts at ~0 and ~8 min) but within reach of the re-queue pass
  // (cool-down 15 min, then two more attempts 8 min apart).
  mta::HostProfile profile = base_profile(SpfBehavior::VulnerableLibspf2);
  profile.greylists = true;
  profile.greylist_delay = 30 * util::kMinute;
  add_host(profile);

  scan::CampaignConfig config;
  config.faults.rate = 1e-12;
  const scan::CampaignReport report = run_campaign(
      config, {scan::TargetDomain{"straggler.example", {profile.address}}});

  const scan::AddressOutcome& outcome =
      report.addresses.find(profile.address)->second;
  EXPECT_EQ(outcome.verdict, AddressVerdict::Measured);
  const faults::DegradationReport& deg = report.degradation;
  EXPECT_EQ(deg.requeued, 1u);
  EXPECT_EQ(deg.requeue_recovered, 1u);
  EXPECT_EQ(deg.recovered, 1u);
  EXPECT_EQ(deg.exhausted, 0u);
  EXPECT_EQ(deg.breaker_trips, 0u);
  // Attempt numbering continued across the waves: 2 in-wave + 2 re-queue.
  EXPECT_EQ(outcome.probe_attempts, 4);
}

}  // namespace
}  // namespace spfail
