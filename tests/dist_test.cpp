// Distributed-scan building blocks (DESIGN.md §15): the coordinator/worker
// wire protocol must round-trip every message type and loudly reject
// truncated, corrupt, or alien frames (a bad frame is a worker crash, never
// data); the address-range partition must be deterministic and match the
// ThreadPool split; the degradation report must aggregate faithfully.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <vector>

#include "dist/coordinator.hpp"
#include "dist/protocol.hpp"

namespace spfail::dist {
namespace {

util::IpAddress ip(std::uint8_t last) { return util::IpAddress::v4(10, 0, 0, last); }

// --- protocol round-trips --------------------------------------------------

TEST(DistProtocol, HelloRoundTrip) {
  HelloMsg msg;
  msg.worker = 3;
  msg.generation = 7;
  msg.pid = 12345;
  const std::string frame = encode_hello(msg);
  MessageView view(frame);
  ASSERT_EQ(view.type(), MsgType::Hello);
  const HelloMsg back = decode_hello(view);
  EXPECT_EQ(back.worker, 3u);
  EXPECT_EQ(back.generation, 7u);
  EXPECT_EQ(back.pid, 12345);
}

TEST(DistProtocol, WaveRequestRoundTrip) {
  WaveReq req;
  req.seq = 42;
  req.clock_now = 99'000;
  req.ctx.suite = "r3";
  req.ctx.round = 3;
  req.ctx.per_test_advance = 17;
  req.ctx.tracing = true;
  req.ctx.metrics = false;
  req.base = 1000;
  req.recipients = {"alpha.example", "beta.example"};
  req.items.push_back({ip(1), req.recipients[0]});
  req.items.push_back({ip(2), req.recipients[1]});

  const std::string frame = encode_wave_req(req);
  MessageView view(frame);
  ASSERT_EQ(view.type(), MsgType::WaveReq);
  const WaveReq back = decode_wave_req(view);
  EXPECT_EQ(back.seq, 42u);
  EXPECT_EQ(back.clock_now, 99'000);
  EXPECT_EQ(back.ctx.suite, "r3");
  EXPECT_EQ(back.ctx.round, 3u);
  EXPECT_EQ(back.ctx.per_test_advance, 17);
  EXPECT_TRUE(back.ctx.tracing);
  EXPECT_FALSE(back.ctx.metrics);
  EXPECT_EQ(back.base, 1000u);
  ASSERT_EQ(back.items.size(), 2u);
  EXPECT_EQ(back.items[0].address, ip(1));
  EXPECT_EQ(back.items[0].recipient, "alpha.example");
  EXPECT_EQ(back.items[1].address, ip(2));
  EXPECT_EQ(back.items[1].recipient, "beta.example");
  // The decoded views must alias the decoded struct's own storage, not the
  // (now reusable) frame.
  EXPECT_EQ(back.items[0].recipient.data(), back.recipients[0].data());
}

TEST(DistProtocol, WaveReplyRoundTrip) {
  WaveRep rep;
  rep.seq = 42;
  rep.slice.advance = 1234;
  scan::AddressOutcome outcome;
  outcome.address = ip(9);
  outcome.verdict = scan::AddressVerdict::Measured;
  outcome.probe_attempts = 4;
  outcome.retries_used = 1;
  outcome.saw_transient = true;
  rep.slice.outcomes.push_back(outcome);
  net::Frame f;
  f.time = 55;
  f.lane = 18;
  f.src = "prober";
  f.dst = "10.0.0.9:25";
  f.verb = "EHLO";
  f.text = "EHLO probe.example";
  rep.slice.wave1.record(f);
  rep.query_count = 321;

  const std::string frame = encode_wave_rep(rep);
  MessageView view(frame);
  ASSERT_EQ(view.type(), MsgType::WaveRep);
  const WaveRep back = decode_wave_rep(view);
  EXPECT_EQ(back.seq, 42u);
  EXPECT_EQ(back.query_count, 321u);
  EXPECT_EQ(back.slice.advance, 1234);
  ASSERT_EQ(back.slice.outcomes.size(), 1u);
  EXPECT_EQ(back.slice.outcomes[0].address, ip(9));
  EXPECT_EQ(back.slice.outcomes[0].verdict, scan::AddressVerdict::Measured);
  EXPECT_EQ(back.slice.outcomes[0].probe_attempts, 4);
  EXPECT_EQ(back.slice.outcomes[0].retries_used, 1);
  EXPECT_TRUE(back.slice.outcomes[0].saw_transient);
  ASSERT_EQ(back.slice.wave1.size(), 1u);
  EXPECT_EQ(back.slice.wave1.frames()[0].time, 55);
  EXPECT_EQ(back.slice.wave1.frames()[0].lane, 18u);
  EXPECT_EQ(back.slice.wave1.frames()[0].text, "EHLO probe.example");
  EXPECT_EQ(back.slice.wave2.size(), 0u);
}

TEST(DistProtocol, RequeueRoundTrip) {
  RequeueReq req;
  req.seq = 7;
  req.clock_now = 500;
  req.ctx.suite = "rq";
  req.recipients = {"gamma.example"};
  scan::RequeueItem item;
  item.index = 31;
  item.item = {ip(4), req.recipients[0]};
  item.outcome.address = ip(4);
  item.outcome.probe_attempts = 2;
  req.items.push_back(item);

  const std::string frame = encode_requeue_req(req);
  MessageView view(frame);
  ASSERT_EQ(view.type(), MsgType::RequeueReq);
  const RequeueReq back = decode_requeue_req(view);
  EXPECT_EQ(back.seq, 7u);
  ASSERT_EQ(back.items.size(), 1u);
  EXPECT_EQ(back.items[0].index, 31u);
  EXPECT_EQ(back.items[0].item.address, ip(4));
  EXPECT_EQ(back.items[0].item.recipient, "gamma.example");
  EXPECT_EQ(back.items[0].outcome.probe_attempts, 2);

  RequeueRep rep;
  rep.seq = 7;
  rep.slice.recovered = 5;
  rep.slice.advance = 60;
  rep.query_count = 17;
  const std::string rframe = encode_requeue_rep(rep);
  MessageView rview(rframe);
  ASSERT_EQ(rview.type(), MsgType::RequeueRep);
  const RequeueRep rback = decode_requeue_rep(rview);
  EXPECT_EQ(rback.seq, 7u);
  EXPECT_EQ(rback.slice.recovered, 5u);
  EXPECT_EQ(rback.slice.advance, 60);
  EXPECT_EQ(rback.query_count, 17u);
}

TEST(DistProtocol, ObserveRoundTripCarriesHostFlags) {
  ObserveReq req;
  req.seq = 11;
  req.clock_now = 2000;
  req.ctx.suite = "obs-12";
  req.ctx.fault_round = 12;
  req.ctx.metrics = true;
  ObserveWireJob job;
  job.job.address = ip(6);
  job.job.kind = scan::TestKind::BlankMsg;
  job.job.slot = 77;
  job.patched = true;
  job.blacklisted = false;
  req.jobs.push_back(job);

  const std::string frame = encode_observe_req(req);
  MessageView view(frame);
  ASSERT_EQ(view.type(), MsgType::ObserveReq);
  const ObserveReq back = decode_observe_req(view);
  EXPECT_EQ(back.seq, 11u);
  EXPECT_EQ(back.ctx.fault_round, 12u);
  EXPECT_TRUE(back.ctx.metrics);
  ASSERT_EQ(back.jobs.size(), 1u);
  EXPECT_EQ(back.jobs[0].job.address, ip(6));
  EXPECT_EQ(back.jobs[0].job.kind, scan::TestKind::BlankMsg);
  EXPECT_EQ(back.jobs[0].job.slot, 77u);
  EXPECT_TRUE(back.jobs[0].patched);
  EXPECT_FALSE(back.jobs[0].blacklisted);

  ObserveRep rep;
  rep.seq = 11;
  rep.slice.results = {longitudinal::Observation::Vulnerable,
                       longitudinal::Observation::Inconclusive};
  rep.slice.advance = 90;
  rep.query_count = 8;
  const std::string rframe = encode_observe_rep(rep);
  MessageView rview(rframe);
  const ObserveRep rback = decode_observe_rep(rview);
  EXPECT_EQ(rback.seq, 11u);
  ASSERT_EQ(rback.slice.results.size(), 2u);
  EXPECT_EQ(rback.slice.results[0], longitudinal::Observation::Vulnerable);
  EXPECT_EQ(rback.slice.results[1], longitudinal::Observation::Inconclusive);
  EXPECT_EQ(rback.slice.advance, 90);
  EXPECT_EQ(rback.query_count, 8u);
}

TEST(DistProtocol, CaptureRoundTripWithAbsentHosts) {
  CaptureReq req;
  req.seq = 21;
  req.addresses = {ip(1), ip(2), ip(3)};
  const std::string frame = encode_capture_req(req);
  MessageView view(frame);
  const CaptureReq back = decode_capture_req(view);
  EXPECT_EQ(back.seq, 21u);
  ASSERT_EQ(back.addresses.size(), 3u);
  EXPECT_EQ(back.addresses[2], ip(3));

  CaptureRep rep;
  rep.seq = 21;
  snapshot::StudySnapshot::HostState host;
  host.address = ip(1);
  host.greylist_seen.emplace_back("probe.example", 42);
  host.flaky_rng = {1, 2, 3, 4};
  rep.hosts.push_back(host);
  rep.hosts.push_back(std::nullopt);  // lazy fleet: host never materialised
  const std::string rframe = encode_capture_rep(rep);
  MessageView rview(rframe);
  const CaptureRep rback = decode_capture_rep(rview);
  EXPECT_EQ(rback.seq, 21u);
  ASSERT_EQ(rback.hosts.size(), 2u);
  ASSERT_TRUE(rback.hosts[0].has_value());
  EXPECT_EQ(rback.hosts[0]->address, ip(1));
  ASSERT_EQ(rback.hosts[0]->greylist_seen.size(), 1u);
  EXPECT_EQ(rback.hosts[0]->greylist_seen[0].first, "probe.example");
  EXPECT_EQ(rback.hosts[0]->greylist_seen[0].second, 42);
  EXPECT_EQ(rback.hosts[0]->flaky_rng, (std::array<std::uint64_t, 4>{1, 2, 3, 4}));
  EXPECT_FALSE(rback.hosts[1].has_value());
}

TEST(DistProtocol, ShutdownFrameDecodes) {
  const std::string frame = encode_shutdown();
  MessageView view(frame);
  EXPECT_EQ(view.type(), MsgType::Shutdown);
}

// --- frame verification ----------------------------------------------------

TEST(DistProtocol, RejectsTruncatedFrames) {
  const std::string frame = encode_hello({1, 0, 99});
  // Any prefix of a valid frame — including one shorter than the minimum
  // type byte + checksum — must be rejected, never misparsed.
  for (std::size_t keep = 0; keep < frame.size(); ++keep) {
    const std::string cut = frame.substr(0, keep);
    EXPECT_THROW(MessageView{cut}, ProtocolError) << "kept " << keep;
  }
}

TEST(DistProtocol, RejectsCorruptedBytes) {
  const std::string frame = encode_hello({1, 0, 99});
  for (std::size_t i = 0; i < frame.size(); ++i) {
    std::string bad = frame;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    EXPECT_THROW(MessageView{bad}, ProtocolError) << "flipped byte " << i;
  }
}

TEST(DistProtocol, RejectsUnknownTypeByte) {
  // A frame with a valid checksum but an alien type byte.
  MessageBuilder builder(static_cast<MsgType>(99));
  const std::string frame = builder.finish();
  EXPECT_THROW(MessageView{frame}, ProtocolError);
}

// --- pipe transport --------------------------------------------------------

struct PipePair {
  int fds[2];
  PipePair() { EXPECT_EQ(::pipe(fds), 0); }
  ~PipePair() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  void close_write() {
    ::close(fds[1]);
    fds[1] = -1;
  }
};

TEST(DistProtocol, ChannelRoundTripAndCleanEof) {
  PipePair pipe;
  Channel channel(pipe.fds[0], pipe.fds[1]);
  channel.send(encode_hello({5, 2, 77}));
  channel.send(encode_shutdown());

  std::string frame;
  ASSERT_TRUE(channel.receive(frame));
  MessageView hello(frame);
  EXPECT_EQ(hello.type(), MsgType::Hello);
  EXPECT_EQ(decode_hello(hello).worker, 5u);
  ASSERT_TRUE(channel.receive(frame));
  EXPECT_EQ(MessageView(frame).type(), MsgType::Shutdown);

  // EOF at a frame boundary is a clean end-of-stream, not an error.
  pipe.close_write();
  EXPECT_FALSE(channel.receive(frame));
}

TEST(DistProtocol, ChannelRejectsMidFrameEof) {
  {
    // Writer dies after half the length prefix.
    PipePair pipe;
    Channel channel(pipe.fds[0], pipe.fds[1]);
    const char half[2] = {4, 0};
    ASSERT_EQ(::write(pipe.fds[1], half, 2), 2);
    pipe.close_write();
    std::string frame;
    EXPECT_THROW(channel.receive(frame), ProtocolError);
  }
  {
    // Prefix promises more bytes than ever arrive.
    PipePair pipe;
    Channel channel(pipe.fds[0], pipe.fds[1]);
    const unsigned char prefix[4] = {100, 0, 0, 0};
    ASSERT_EQ(::write(pipe.fds[1], prefix, 4), 4);
    ASSERT_EQ(::write(pipe.fds[1], "abc", 3), 3);
    pipe.close_write();
    std::string frame;
    EXPECT_THROW(channel.receive(frame), ProtocolError);
  }
}

TEST(DistProtocol, ChannelRejectsInsaneLengthPrefix) {
  PipePair pipe;
  Channel channel(pipe.fds[0], pipe.fds[1]);
  const unsigned char huge[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::write(pipe.fds[1], huge, 4), 4);
  std::string frame;
  EXPECT_THROW(channel.receive(frame), ProtocolError);

  PipePair zero;
  Channel zchannel(zero.fds[0], zero.fds[1]);
  const unsigned char none[4] = {0, 0, 0, 0};
  ASSERT_EQ(::write(zero.fds[1], none, 4), 4);
  EXPECT_THROW(zchannel.receive(frame), ProtocolError);
}

// --- ownership partition ---------------------------------------------------

std::vector<util::IpAddress> addresses(std::size_t n) {
  std::vector<util::IpAddress> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(util::IpAddress::v4(10, 0, static_cast<std::uint8_t>(i / 256),
                                      static_cast<std::uint8_t>(i % 256)));
  }
  return out;
}

TEST(DistPartition, CutsMatchTheThreadPoolSplit) {
  // 10 addresses over 3 workers: base 3, one extra → shard sizes 4, 3, 3,
  // so the boundary addresses are [4] and [7].
  const auto addrs = addresses(10);
  const auto cuts = partition_cuts(addrs, 3);
  ASSERT_EQ(cuts.size(), 2u);
  EXPECT_EQ(cuts[0], addrs[4]);
  EXPECT_EQ(cuts[1], addrs[7]);

  const std::size_t expected_owner[10] = {0, 0, 0, 0, 1, 1, 1, 2, 2, 2};
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    EXPECT_EQ(owner_of(cuts, addrs[i]), expected_owner[i]) << "address " << i;
  }
}

TEST(DistPartition, IsDeterministicAndContiguous) {
  const auto addrs = addresses(1000);
  const auto cuts = partition_cuts(addrs, 7);
  EXPECT_EQ(cuts, partition_cuts(addrs, 7));
  ASSERT_EQ(cuts.size(), 6u);

  // Owners are non-decreasing over the sorted list and every worker gets a
  // near-equal contiguous range (1000 = 7*142 + 6 → six shards of 143).
  std::vector<std::size_t> sizes(7, 0);
  std::size_t prev = 0;
  for (const auto& addr : addrs) {
    const std::size_t owner = owner_of(cuts, addr);
    ASSERT_GE(owner, prev);
    ASSERT_LT(owner, 7u);
    prev = owner;
    ++sizes[owner];
  }
  for (std::size_t w = 0; w < 7; ++w) {
    EXPECT_EQ(sizes[w], w < 6 ? 143u : 142u) << "worker " << w;
  }
}

TEST(DistPartition, FewerAddressesThanWorkersShrinksTheShardCount) {
  const auto addrs = addresses(2);
  const auto cuts = partition_cuts(addrs, 5);
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_EQ(owner_of(cuts, addrs[0]), 0u);
  EXPECT_EQ(owner_of(cuts, addrs[1]), 1u);

  EXPECT_TRUE(partition_cuts({}, 4).empty());
  EXPECT_TRUE(partition_cuts(addresses(9), 1).empty());
}

// --- degradation accounting ------------------------------------------------

TEST(DistBudget, ReportAggregatesAndRenders) {
  DistReport report;
  report.workers.resize(3);
  report.workers[0].restarts = 2;
  report.workers[1].restarts = 4;
  report.workers[1].abandoned = true;
  report.workers[1].items_lost = 950;
  report.workers[2].restarts = 0;

  EXPECT_EQ(report.total_restarts(), 6u);
  EXPECT_EQ(report.abandoned_count(), 1u);
  EXPECT_EQ(report.items_lost(), 950u);

  const std::string table = report.summary();
  EXPECT_NE(table.find("950"), std::string::npos);
  EXPECT_NE(table.find("abandoned"), std::string::npos);
  EXPECT_NE(table.find("inconclusive"), std::string::npos);

  DistReport clean;
  clean.workers.resize(2);
  EXPECT_EQ(clean.total_restarts(), 0u);
  EXPECT_EQ(clean.abandoned_count(), 0u);
  EXPECT_EQ(clean.items_lost(), 0u);
}

}  // namespace
}  // namespace spfail::dist
