// The checkpoint wire format: codec primitives, StudySnapshot round-trips,
// and the decode-side rejections (magic, version, checksum, truncation,
// trailing bytes) that keep a corrupt or future snapshot from loading.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "snapshot/snapshot.hpp"

namespace spfail::snapshot {
namespace {

TEST(SnapshotCodec, ScalarsRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(0.17);
  w.boolean(true);
  w.boolean(false);
  w.str("hello");
  w.str("");
  w.str(std::string_view("nul\0inside", 10));

  Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), 0.17);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), std::string("nul\0inside", 10));
  EXPECT_TRUE(r.done());
  EXPECT_NO_THROW(r.expect_done());
}

TEST(SnapshotCodec, LittleEndianOnTheWire) {
  Writer w;
  w.u32(0x01020304u);
  const std::string& bytes = w.bytes();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(static_cast<std::uint8_t>(bytes[0]), 0x04);
  EXPECT_EQ(static_cast<std::uint8_t>(bytes[3]), 0x01);
}

TEST(SnapshotCodec, TruncationThrows) {
  Writer w;
  w.u64(7);
  const std::string bytes = w.take();
  Reader r(std::string_view(bytes).substr(0, 5));
  EXPECT_THROW(r.u64(), SnapshotError);
}

TEST(SnapshotCodec, TruncatedStringThrows) {
  Writer w;
  w.str("measurement");
  std::string bytes = w.take();
  bytes.resize(bytes.size() - 3);
  Reader r(bytes);
  EXPECT_THROW(r.str(), SnapshotError);
}

TEST(SnapshotCodec, TrailingBytesThrow) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r(w.bytes());
  r.u8();
  EXPECT_FALSE(r.done());
  EXPECT_THROW(r.expect_done(), SnapshotError);
}

TEST(SnapshotCodec, InvalidBooleanByteThrows) {
  Writer w;
  w.u8(2);
  Reader r(w.bytes());
  EXPECT_THROW(r.boolean(), SnapshotError);
}

TEST(SnapshotCodec, NegativeAndLargeF64RoundTrip) {
  Writer w;
  w.f64(-1234.5678);
  w.f64(1e300);
  w.f64(0.0);
  Reader r(w.bytes());
  EXPECT_EQ(r.f64(), -1234.5678);
  EXPECT_EQ(r.f64(), 1e300);
  EXPECT_EQ(r.f64(), 0.0);
}

// A snapshot exercising every optional branch of the format: both probe
// kinds, v4 and v6 addresses, greylist host state, trace frames.
StudySnapshot sample_snapshot() {
  StudySnapshot snap;
  snap.meta.kind = SnapshotKind::Study;
  snap.meta.fleet_seed = 2021;
  snap.meta.scale = 0.01;
  snap.meta.study_seed = 20211011;
  snap.meta.fault_seed = 0xFA171;
  snap.meta.fault_rate = 0.02;
  snap.meta.tracing = true;

  snap.rounds_done = 3;
  snap.clock_now = 123456789;
  snap.loss_rng = {1, 2, 3, 4};
  snap.suites_issued = 4;

  snap.initial.suite_label = "suite-1";
  scan::AddressOutcome outcome;
  outcome.address = util::IpAddress::v4(11, 0, 0, 1);
  scan::ProbeResult nomsg;
  nomsg.kind = scan::TestKind::NoMsg;
  nomsg.status = scan::ProbeStatus::SpfMeasured;
  nomsg.target = outcome.address;
  nomsg.mail_from_domain = dns::Name::lenient("probe.example.org");
  nomsg.behaviors = {spfvuln::SpfBehavior::VulnerableLibspf2};
  nomsg.saw_policy_fetch = true;
  nomsg.failing_code = 550;
  nomsg.accepted_username = "u";
  nomsg.injected = faults::FaultKind::SmtpTempfail;
  outcome.nomsg = nomsg;
  outcome.verdict = scan::AddressVerdict::Measured;
  outcome.behaviors = nomsg.behaviors;
  outcome.probe_attempts = 2;
  outcome.retries_used = 1;
  outcome.saw_transient = true;
  snap.initial.addresses.emplace(outcome.address, outcome);

  scan::DomainOutcome domain;
  domain.domain = "example.org";
  domain.addresses = {outcome.address};
  domain.any_measured = true;
  domain.vulnerable = true;
  domain.behaviors = {spfvuln::SpfBehavior::VulnerableLibspf2};
  snap.initial.domains.push_back(domain);
  snap.initial.degradation.probe_attempts = 9;

  snap.degradation.probe_attempts = 11;
  snap.degradation.retries = 2;
  snap.remeasurable_resolved_vulnerable = 1;
  snap.remeasurable.emplace_back(util::IpAddress::v4(11, 0, 0, 2), 6);
  snap.blacklisted.push_back(outcome.address);
  snap.patched.push_back(util::IpAddress::v4(11, 0, 0, 3));
  snap.series.push_back({longitudinal::Observation::Vulnerable,
                         longitudinal::Observation::Inconclusive,
                         longitudinal::Observation::Compliant});

  StudySnapshot::HostState host;
  host.address = outcome.address;
  host.greylist_seen.emplace_back("198.51.100.10", 42);
  host.flaky_rng = {5, 6, 7, 8};
  snap.hosts.push_back(host);

  net::Frame frame;
  frame.time = 17;
  frame.lane = 3;
  frame.src = "198.51.100.10";
  frame.dst = "11.0.0.1";
  frame.direction = net::Direction::ClientToServer;
  frame.kind = net::FrameKind::SmtpCommand;
  frame.verb = "MAIL";
  frame.text = "MAIL FROM:<x@y>";
  snap.trace.push_back(frame);
  return snap;
}

TEST(Snapshot, EncodeDecodeRoundTripsEveryField) {
  const StudySnapshot snap = sample_snapshot();
  const std::string bytes = snap.encode();
  const StudySnapshot decoded = StudySnapshot::decode(bytes);

  EXPECT_EQ(decoded.meta, snap.meta);
  EXPECT_EQ(decoded.rounds_done, snap.rounds_done);
  EXPECT_EQ(decoded.clock_now, snap.clock_now);
  EXPECT_EQ(decoded.loss_rng, snap.loss_rng);
  EXPECT_EQ(decoded.suites_issued, snap.suites_issued);
  EXPECT_EQ(decoded.initial.suite_label, snap.initial.suite_label);
  ASSERT_EQ(decoded.initial.addresses.size(), 1u);
  const auto& outcome =
      decoded.initial.addresses.at(util::IpAddress::v4(11, 0, 0, 1));
  ASSERT_TRUE(outcome.nomsg.has_value());
  EXPECT_FALSE(outcome.blankmsg.has_value());
  EXPECT_EQ(outcome.nomsg->status, scan::ProbeStatus::SpfMeasured);
  EXPECT_EQ(outcome.nomsg->mail_from_domain.to_string(),
            snap.initial.addresses.begin()
                ->second.nomsg->mail_from_domain.to_string());
  EXPECT_EQ(outcome.nomsg->injected, faults::FaultKind::SmtpTempfail);
  EXPECT_EQ(outcome.probe_attempts, 2);
  ASSERT_EQ(decoded.initial.domains.size(), 1u);
  EXPECT_EQ(decoded.initial.domains[0].domain, "example.org");
  EXPECT_EQ(decoded.degradation.probe_attempts, 11u);
  EXPECT_EQ(decoded.remeasurable, snap.remeasurable);
  EXPECT_EQ(decoded.blacklisted, snap.blacklisted);
  EXPECT_EQ(decoded.patched, snap.patched);
  EXPECT_EQ(decoded.series, snap.series);
  ASSERT_EQ(decoded.hosts.size(), 1u);
  EXPECT_EQ(decoded.hosts[0].address, snap.hosts[0].address);
  EXPECT_EQ(decoded.hosts[0].greylist_seen, snap.hosts[0].greylist_seen);
  EXPECT_EQ(decoded.hosts[0].flaky_rng, snap.hosts[0].flaky_rng);
  ASSERT_EQ(decoded.trace.size(), 1u);
  EXPECT_EQ(decoded.trace[0].verb, "MAIL");

  // Canonical encoding: decoding and re-encoding reproduces the bytes.
  EXPECT_EQ(decoded.encode(), bytes);
}

// --- optional trailing metrics section (DESIGN.md §12) ----------------------

TEST(Snapshot, MetricsSectionRoundTripsWhenPresent) {
  StudySnapshot snap = sample_snapshot();
  snap.has_metrics = true;
  snap.metrics.counter("probe_attempts_total", {{"test", "NoMsg"}}) += 5;
  snap.metrics.gauge("study_round") = 3;
  snap.metrics.histogram("retry_backoff_sim_seconds").observe(480);
  snap.metric_lines = {"{\"phase\":\"initial\"}",
                       "{\"phase\":\"round\",\"round\":0}"};

  const std::string bytes = snap.encode();
  const StudySnapshot decoded = StudySnapshot::decode(bytes);
  EXPECT_TRUE(decoded.has_metrics);
  EXPECT_EQ(decoded.metrics, snap.metrics);
  EXPECT_EQ(decoded.metric_lines, snap.metric_lines);
  EXPECT_EQ(decoded.encode(), bytes);
}

TEST(Snapshot, DisabledMetricsLeaveTheWireFormatUntouched) {
  // A metrics-off snapshot must encode byte-identically no matter what the
  // (unused) metric fields hold — the trailing section is absent, not
  // zero-filled, so pre-metrics checkpoints and digests stay stable.
  const std::string baseline = sample_snapshot().encode();
  StudySnapshot off = sample_snapshot();
  off.metrics.counter("ghost") += 1;  // has_metrics stays false
  off.metric_lines = {"ghost line"};
  EXPECT_EQ(off.encode(), baseline);

  const StudySnapshot decoded = StudySnapshot::decode(baseline);
  EXPECT_FALSE(decoded.has_metrics);
  EXPECT_TRUE(decoded.metrics.empty());
  EXPECT_TRUE(decoded.metric_lines.empty());

  // And the with-metrics form is strictly longer: the section really is an
  // appended tail, not a rewrite of earlier fields.
  StudySnapshot on = sample_snapshot();
  on.has_metrics = true;
  EXPECT_GT(on.encode().size(), baseline.size());
}

TEST(Snapshot, RejectsCorruptMetricsSection) {
  StudySnapshot snap = sample_snapshot();
  snap.has_metrics = true;
  snap.metrics.counter("probe_attempts_total") += 1;
  std::string bytes = snap.encode();
  // Flip a byte inside the trailing section (near the end of the payload,
  // before the 8-byte checksum): the checksum rejects it.
  bytes[bytes.size() - 12] ^= 0x20;
  EXPECT_THROW(StudySnapshot::decode(bytes), SnapshotError);
}

TEST(Snapshot, RejectsBadMagic) {
  std::string bytes = sample_snapshot().encode();
  bytes[0] = 'X';
  EXPECT_THROW(StudySnapshot::decode(bytes), SnapshotError);
}

TEST(Snapshot, RejectsFutureFormatVersion) {
  std::string bytes = sample_snapshot().encode();
  // The u32 version sits right after the 8-byte magic.
  bytes[8] = static_cast<char>(kSnapshotVersion + 1);
  try {
    StudySnapshot::decode(bytes);
    FAIL() << "future version must not decode";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(Snapshot, RejectsCorruptPayload) {
  std::string bytes = sample_snapshot().encode();
  // Flip a byte deep inside the length-prefixed payload: the checksum check
  // must catch it before any field decoding is trusted.
  bytes[bytes.size() / 2] ^= 0x40;
  EXPECT_THROW(StudySnapshot::decode(bytes), SnapshotError);
}

TEST(Snapshot, RejectsTruncationAndTrailingBytes) {
  const std::string bytes = sample_snapshot().encode();
  EXPECT_THROW(
      StudySnapshot::decode(std::string_view(bytes).substr(0, bytes.size() / 2)),
      SnapshotError);
  EXPECT_THROW(StudySnapshot::decode(bytes + "x"), SnapshotError);
  EXPECT_THROW(StudySnapshot::decode(""), SnapshotError);
}

TEST(Snapshot, SaveAtomicallyAndLoadFileRoundTrip) {
  const std::string path = testing::TempDir() + "spfail_snapshot_test.bin";
  const std::string bytes = sample_snapshot().encode();
  save_atomically(path, bytes);
  EXPECT_EQ(load_file(path), bytes);

  // Overwrite in place — the rename must replace the previous snapshot.
  StudySnapshot second = sample_snapshot();
  second.rounds_done = 9;
  save_atomically(path, second.encode());
  EXPECT_EQ(StudySnapshot::decode(load_file(path)).rounds_done, 9u);

  // No temp file left behind.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(Snapshot, LoadFileReportsMissingFile) {
  EXPECT_THROW(load_file("/nonexistent/spfail.snapshot"), SnapshotError);
}

}  // namespace
}  // namespace spfail::snapshot
