#include <gtest/gtest.h>

#include "spf/macro.hpp"

namespace spfail::spf {
namespace {

MacroContext paper_context() {
  // The running example from section 2.2 of the paper:
  // sender user@example.com, client 203.0.113.7.
  MacroContext ctx;
  ctx.sender_local = "user";
  ctx.sender_domain = dns::Name::from_string("example.com");
  ctx.current_domain = dns::Name::from_string("example.com");
  ctx.client_ip = util::IpAddress::v4(203, 0, 113, 7);
  ctx.helo_domain = dns::Name::from_string("mta.sender.net");
  ctx.receiver_domain = dns::Name::from_string("rx.example.org");
  ctx.timestamp = 1633910400;
  return ctx;
}

// ------------------------------------------------------------- parsing

TEST(MacroParse, PlainLiteral) {
  const auto tokens = parse_macro_string("foo.example.com");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(std::get<MacroLiteral>(tokens[0]).text, "foo.example.com");
}

TEST(MacroParse, SimpleMacro) {
  const auto tokens = parse_macro_string("%{d}");
  ASSERT_EQ(tokens.size(), 1u);
  const auto& item = std::get<MacroItem>(tokens[0]);
  EXPECT_EQ(item.letter, 'd');
  EXPECT_FALSE(item.url_escape);
  EXPECT_EQ(item.keep, 0);
  EXPECT_FALSE(item.reverse);
  EXPECT_EQ(item.delimiters, ".");
}

TEST(MacroParse, Transformers) {
  const auto tokens = parse_macro_string("%{d2r}");
  const auto& item = std::get<MacroItem>(tokens[0]);
  EXPECT_EQ(item.keep, 2);
  EXPECT_TRUE(item.reverse);
}

TEST(MacroParse, UppercaseMeansUrlEscape) {
  const auto tokens = parse_macro_string("%{L}");
  const auto& item = std::get<MacroItem>(tokens[0]);
  EXPECT_EQ(item.letter, 'l');
  EXPECT_TRUE(item.url_escape);
}

TEST(MacroParse, CustomDelimiters) {
  const auto tokens = parse_macro_string("%{l1r-}");
  const auto& item = std::get<MacroItem>(tokens[0]);
  EXPECT_EQ(item.delimiters, "-");
  EXPECT_TRUE(item.reverse);
  EXPECT_EQ(item.keep, 1);
}

TEST(MacroParse, MixedLiteralsAndMacros) {
  const auto tokens = parse_macro_string("%{d1r}.foo.com");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_TRUE(std::holds_alternative<MacroItem>(tokens[0]));
  EXPECT_EQ(std::get<MacroLiteral>(tokens[1]).text, ".foo.com");
}

TEST(MacroParse, PercentEscapes) {
  const auto tokens = parse_macro_string("a%%b%_c%-d");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(std::get<MacroLiteral>(tokens[0]).text, "a%b c%20d");
}

TEST(MacroParse, ErrorBarePercentAtEnd) {
  EXPECT_THROW(parse_macro_string("foo%"), MacroSyntaxError);
}

TEST(MacroParse, ErrorInvalidEscape) {
  EXPECT_THROW(parse_macro_string("%x"), MacroSyntaxError);
}

TEST(MacroParse, ErrorUnterminatedBrace) {
  EXPECT_THROW(parse_macro_string("%{d1r"), MacroSyntaxError);
}

TEST(MacroParse, ErrorUnknownLetter) {
  EXPECT_THROW(parse_macro_string("%{q}"), MacroSyntaxError);
}

TEST(MacroParse, ErrorZeroDigits) {
  EXPECT_THROW(parse_macro_string("%{d0}"), MacroSyntaxError);
}

TEST(MacroParse, ErrorBadDelimiter) {
  EXPECT_THROW(parse_macro_string("%{d2r!}"), MacroSyntaxError);
}

// ------------------------------------------------------------- letters

TEST(MacroLetters, AllDocumentedValues) {
  const MacroContext ctx = paper_context();
  EXPECT_EQ(macro_letter_value('s', ctx), "user@example.com");
  EXPECT_EQ(macro_letter_value('l', ctx), "user");
  EXPECT_EQ(macro_letter_value('o', ctx), "example.com");
  EXPECT_EQ(macro_letter_value('d', ctx), "example.com");
  EXPECT_EQ(macro_letter_value('i', ctx), "203.0.113.7");
  EXPECT_EQ(macro_letter_value('v', ctx), "in-addr");
  EXPECT_EQ(macro_letter_value('h', ctx), "mta.sender.net");
  EXPECT_EQ(macro_letter_value('p', ctx), "unknown");
  EXPECT_EQ(macro_letter_value('c', ctx), "203.0.113.7");
  EXPECT_EQ(macro_letter_value('r', ctx), "rx.example.org");
  EXPECT_EQ(macro_letter_value('t', ctx), "1633910400");
}

TEST(MacroLetters, V6Forms) {
  MacroContext ctx = paper_context();
  ctx.client_ip = *util::IpAddress::parse("2001:db8::1");
  EXPECT_EQ(macro_letter_value('v', ctx), "ip6");
  EXPECT_EQ(macro_letter_value('i', ctx).substr(0, 7), "2.0.0.1");
}

// ------------------------------------------------------------- expansion
// The paper's own worked example (section 2.2), for user@example.com:
//   %{l}   -> user
//   %{d}   -> example.com
//   %{d2}  -> example.com
//   %{d1}  -> com
//   %{dr}  -> com.example
//   %{d1r} -> example

struct PaperExampleCase {
  const char* macro;
  const char* expected;
};

class PaperExamples : public ::testing::TestWithParam<PaperExampleCase> {};

TEST_P(PaperExamples, ExpandsAsInSection22) {
  const Rfc7208Expander expander;
  EXPECT_EQ(expander.expand(GetParam().macro, paper_context()),
            GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Section22, PaperExamples,
    ::testing::Values(PaperExampleCase{"%{l}", "user"},
                      PaperExampleCase{"%{d}", "example.com"},
                      PaperExampleCase{"%{d2}", "example.com"},
                      PaperExampleCase{"%{d1}", "com"},
                      PaperExampleCase{"%{dr}", "com.example"},
                      PaperExampleCase{"%{d1r}", "example"}));

TEST(MacroExpand, FullMechanismTarget) {
  const Rfc7208Expander expander;
  EXPECT_EQ(expander.expand("%{d1r}.foo.com", paper_context()),
            "example.foo.com");
}

TEST(MacroExpand, SenderMacro) {
  const Rfc7208Expander expander;
  EXPECT_EQ(expander.expand("%{s}", paper_context()), "user@example.com");
}

TEST(MacroExpand, UrlEscapingAppliesAfterTransform) {
  const Rfc7208Expander expander;
  MacroContext ctx = paper_context();
  ctx.sender_local = "u/s";
  EXPECT_EQ(expander.expand("%{L}", ctx), "u%2Fs");
}

TEST(MacroExpand, CustomDelimiterSplitsAndRejoinsWithDots) {
  const Rfc7208Expander expander;
  MacroContext ctx = paper_context();
  ctx.sender_local = "a-b-c";
  // RFC 7208 section 7.3: re-join always uses ".".
  EXPECT_EQ(expander.expand("%{l-}", ctx), "a.b.c");
  EXPECT_EQ(expander.expand("%{l1r-}", ctx), "a");
}

TEST(MacroExpand, KeepLargerThanPartsKeepsAll) {
  const Rfc7208Expander expander;
  EXPECT_EQ(expander.expand("%{d9}", paper_context()), "example.com");
  EXPECT_EQ(expander.expand("%{d9r}", paper_context()), "com.example");
}

TEST(MacroExpand, ExistsStyleMultiMacro) {
  const Rfc7208Expander expander;
  EXPECT_EQ(expander.expand("%{i}._spf.%{d}", paper_context()),
            "203.0.113.7._spf.example.com");
}

// Property: for any label count, reversal twice with no truncation is
// identity, and keep=count is identity.
class TransformerProperties : public ::testing::TestWithParam<int> {};

TEST_P(TransformerProperties, ReverseIsInvolutionAndKeepAllIsIdentity) {
  const int n = GetParam();
  std::string domain;
  for (int i = 0; i < n; ++i) {
    domain += static_cast<char>('a' + i);
    if (i + 1 < n) domain += '.';
  }
  MacroItem reverse_item;
  reverse_item.reverse = true;
  const std::string once = apply_transformers(domain, reverse_item);
  const std::string twice = apply_transformers(once, reverse_item);
  EXPECT_EQ(twice, domain);

  MacroItem keep_all;
  keep_all.keep = n;
  EXPECT_EQ(apply_transformers(domain, keep_all), domain);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TransformerProperties,
                         ::testing::Values(1, 2, 3, 5, 8, 20));

}  // namespace
}  // namespace spfail::spf
