// Additional check_host() conformance cases in the style of the OpenSPF
// community test suite: record selection, CNAME interactions, redirect
// chains, unknown modifiers, and qualifier semantics.
#include <gtest/gtest.h>

#include "dns/resolver.hpp"
#include "dns/server.hpp"
#include "dns/zonefile.hpp"
#include "spf/eval.hpp"

namespace spfail::spf {
namespace {

class ConformanceFixture : public ::testing::Test {
 protected:
  ConformanceFixture()
      : resolver_(server_, clock_, util::IpAddress::v4(10, 0, 0, 53)) {}

  void add(const char* origin, const std::string& text) {
    server_.add_zone(
        dns::parse_zone_text(text, dns::Name::from_string(origin)));
  }

  Result check(const char* domain, const char* ip,
               const char* local = "user") {
    Rfc7208Expander expander;
    Evaluator evaluator(resolver_, expander);
    CheckRequest request;
    request.sender_local = local;
    request.sender_domain = dns::Name::from_string(domain);
    request.client_ip = *util::IpAddress::parse(ip);
    return evaluator.check_host(request).result;
  }

  dns::AuthoritativeServer server_;
  util::SimClock clock_;
  dns::StubResolver resolver_;
};

// --------------------------------------------------------- record selection

TEST_F(ConformanceFixture, VersionTagMustBeExact) {
  add("sel1.example", R"(@ IN TXT "v=spf10 ip4:1.2.3.4 -all")");
  EXPECT_EQ(check("sel1.example", "1.2.3.4"), Result::None);
}

TEST_F(ConformanceFixture, VersionTagAloneIsValidRecord) {
  add("sel2.example", R"(@ IN TXT "v=spf1")");
  EXPECT_EQ(check("sel2.example", "1.2.3.4"), Result::Neutral);
}

TEST_F(ConformanceFixture, EmptyTxtIsNoRecord) {
  add("sel3.example", R"(@ IN TXT "")");
  EXPECT_EQ(check("sel3.example", "1.2.3.4"), Result::None);
}

TEST_F(ConformanceFixture, TwoSpfRecordsPermErrorEvenIfIdentical) {
  add("sel4.example", R"(
$ORIGIN sel4.example.
@ IN TXT "v=spf1 -all"
@ IN TXT "v=spf1 -all"
)");
  EXPECT_EQ(check("sel4.example", "1.2.3.4"), Result::PermError);
}

// --------------------------------------------------------- CNAME behaviour

TEST_F(ConformanceFixture, AMechanismFollowsCname) {
  add("cn.example", R"(
$ORIGIN cn.example.
@     IN TXT   "v=spf1 a:alias.cn.example -all"
alias IN CNAME real
real  IN A     192.0.2.77
)");
  EXPECT_EQ(check("cn.example", "192.0.2.77"), Result::Pass);
}

// --------------------------------------------------------- redirect chains

TEST_F(ConformanceFixture, TwoStepRedirectChain) {
  add("r1.example", R"(@ IN TXT "v=spf1 redirect=r2.example")");
  add("r2.example", R"(@ IN TXT "v=spf1 redirect=r3.example")");
  add("r3.example", R"(@ IN TXT "v=spf1 ip4:192.0.2.1 -all")");
  EXPECT_EQ(check("r1.example", "192.0.2.1"), Result::Pass);
  EXPECT_EQ(check("r1.example", "192.0.2.2"), Result::Fail);
}

TEST_F(ConformanceFixture, RedirectInheritsOriginalSenderForMacros) {
  // %{o} inside the redirected record must still be the ORIGINAL sender
  // domain, while %{d} becomes the redirect target.
  add("rm.example", R"(@ IN TXT "v=spf1 redirect=target.example")");
  add("target.example", R"(
$ORIGIN target.example.
@ IN TXT "v=spf1 exists:%{o}.allow.target.example -all"
rm.example.allow IN A 127.0.0.2
)");
  EXPECT_EQ(check("rm.example", "9.9.9.9"), Result::Pass);
}

// --------------------------------------------------------- modifiers

TEST_F(ConformanceFixture, UnknownModifierIgnoredEvenWithMacro) {
  add("um.example",
      R"(@ IN TXT "v=spf1 custom=%{d}.x ip4:192.0.2.1 -all")");
  EXPECT_EQ(check("um.example", "192.0.2.1"), Result::Pass);
}

TEST_F(ConformanceFixture, ExpDoesNotAffectResult) {
  add("exp.example",
      R"(@ IN TXT "v=spf1 -all exp=missing.exp.example")");
  EXPECT_EQ(check("exp.example", "1.2.3.4"), Result::Fail);
}

// --------------------------------------------------------- qualifiers

TEST_F(ConformanceFixture, DefaultQualifierIsPass) {
  add("q1.example", R"(@ IN TXT "v=spf1 ip4:192.0.2.1")");
  EXPECT_EQ(check("q1.example", "192.0.2.1"), Result::Pass);
}

TEST_F(ConformanceFixture, FirstMatchWins) {
  add("q2.example",
      R"(@ IN TXT "v=spf1 ?ip4:192.0.2.1 -ip4:192.0.2.1 +all")");
  EXPECT_EQ(check("q2.example", "192.0.2.1"), Result::Neutral);
}

// --------------------------------------------------------- sender identity

TEST_F(ConformanceFixture, LocalPartCaseAndContentPreserved) {
  add("lp.example", R"(
$ORIGIN lp.example.
@ IN TXT "v=spf1 exists:%{l}.who.lp.example -all"
john.doe.who IN A 127.0.0.2
)");
  EXPECT_EQ(check("lp.example", "5.5.5.5", "john.doe"), Result::Pass);
  EXPECT_EQ(check("lp.example", "5.5.5.5", "jane.doe"), Result::Fail);
}

// --------------------------------------------------------- include nuance

TEST_F(ConformanceFixture, IncludeSoftFailIsNoMatch) {
  add("is.example", R"(@ IN TXT "v=spf1 include:soft.example +all")");
  add("soft.example", R"(@ IN TXT "v=spf1 ~all")");
  EXPECT_EQ(check("is.example", "9.9.9.9"), Result::Pass);  // falls to +all
}

TEST_F(ConformanceFixture, NestedIncludesWithinBudget) {
  add("n0.example", R"(@ IN TXT "v=spf1 include:n1.example -all")");
  add("n1.example", R"(@ IN TXT "v=spf1 include:n2.example -all")");
  add("n2.example", R"(@ IN TXT "v=spf1 ip4:203.0.113.5 -all")");
  EXPECT_EQ(check("n0.example", "203.0.113.5"), Result::Pass);
}

TEST_F(ConformanceFixture, MinusIncludeQualifierOnMatch) {
  // "-include" means: if the included policy PASSES, the result is Fail.
  add("mi.example", R"(@ IN TXT "v=spf1 -include:bad.example +all")");
  add("bad.example", R"(@ IN TXT "v=spf1 ip4:198.51.100.1 -all")");
  EXPECT_EQ(check("mi.example", "198.51.100.1"), Result::Fail);
  EXPECT_EQ(check("mi.example", "198.51.100.2"), Result::Pass);
}

// --------------------------------------------------------- ip edge cases

TEST_F(ConformanceFixture, Ip4ZeroPrefixMatchesEverything) {
  add("z.example", R"(@ IN TXT "v=spf1 ip4:0.0.0.0/0 -all")");
  EXPECT_EQ(check("z.example", "8.8.8.8"), Result::Pass);
}

TEST_F(ConformanceFixture, Ip6MechanismIgnoredForV4Client) {
  add("v6.example", R"(@ IN TXT "v=spf1 ip6:::1/128 -all")");
  EXPECT_EQ(check("v6.example", "127.0.0.1"), Result::Fail);
}

}  // namespace
}  // namespace spfail::spf
