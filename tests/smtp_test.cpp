#include <gtest/gtest.h>

#include "smtp/command.hpp"
#include "smtp/reply.hpp"
#include "smtp/server.hpp"

namespace spfail::smtp {
namespace {

// ------------------------------------------------------------- commands

TEST(Command, ParseHelo) {
  const Command c = parse_command("HELO mail.example.com");
  EXPECT_EQ(c.verb, Verb::Helo);
  EXPECT_EQ(c.argument, "mail.example.com");
}

TEST(Command, ParseEhloCaseInsensitive) {
  EXPECT_EQ(parse_command("ehlo x").verb, Verb::Ehlo);
  EXPECT_EQ(parse_command("EhLo x").verb, Verb::Ehlo);
}

TEST(Command, ParseMailFrom) {
  const Command c = parse_command("MAIL FROM:<user@example.com>");
  EXPECT_EQ(c.verb, Verb::MailFrom);
  EXPECT_EQ(c.argument, "user@example.com");
}

TEST(Command, ParseMailFromNullPath) {
  const Command c = parse_command("MAIL FROM:<>");
  EXPECT_EQ(c.verb, Verb::MailFrom);
  EXPECT_TRUE(c.argument.empty());
}

TEST(Command, ParseMailFromNoBrackets) {
  const Command c = parse_command("MAIL FROM: user@example.com");
  EXPECT_EQ(c.argument, "user@example.com");
}

TEST(Command, ParseRcptTo) {
  const Command c = parse_command("RCPT TO:<postmaster@target.org>");
  EXPECT_EQ(c.verb, Verb::RcptTo);
  EXPECT_EQ(c.argument, "postmaster@target.org");
}

TEST(Command, ParseSimpleVerbs) {
  EXPECT_EQ(parse_command("DATA").verb, Verb::Data);
  EXPECT_EQ(parse_command("QUIT").verb, Verb::Quit);
  EXPECT_EQ(parse_command("RSET").verb, Verb::Rset);
  EXPECT_EQ(parse_command("NOOP").verb, Verb::Noop);
}

TEST(Command, UnknownVerb) {
  EXPECT_EQ(parse_command("FROB x").verb, Verb::Unknown);
  EXPECT_EQ(parse_command("").verb, Verb::Unknown);
  EXPECT_EQ(parse_command("DATAX").verb, Verb::Unknown);
}

TEST(Command, SplitMailbox) {
  const auto parts = split_mailbox("user@Example.COM");
  ASSERT_TRUE(parts.has_value());
  EXPECT_EQ(parts->local, "user");
  EXPECT_EQ(parts->domain, "example.com");
}

TEST(Command, SplitMailboxInvalid) {
  EXPECT_FALSE(split_mailbox("no-at-sign").has_value());
  EXPECT_FALSE(split_mailbox("@domain").has_value());
  EXPECT_FALSE(split_mailbox("user@").has_value());
}

TEST(Command, SplitMailboxLastAtWins) {
  const auto parts = split_mailbox(R"("odd@local"@example.com)");
  ASSERT_TRUE(parts.has_value());
  EXPECT_EQ(parts->domain, "example.com");
}

// ------------------------------------------------------------- replies

TEST(Reply, Categories) {
  EXPECT_TRUE(replies::ok().positive());
  EXPECT_TRUE(replies::start_mail_input().intermediate());
  EXPECT_TRUE(replies::greylisted().transient_failure());
  EXPECT_TRUE(replies::mailbox_unavailable().permanent_failure());
}

TEST(Reply, LineFormat) {
  const Reply reply{250, "OK"};
  EXPECT_EQ(reply.line(), "250 OK");
}

// ------------------------------------------------------------- server FSM

// A handler that accepts everything and records what it saw.
class RecordingHandler : public SessionHandler {
 public:
  Reply on_hello(const std::string& identity, const util::IpAddress&) override {
    hello_identity = identity;
    return replies::ok();
  }
  Reply on_mail_from(const std::string& local, const std::string& domain,
                     const util::IpAddress&) override {
    sender = local + "@" + domain;
    return replies::ok();
  }
  Reply on_rcpt_to(const std::string& recipient,
                   const util::IpAddress&) override {
    recipients.push_back(recipient);
    return replies::ok();
  }
  Reply on_message(const Envelope& envelope, const util::IpAddress&) override {
    messages.push_back(envelope);
    return replies::ok();
  }

  std::string hello_identity;
  std::string sender;
  std::vector<std::string> recipients;
  std::vector<Envelope> messages;
};

class SessionFixture : public ::testing::Test {
 protected:
  SessionFixture() : session_(handler_, util::IpAddress::v4(10, 0, 0, 1)) {}
  RecordingHandler handler_;
  ServerSession session_;
};

TEST_F(SessionFixture, HappyPathTransaction) {
  EXPECT_EQ(session_.greeting().code, 220);
  EXPECT_EQ(session_.respond("EHLO client.example").code, 250);
  EXPECT_EQ(session_.respond("MAIL FROM:<a@b.com>").code, 250);
  EXPECT_EQ(session_.respond("RCPT TO:<c@d.com>").code, 250);
  EXPECT_EQ(session_.respond("DATA").code, 354);
  EXPECT_TRUE(session_.in_data());
  EXPECT_EQ(session_.respond("Subject: hi").code, kNoReplyCode);
  EXPECT_EQ(session_.respond("").code, kNoReplyCode);
  EXPECT_EQ(session_.respond("body line").code, kNoReplyCode);
  EXPECT_EQ(session_.respond(".").code, 250);
  EXPECT_EQ(session_.respond("QUIT").code, 221);
  EXPECT_TRUE(session_.closed());

  ASSERT_EQ(handler_.messages.size(), 1u);
  EXPECT_EQ(handler_.messages[0].sender_domain, "b.com");
  EXPECT_EQ(handler_.messages[0].data, "Subject: hi\n\nbody line\n");
  EXPECT_EQ(handler_.sender, "a@b.com");
}

TEST_F(SessionFixture, BlankMessage) {
  session_.respond("EHLO x");
  session_.respond("MAIL FROM:<a@b.com>");
  session_.respond("RCPT TO:<c@d.com>");
  session_.respond("DATA");
  EXPECT_EQ(session_.respond(".").code, 250);
  ASSERT_EQ(handler_.messages.size(), 1u);
  EXPECT_TRUE(handler_.messages[0].data.empty());
}

TEST_F(SessionFixture, DotStuffing) {
  session_.respond("EHLO x");
  session_.respond("MAIL FROM:<a@b.com>");
  session_.respond("RCPT TO:<c@d.com>");
  session_.respond("DATA");
  session_.respond("..leading dot");
  session_.respond(".");
  ASSERT_EQ(handler_.messages.size(), 1u);
  EXPECT_EQ(handler_.messages[0].data, ".leading dot\n");
}

TEST_F(SessionFixture, CommandsOutOfOrderRejected) {
  EXPECT_EQ(session_.respond("MAIL FROM:<a@b.com>").code, 503);
  session_.respond("EHLO x");
  EXPECT_EQ(session_.respond("RCPT TO:<c@d.com>").code, 503);
  EXPECT_EQ(session_.respond("DATA").code, 503);
  session_.respond("MAIL FROM:<a@b.com>");
  EXPECT_EQ(session_.respond("DATA").code, 503);  // still no RCPT
  EXPECT_EQ(session_.respond("MAIL FROM:<x@y.com>").code, 503);  // duplicate
}

TEST_F(SessionFixture, RsetClearsEnvelope) {
  session_.respond("EHLO x");
  session_.respond("MAIL FROM:<a@b.com>");
  session_.respond("RSET");
  EXPECT_EQ(session_.respond("MAIL FROM:<e@f.com>").code, 250);
}

TEST_F(SessionFixture, NullReversePathAccepted) {
  session_.respond("EHLO x");
  EXPECT_EQ(session_.respond("MAIL FROM:<>").code, 250);
  EXPECT_EQ(handler_.sender, "@");  // empty local + domain recorded
}

TEST_F(SessionFixture, MalformedMailboxRejected) {
  session_.respond("EHLO x");
  EXPECT_EQ(session_.respond("MAIL FROM:<no-at>").code, 501);
}

TEST_F(SessionFixture, UnknownCommandGets500) {
  EXPECT_EQ(session_.respond("FROBNICATE").code, 500);
}

TEST_F(SessionFixture, MultipleRecipients) {
  session_.respond("EHLO x");
  session_.respond("MAIL FROM:<a@b.com>");
  EXPECT_EQ(session_.respond("RCPT TO:<r1@d.com>").code, 250);
  EXPECT_EQ(session_.respond("RCPT TO:<r2@d.com>").code, 250);
  session_.respond("DATA");
  session_.respond(".");
  ASSERT_EQ(handler_.messages.size(), 1u);
  EXPECT_EQ(handler_.messages[0].recipients.size(), 2u);
}

// Handler rejection paths.
class RejectingHandler : public RecordingHandler {
 public:
  Reply on_rcpt_to(const std::string& recipient,
                   const util::IpAddress& client) override {
    RecordingHandler::on_rcpt_to(recipient, client);
    return replies::mailbox_unavailable();
  }
};

TEST(Session, RecipientRejectionKeepsSessionOpen) {
  RejectingHandler handler;
  ServerSession session(handler, util::IpAddress::v4(10, 0, 0, 1));
  session.respond("EHLO x");
  session.respond("MAIL FROM:<a@b.com>");
  EXPECT_EQ(session.respond("RCPT TO:<u1@d.com>").code, 550);
  EXPECT_EQ(session.respond("RCPT TO:<u2@d.com>").code, 550);
  EXPECT_FALSE(session.closed());
  // The username ladder relies on DATA still being refused with no RCPT.
  EXPECT_EQ(session.respond("DATA").code, 503);
}

class ShuttingDownHandler : public RecordingHandler {
 public:
  Reply on_hello(const std::string&, const util::IpAddress&) override {
    return replies::service_unavailable();
  }
};

TEST(Session, Handler421ClosesSession) {
  ShuttingDownHandler handler;
  ServerSession session(handler, util::IpAddress::v4(10, 0, 0, 1));
  EXPECT_EQ(session.respond("EHLO x").code, 421);
  EXPECT_TRUE(session.closed());
  EXPECT_EQ(session.respond("MAIL FROM:<a@b.com>").code, 503);
}

}  // namespace
}  // namespace spfail::smtp
