// dmarc::Evaluator: aligned-pass logic, disposition mapping, and — the bug
// this layer fixed — pct= sampling. Record::percent used to be parsed and
// then never consulted: every p=reject record enforced at 100% regardless of
// pct=. The evaluator now samples deterministically per message identity and
// downgrades the policy for sampled-out mail (RFC 7489 §6.6.4: reject →
// quarantine, quarantine → none).
#include <gtest/gtest.h>

#include <string>

#include "dkim/dkim.hpp"
#include "dmarc/evaluator.hpp"
#include "dns/server.hpp"
#include "dns/resolver.hpp"
#include "util/clock.hpp"

namespace spfail {
namespace {

class DmarcEvaluatorFixture : public ::testing::Test {
 protected:
  // Publish a _dmarc record for `domain` inside the example.org zone.
  void publish(const std::string& domain, const std::string& txt) {
    dns::Zone zone(dns::Name::from_string(domain));
    zone.add(dns::ResourceRecord::txt(
        dns::Name::from_string("_dmarc." + domain), txt));
    server_.add_zone(std::move(zone));
  }

  dmarc::EvaluationInput failing_input(const std::string& from_domain) {
    dmarc::EvaluationInput input;
    input.spf_result = spf::Result::Fail;
    input.spf_domain = dns::Name::from_string(from_domain);
    input.from_domain = dns::Name::from_string(from_domain);
    return input;
  }

  dmarc::Evaluation evaluate(const dmarc::EvaluationInput& input,
                             std::uint64_t seed = 7) {
    dns::StubResolver resolver(server_, clock_,
                               util::IpAddress::v4(192, 0, 2, 9));
    const dmarc::Evaluator evaluator(resolver, seed);
    return evaluator.evaluate(input);
  }

  dns::AuthoritativeServer server_;
  util::SimClock clock_;
};

TEST_F(DmarcEvaluatorFixture, NoRecordMeansDeliver) {
  const dmarc::Evaluation eval = evaluate(failing_input("norecord.example"));
  EXPECT_FALSE(eval.has_record);
  EXPECT_FALSE(eval.pass);
  EXPECT_EQ(eval.disposition, dmarc::Disposition::Deliver);
}

TEST_F(DmarcEvaluatorFixture, AlignedSpfPassDelivers) {
  publish("pass.example", "v=DMARC1; p=reject");
  dmarc::EvaluationInput input = failing_input("pass.example");
  input.spf_result = spf::Result::Pass;
  const dmarc::Evaluation eval = evaluate(input);
  EXPECT_TRUE(eval.has_record);
  EXPECT_TRUE(eval.spf_aligned_pass);
  EXPECT_TRUE(eval.pass);
  EXPECT_EQ(eval.disposition, dmarc::Disposition::Deliver);
}

TEST_F(DmarcEvaluatorFixture, AlignedDkimRescuesSpfFailure) {
  publish("signed.example", "v=DMARC1; p=reject");
  dmarc::EvaluationInput input = failing_input("signed.example");
  input.dkim_result = dkim::VerifyResult::Pass;
  input.dkim_domain = dns::Name::from_string("signed.example");
  const dmarc::Evaluation eval = evaluate(input);
  EXPECT_FALSE(eval.spf_aligned_pass);
  EXPECT_TRUE(eval.dkim_aligned_pass);
  EXPECT_TRUE(eval.pass);
  EXPECT_EQ(eval.disposition, dmarc::Disposition::Deliver);
}

TEST_F(DmarcEvaluatorFixture, MisalignedDkimDoesNotRescue) {
  publish("victim.example", "v=DMARC1; p=reject");
  dmarc::EvaluationInput input = failing_input("victim.example");
  input.dkim_result = dkim::VerifyResult::Pass;
  input.dkim_domain = dns::Name::from_string("esp-mail.example");
  const dmarc::Evaluation eval = evaluate(input);
  EXPECT_FALSE(eval.dkim_aligned_pass);
  EXPECT_FALSE(eval.pass);
  EXPECT_EQ(eval.disposition, dmarc::Disposition::Reject);
  EXPECT_EQ(eval.applied_policy, dmarc::Policy::Reject);
}

TEST_F(DmarcEvaluatorFixture, StrictSpfAlignmentRejectsSubdomainMatch) {
  // aspf=s: an organizational-domain SPF pass no longer aligns.
  publish("strict.example", "v=DMARC1; p=reject; aspf=s");
  dmarc::EvaluationInput input = failing_input("strict.example");
  input.spf_result = spf::Result::Pass;
  input.spf_domain = dns::Name::from_string("mail.strict.example");
  const dmarc::Evaluation eval = evaluate(input);
  EXPECT_FALSE(eval.spf_aligned_pass);
  EXPECT_EQ(eval.disposition, dmarc::Disposition::Reject);
}

TEST_F(DmarcEvaluatorFixture, PctHundredAlwaysApplies) {
  publish("full.example", "v=DMARC1; p=reject; pct=100");
  const dmarc::Evaluation eval = evaluate(failing_input("full.example"));
  EXPECT_FALSE(eval.sampled_out);
  EXPECT_EQ(eval.disposition, dmarc::Disposition::Reject);
}

TEST_F(DmarcEvaluatorFixture, PctZeroDowngradesRejectToQuarantine) {
  // pct=0 samples every message out; §6.6.4 downgrades reject one notch.
  publish("zero.example", "v=DMARC1; p=reject; pct=0");
  const dmarc::Evaluation eval = evaluate(failing_input("zero.example"));
  EXPECT_TRUE(eval.has_record);
  EXPECT_TRUE(eval.sampled_out);
  EXPECT_EQ(eval.applied_policy, dmarc::Policy::Quarantine);
  EXPECT_EQ(eval.disposition, dmarc::Disposition::Quarantine);
}

TEST_F(DmarcEvaluatorFixture, PctZeroDowngradesQuarantineToNone) {
  publish("zeroq.example", "v=DMARC1; p=quarantine; pct=0");
  const dmarc::Evaluation eval = evaluate(failing_input("zeroq.example"));
  EXPECT_TRUE(eval.sampled_out);
  EXPECT_EQ(eval.applied_policy, dmarc::Policy::None);
  EXPECT_EQ(eval.disposition, dmarc::Disposition::Deliver);
}

TEST_F(DmarcEvaluatorFixture, PctSamplingIsDeterministicPerMessage) {
  publish("half.example", "v=DMARC1; p=reject; pct=50");
  const dmarc::EvaluationInput input = failing_input("half.example");
  const dmarc::Evaluation first = evaluate(input);
  for (int i = 0; i < 8; ++i) {
    const dmarc::Evaluation again = evaluate(input);
    EXPECT_EQ(again.sampled_out, first.sampled_out);
    EXPECT_EQ(again.disposition, first.disposition);
  }
}

TEST_F(DmarcEvaluatorFixture, PctFiftySplitsAcrossMessageIdentities) {
  // Regression for the parsed-but-ignored pct=: across many distinct sender
  // identities, a pct=50 policy must enforce on some and sample out others.
  publish("sampled.example", "v=DMARC1; p=reject; pct=50");
  int enforced = 0, sampled_out = 0;
  for (int i = 0; i < 64; ++i) {
    dmarc::EvaluationInput input = failing_input("sampled.example");
    input.spf_domain =
        dns::Name::from_string("s" + std::to_string(i) + ".example");
    const dmarc::Evaluation eval = evaluate(input);
    if (eval.sampled_out) {
      ++sampled_out;
      EXPECT_EQ(eval.disposition, dmarc::Disposition::Quarantine);
    } else {
      ++enforced;
      EXPECT_EQ(eval.disposition, dmarc::Disposition::Reject);
    }
  }
  EXPECT_GT(enforced, 8);
  EXPECT_GT(sampled_out, 8);
}

TEST_F(DmarcEvaluatorFixture, OrganizationalFallbackUsesSubdomainPolicy) {
  publish("org.example", "v=DMARC1; p=reject; sp=quarantine");
  dmarc::EvaluationInput input = failing_input("mail.org.example");
  const dmarc::Evaluation eval = evaluate(input);
  EXPECT_TRUE(eval.has_record);
  EXPECT_EQ(eval.disposition, dmarc::Disposition::Quarantine);
}

}  // namespace
}  // namespace spfail
