// Exhaustive to_string coverage for the scanner's and fault layer's enums:
// every enumerator renders a distinct, stable, non-"?" label. These strings
// are load-bearing — they appear in serialized determinism oracles, tables,
// and CSV exports, so a silent rename would corrupt downstream diffs.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "dmarc/record.hpp"
#include "faults/fault.hpp"
#include "faults/retry.hpp"
#include "obs/metrics.hpp"
#include "population/policy_mix.hpp"
#include "scan/campaign.hpp"
#include "scan/prober.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "snapshot/enums.hpp"
#include "snapshot/snapshot.hpp"

namespace spfail {
namespace {

// All labels distinct, none the "?" fallback.
void expect_distinct(const std::vector<std::string>& labels) {
  std::set<std::string> seen;
  for (const std::string& label : labels) {
    EXPECT_NE(label, "?");
    EXPECT_FALSE(label.empty());
    EXPECT_TRUE(seen.insert(label).second) << "duplicate label " << label;
  }
}

TEST(EnumStrings, ProbeStatusCoversEveryEnumerator) {
  using scan::ProbeStatus;
  EXPECT_EQ(to_string(ProbeStatus::ConnectionRefused), "connection-refused");
  EXPECT_EQ(to_string(ProbeStatus::SmtpFailure), "smtp-failure");
  EXPECT_EQ(to_string(ProbeStatus::Greylisted), "greylisted");
  EXPECT_EQ(to_string(ProbeStatus::TempFailed), "temp-failed");
  EXPECT_EQ(to_string(ProbeStatus::Dropped), "dropped");
  EXPECT_EQ(to_string(ProbeStatus::SpfMeasured), "spf-measured");
  EXPECT_EQ(to_string(ProbeStatus::SpfNotMeasured), "spf-not-measured");
  expect_distinct({to_string(ProbeStatus::ConnectionRefused),
                   to_string(ProbeStatus::SmtpFailure),
                   to_string(ProbeStatus::Greylisted),
                   to_string(ProbeStatus::TempFailed),
                   to_string(ProbeStatus::Dropped),
                   to_string(ProbeStatus::SpfMeasured),
                   to_string(ProbeStatus::SpfNotMeasured)});
  // The transiency predicate and the labels stay in sync: exactly the three
  // retryable statuses.
  EXPECT_TRUE(scan::is_transient(ProbeStatus::Greylisted));
  EXPECT_TRUE(scan::is_transient(ProbeStatus::TempFailed));
  EXPECT_TRUE(scan::is_transient(ProbeStatus::Dropped));
  EXPECT_FALSE(scan::is_transient(ProbeStatus::ConnectionRefused));
  EXPECT_FALSE(scan::is_transient(ProbeStatus::SmtpFailure));
  EXPECT_FALSE(scan::is_transient(ProbeStatus::SpfMeasured));
  EXPECT_FALSE(scan::is_transient(ProbeStatus::SpfNotMeasured));
}

TEST(EnumStrings, AddressVerdictCoversEveryEnumerator) {
  using scan::AddressVerdict;
  EXPECT_EQ(to_string(AddressVerdict::Refused), "refused");
  EXPECT_EQ(to_string(AddressVerdict::SmtpFailure), "smtp-failure");
  EXPECT_EQ(to_string(AddressVerdict::Measured), "measured");
  EXPECT_EQ(to_string(AddressVerdict::NotMeasured), "not-measured");
  expect_distinct({to_string(AddressVerdict::Refused),
                   to_string(AddressVerdict::SmtpFailure),
                   to_string(AddressVerdict::Measured),
                   to_string(AddressVerdict::NotMeasured)});
}

TEST(EnumStrings, TestKindCoversEveryEnumerator) {
  using scan::TestKind;
  EXPECT_EQ(to_string(TestKind::NoMsg), "NoMsg");
  EXPECT_EQ(to_string(TestKind::BlankMsg), "BlankMsg");
  expect_distinct({to_string(TestKind::NoMsg), to_string(TestKind::BlankMsg)});
}

TEST(EnumStrings, FaultKindCoversEveryEnumerator) {
  using faults::FaultKind;
  EXPECT_EQ(to_string(FaultKind::None), "none");
  EXPECT_EQ(to_string(FaultKind::SmtpTempfail), "smtp-tempfail");
  EXPECT_EQ(to_string(FaultKind::ConnectionDrop), "connection-drop");
  EXPECT_EQ(to_string(FaultKind::LatencySpike), "latency-spike");
  EXPECT_EQ(to_string(FaultKind::DnsServfail), "dns-servfail");
  EXPECT_EQ(to_string(FaultKind::DnsTimeout), "dns-timeout");
  EXPECT_EQ(to_string(FaultKind::LameDelegation), "lame-delegation");
  expect_distinct({to_string(FaultKind::None),
                   to_string(FaultKind::SmtpTempfail),
                   to_string(FaultKind::ConnectionDrop),
                   to_string(FaultKind::LatencySpike),
                   to_string(FaultKind::DnsServfail),
                   to_string(FaultKind::DnsTimeout),
                   to_string(FaultKind::LameDelegation)});
}

TEST(EnumStrings, SmtpStageCoversEveryEnumerator) {
  using faults::SmtpStage;
  EXPECT_EQ(to_string(SmtpStage::Helo), "helo");
  EXPECT_EQ(to_string(SmtpStage::MailFrom), "mail-from");
  EXPECT_EQ(to_string(SmtpStage::RcptTo), "rcpt-to");
  EXPECT_EQ(to_string(SmtpStage::Data), "data");
  expect_distinct({to_string(SmtpStage::Helo), to_string(SmtpStage::MailFrom),
                   to_string(SmtpStage::RcptTo), to_string(SmtpStage::Data)});
}

TEST(EnumStrings, RetryOutcomeCoversEveryEnumerator) {
  using faults::RetryOutcome;
  EXPECT_EQ(to_string(RetryOutcome::FirstTry), "first-try");
  EXPECT_EQ(to_string(RetryOutcome::Recovered), "recovered");
  EXPECT_EQ(to_string(RetryOutcome::Exhausted), "exhausted");
  expect_distinct({to_string(RetryOutcome::FirstTry),
                   to_string(RetryOutcome::Recovered),
                   to_string(RetryOutcome::Exhausted)});
}

TEST(EnumStrings, ObservationCoversEveryEnumerator) {
  using longitudinal::Observation;
  EXPECT_EQ(to_string(Observation::Vulnerable), "vulnerable");
  EXPECT_EQ(to_string(Observation::Compliant), "compliant");
  EXPECT_EQ(to_string(Observation::Inconclusive), "inconclusive");
  expect_distinct({to_string(Observation::Vulnerable),
                   to_string(Observation::Compliant),
                   to_string(Observation::Inconclusive)});
}

TEST(EnumStrings, MetricKindCoversEveryEnumerator) {
  using obs::MetricKind;
  EXPECT_EQ(to_string(MetricKind::Counter), "counter");
  EXPECT_EQ(to_string(MetricKind::Gauge), "gauge");
  EXPECT_EQ(to_string(MetricKind::Histogram), "histogram");
  expect_distinct({to_string(MetricKind::Counter), to_string(MetricKind::Gauge),
                   to_string(MetricKind::Histogram)});
}

TEST(EnumStrings, SnapshotKindCoversEveryEnumerator) {
  using snapshot::SnapshotKind;
  EXPECT_EQ(to_string(SnapshotKind::Campaign), "campaign");
  EXPECT_EQ(to_string(SnapshotKind::Study), "study");
  expect_distinct(
      {to_string(SnapshotKind::Campaign), to_string(SnapshotKind::Study)});
}

// --- snapshot wire bytes: every mapping round-trips exhaustively ------------

// encode_enum -> decode_* is the identity on every enumerator, wire bytes are
// dense and distinct, and the first unmapped byte is rejected. The wire byte
// values themselves are frozen at snapshot version 1 — these tests pin them.
template <typename Enum, typename Decode>
void expect_wire_round_trip(const std::vector<Enum>& enumerators,
                            Decode decode) {
  std::set<std::uint8_t> seen;
  for (const Enum v : enumerators) {
    const std::uint8_t wire = snapshot::encode_enum(v);
    EXPECT_TRUE(seen.insert(wire).second) << "duplicate wire byte";
    EXPECT_LT(wire, enumerators.size()) << "wire bytes must stay dense";
    EXPECT_EQ(decode(wire), v);
  }
  EXPECT_THROW(decode(static_cast<std::uint8_t>(enumerators.size())),
               snapshot::SnapshotError);
  EXPECT_THROW(decode(0xFF), snapshot::SnapshotError);
}

TEST(EnumStrings, SnapshotWireTestKind) {
  expect_wire_round_trip<scan::TestKind>(
      {scan::TestKind::NoMsg, scan::TestKind::BlankMsg},
      snapshot::decode_test_kind);
}

TEST(EnumStrings, SnapshotWireProbeStatus) {
  expect_wire_round_trip<scan::ProbeStatus>(
      {scan::ProbeStatus::ConnectionRefused, scan::ProbeStatus::SmtpFailure,
       scan::ProbeStatus::Greylisted, scan::ProbeStatus::TempFailed,
       scan::ProbeStatus::Dropped, scan::ProbeStatus::SpfMeasured,
       scan::ProbeStatus::SpfNotMeasured},
      snapshot::decode_probe_status);
}

TEST(EnumStrings, SnapshotWireAddressVerdict) {
  expect_wire_round_trip<scan::AddressVerdict>(
      {scan::AddressVerdict::Refused, scan::AddressVerdict::SmtpFailure,
       scan::AddressVerdict::Measured, scan::AddressVerdict::NotMeasured},
      snapshot::decode_address_verdict);
}

TEST(EnumStrings, SnapshotWireSpfBehavior) {
  expect_wire_round_trip<spfvuln::SpfBehavior>(
      {spfvuln::SpfBehavior::RfcCompliant,
       spfvuln::SpfBehavior::VulnerableLibspf2,
       spfvuln::SpfBehavior::PatchedLibspf2, spfvuln::SpfBehavior::NoExpansion,
       spfvuln::SpfBehavior::NoTruncation, spfvuln::SpfBehavior::NoReversal,
       spfvuln::SpfBehavior::NoTransformers,
       spfvuln::SpfBehavior::OtherErroneous},
      snapshot::decode_spf_behavior);
}

TEST(EnumStrings, SnapshotWireFaultKind) {
  expect_wire_round_trip<faults::FaultKind>(
      {faults::FaultKind::None, faults::FaultKind::SmtpTempfail,
       faults::FaultKind::ConnectionDrop, faults::FaultKind::LatencySpike,
       faults::FaultKind::DnsServfail, faults::FaultKind::DnsTimeout,
       faults::FaultKind::LameDelegation},
      snapshot::decode_fault_kind);
}

TEST(EnumStrings, SnapshotWireObservation) {
  expect_wire_round_trip<longitudinal::Observation>(
      {longitudinal::Observation::Vulnerable,
       longitudinal::Observation::Compliant,
       longitudinal::Observation::Inconclusive},
      snapshot::decode_observation);
}

TEST(EnumStrings, SnapshotWireDirection) {
  expect_wire_round_trip<net::Direction>(
      {net::Direction::ClientToServer, net::Direction::ServerToClient},
      snapshot::decode_direction);
}

TEST(EnumStrings, SnapshotWireFrameKind) {
  expect_wire_round_trip<net::FrameKind>(
      {net::FrameKind::SmtpCommand, net::FrameKind::SmtpReply,
       net::FrameKind::DnsQuery, net::FrameKind::DnsResponse},
      snapshot::decode_frame_kind);
}

TEST(EnumStrings, SnapshotWireFamily) {
  expect_wire_round_trip<util::IpAddress::Family>(
      {util::IpAddress::Family::V4, util::IpAddress::Family::V6},
      snapshot::decode_family);
}

// MetricKind's wire bytes are the enumerator values (1..3; 0 reserved), so
// they are not zero-based-dense like the enums above — pin them directly.
TEST(EnumStrings, SnapshotWireMetricKind) {
  using obs::MetricKind;
  std::set<std::uint8_t> seen;
  for (const MetricKind v :
       {MetricKind::Counter, MetricKind::Gauge, MetricKind::Histogram}) {
    const std::uint8_t wire = snapshot::encode_enum(v);
    EXPECT_EQ(wire, static_cast<std::uint8_t>(v));
    EXPECT_TRUE(seen.insert(wire).second) << "duplicate wire byte";
    EXPECT_EQ(snapshot::decode_metric_kind(wire), v);
  }
  EXPECT_EQ(snapshot::encode_enum(MetricKind::Counter), 1);
  EXPECT_EQ(snapshot::encode_enum(MetricKind::Gauge), 2);
  EXPECT_EQ(snapshot::encode_enum(MetricKind::Histogram), 3);
  EXPECT_THROW(snapshot::decode_metric_kind(0), snapshot::SnapshotError);
  EXPECT_THROW(snapshot::decode_metric_kind(4), snapshot::SnapshotError);
  EXPECT_THROW(snapshot::decode_metric_kind(0xFF), snapshot::SnapshotError);
}

// ---- scenario layer (DESIGN.md §17): exhaustive to_string/parse pairs ----

// Every enumerator round-trips through its strict parser, and unknown text
// throws — the labels ride in scenario tables and the --scenario grammar.

TEST(EnumStrings, DmarcPolicyRoundTrips) {
  using dmarc::Policy;
  for (const Policy v : {Policy::None, Policy::Quarantine, Policy::Reject}) {
    EXPECT_EQ(dmarc::parse_policy(to_string(v)), v);
  }
  expect_distinct({to_string(Policy::None), to_string(Policy::Quarantine),
                   to_string(Policy::Reject)});
  EXPECT_EQ(to_string(Policy::Reject), "reject");
  EXPECT_THROW(dmarc::parse_policy("block"), dmarc::RecordSyntaxError);
}

TEST(EnumStrings, DmarcAlignmentRoundTrips) {
  using dmarc::Alignment;
  for (const Alignment v : {Alignment::Relaxed, Alignment::Strict}) {
    EXPECT_EQ(dmarc::parse_alignment(to_string(v)), v);
  }
  expect_distinct(
      {to_string(Alignment::Relaxed), to_string(Alignment::Strict)});
  EXPECT_THROW(dmarc::parse_alignment("x"), dmarc::RecordSyntaxError);
}

TEST(EnumStrings, SenderSpfRoundTrips) {
  using population::SenderSpf;
  std::vector<std::string> labels;
  for (const SenderSpf v : {SenderSpf::Normal, SenderSpf::PlusAll,
                            SenderSpf::BroadCidr, SenderSpf::LongChain}) {
    EXPECT_EQ(population::parse_sender_spf(to_string(v)), v);
    labels.push_back(to_string(v));
  }
  expect_distinct(labels);
  EXPECT_THROW(population::parse_sender_spf("bogus"), std::invalid_argument);
}

TEST(EnumStrings, SenderDkimRoundTrips) {
  using population::SenderDkim;
  std::vector<std::string> labels;
  for (const SenderDkim v :
       {SenderDkim::None, SenderDkim::Aligned, SenderDkim::Misaligned}) {
    EXPECT_EQ(population::parse_sender_dkim(to_string(v)), v);
    labels.push_back(to_string(v));
  }
  expect_distinct(labels);
  EXPECT_THROW(population::parse_sender_dkim("bogus"), std::invalid_argument);
}

TEST(EnumStrings, SenderRoutingRoundTrips) {
  using population::SenderRouting;
  std::vector<std::string> labels;
  for (const SenderRouting v :
       {SenderRouting::Direct, SenderRouting::ForwardPlain,
        SenderRouting::ForwardSrs, SenderRouting::EspEnvelope}) {
    EXPECT_EQ(population::parse_sender_routing(to_string(v)), v);
    labels.push_back(to_string(v));
  }
  expect_distinct(labels);
  EXPECT_THROW(population::parse_sender_routing("bogus"),
               std::invalid_argument);
}

TEST(EnumStrings, ScenarioFocusRoundTrips) {
  using scenario::Focus;
  std::vector<std::string> labels;
  for (const Focus v : {Focus::Baseline, Focus::Forwarding, Focus::Alignment,
                        Focus::Misconfig}) {
    EXPECT_EQ(scenario::parse_focus(to_string(v)), v);
    labels.push_back(to_string(v));
  }
  expect_distinct(labels);
  EXPECT_THROW(scenario::parse_focus("bogus"), std::invalid_argument);
}

TEST(EnumStrings, ScenarioFlowClassRoundTrips) {
  using scenario::FlowClass;
  std::vector<std::string> labels;
  for (const FlowClass v :
       {FlowClass::Legit, FlowClass::Forwarded, FlowClass::Spoof}) {
    EXPECT_EQ(scenario::parse_flow_class(to_string(v)), v);
    labels.push_back(to_string(v));
  }
  expect_distinct(labels);
  EXPECT_THROW(scenario::parse_flow_class("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace spfail
