# End-to-end scan-service smoke test (DESIGN.md §18), run as a ctest entry:
#   1. uninterrupted service: 3 submitted jobs run to drain -> baseline
#      reports, events.log, metric files
#   2. the same script with SPFAIL_SVC_TEST_KILL killing the process
#      mid-job (after a job checkpoint, before the service state save —
#      the torn-tick race) -> exit 42
#   3. restart with identical flags -> drains
# Every report, the event log, and both metric files from the killed+
# restarted service must be byte-identical to the uninterrupted baseline.
#
# Expects: -DSPFAIL_SVC=<path to spfail_svc> -DWORK_DIR=<scratch dir>
if(NOT SPFAIL_SVC OR NOT WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DSPFAIL_SVC=... -DWORK_DIR=... -P svc_smoke.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# Three jobs: two contending for one explicit /24 (so the admission log has
# deferrals in it), one scheduled later via `at`.
file(WRITE "${WORK_DIR}/control.txt" "\
submit alpha scale 0.004 nets 7
submit beta scale 0.004 seed 5 nets 7
at 2 submit gamma scale 0.004 seed 9 scenario forwarding scenario-rounds 3
drain
")

set(FLAGS --control control.txt --bucket-capacity 1 --max-active-jobs 2
    --metrics metrics.jsonl)

# 1. Uninterrupted baseline into its own state dir.
execute_process(
  COMMAND "${SPFAIL_SVC}" --dir base ${FLAGS}
  WORKING_DIRECTORY "${WORK_DIR}"
  OUTPUT_QUIET ERROR_QUIET
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "uninterrupted service failed (exit ${rc})")
endif()
file(RENAME "${WORK_DIR}/metrics.jsonl" "${WORK_DIR}/metrics_base.jsonl")
file(RENAME "${WORK_DIR}/metrics.jsonl.prom" "${WORK_DIR}/metrics_base.prom")

# 2. Same script, killed mid-job on tick 3 right after a job checkpoint —
# the job's checkpoint is then AHEAD of the last service state save.
set(ENV{SPFAIL_SVC_TEST_KILL} "3:ckpt")
execute_process(
  COMMAND "${SPFAIL_SVC}" --dir killed ${FLAGS}
  WORKING_DIRECTORY "${WORK_DIR}"
  OUTPUT_QUIET ERROR_QUIET
  RESULT_VARIABLE rc)
unset(ENV{SPFAIL_SVC_TEST_KILL})
if(NOT rc EQUAL 42)
  message(FATAL_ERROR "test kill did not fire (exit ${rc}, expected 42)")
endif()
if(NOT EXISTS "${WORK_DIR}/killed/svc_state")
  message(FATAL_ERROR "killed service left no state file")
endif()

# 3. Restart with identical flags; it must resume and drain.
execute_process(
  COMMAND "${SPFAIL_SVC}" --dir killed ${FLAGS}
  WORKING_DIRECTORY "${WORK_DIR}"
  OUTPUT_QUIET ERROR_QUIET
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "restarted service failed (exit ${rc})")
endif()

# Byte-compare every deliverable against the uninterrupted baseline.
foreach(pair
    "base/alpha.report;killed/alpha.report"
    "base/beta.report;killed/beta.report"
    "base/gamma.report;killed/gamma.report"
    "base/events.log;killed/events.log"
    "metrics_base.jsonl;metrics.jsonl"
    "metrics_base.prom;metrics.jsonl.prom")
  list(GET pair 0 lhs)
  list(GET pair 1 rhs)
  execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files "${WORK_DIR}/${lhs}" "${WORK_DIR}/${rhs}"
    RESULT_VARIABLE differs)
  if(differs)
    message(FATAL_ERROR "${lhs} and ${rhs} differ: the restarted service is not byte-identical")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
message(STATUS "svc smoke test passed (kill + restart byte-identical)")
