#include <gtest/gtest.h>

#include "dkim/dkim.hpp"
#include "dmarc/discovery.hpp"
#include "dns/server.hpp"
#include "dns/zonefile.hpp"

namespace spfail {
namespace {

// ---------------------------------------------------------------- message

TEST(MailMessage, ParseBasic) {
  const auto msg = mail::Message::parse(
      "From: Alice <alice@example.com>\r\n"
      "To: bob@example.org\r\n"
      "Subject: hello\r\n"
      "\r\n"
      "body line 1\nbody line 2\n");
  ASSERT_EQ(msg.headers().size(), 3u);
  EXPECT_EQ(msg.headers()[0].name, "From");
  EXPECT_EQ(*msg.first_header("subject"), "hello");
  EXPECT_EQ(msg.body(), "body line 1\nbody line 2\n");
}

TEST(MailMessage, FoldedHeadersUnfold) {
  const auto msg = mail::Message::parse(
      "Subject: a very\r\n long subject\r\n\twith tabs\r\n\r\n");
  EXPECT_EQ(*msg.first_header("Subject"), "a very long subject with tabs");
}

TEST(MailMessage, BareLfAccepted) {
  const auto msg = mail::Message::parse("From: a@b.c\n\nbody");
  EXPECT_EQ(*msg.first_header("From"), "a@b.c");
  EXPECT_EQ(msg.body(), "body");
}

TEST(MailMessage, NoBody) {
  const auto msg = mail::Message::parse("From: a@b.c\r\n\r\n");
  EXPECT_TRUE(msg.body().empty());
}

TEST(MailMessage, JunkLinesIgnored) {
  const auto msg = mail::Message::parse(
      "this is not a header\nFrom: a@b.c\n\n");
  EXPECT_EQ(msg.headers().size(), 1u);
}

TEST(MailMessage, RoundTrip) {
  mail::Message msg;
  msg.add_header("From", "a@b.c");
  msg.add_header("Subject", "x");
  msg.set_body("hello\r\n");
  const auto reparsed = mail::Message::parse(msg.to_string());
  EXPECT_EQ(reparsed, msg);
}

TEST(MailMessage, PrependPutsTraceHeadersFirst) {
  mail::Message msg;
  msg.add_header("From", "a@b.c");
  msg.prepend_header("Received", "from x by y");
  EXPECT_EQ(msg.headers()[0].name, "Received");
}

TEST(MailMessage, FromDomainExtraction) {
  const auto with_display = mail::Message::parse(
      "From: \"Alice A.\" <alice@Mail.Example.COM>\n\n");
  ASSERT_TRUE(with_display.from_domain().has_value());
  EXPECT_EQ(with_display.from_domain()->to_string(), "mail.example.com");

  const auto bare = mail::Message::parse("From: bob@example.org\n\n");
  EXPECT_EQ(bare.from_domain()->to_string(), "example.org");

  const auto none = mail::Message::parse("Subject: x\n\n");
  EXPECT_FALSE(none.from_domain().has_value());
}

TEST(MailMessage, ExtractAddrSpec) {
  EXPECT_EQ(*mail::extract_addr_spec("X <a@b>"), "a@b");
  EXPECT_EQ(*mail::extract_addr_spec("  a@b  "), "a@b");
  EXPECT_FALSE(mail::extract_addr_spec("no address here").has_value());
}

// ---------------------------------------------------------------- DKIM

class DkimFixture : public ::testing::Test {
 protected:
  DkimFixture()
      : resolver_(server_, clock_, util::IpAddress::v4(10, 0, 0, 1)),
        signer_(dns::Name::from_string("example.com"), "s1", "sekrit") {
    dns::Zone zone(dns::Name::from_string("example.com"));
    zone.add(dns::ResourceRecord::txt(
        dns::Name::from_string("s1._domainkey.example.com"),
        dkim::key_record_text("sekrit")));
    server_.add_zone(std::move(zone));
  }

  mail::Message signed_message() {
    mail::Message msg;
    msg.add_header("From", "alice@example.com");
    msg.add_header("Subject", "greetings");
    msg.set_body("Hello, world.\r\n");
    signer_.sign(msg);
    return msg;
  }

  dns::AuthoritativeServer server_;
  util::SimClock clock_;
  dns::StubResolver resolver_;
  dkim::Signer signer_;
};

TEST_F(DkimFixture, SignAddsHeaderWithRequiredTags) {
  const auto msg = signed_message();
  const auto header = msg.first_header("DKIM-Signature");
  ASSERT_TRUE(header.has_value());
  const auto signature = dkim::parse_signature(*header);
  EXPECT_EQ(signature.domain.to_string(), "example.com");
  EXPECT_EQ(signature.selector, "s1");
  ASSERT_EQ(signature.signed_headers.size(), 2u);  // from, subject (no date)
  EXPECT_EQ(signature.signed_headers[0], "from");
}

TEST_F(DkimFixture, ValidSignatureVerifies) {
  const auto msg = signed_message();
  const auto verification = dkim::verify(msg, resolver_);
  EXPECT_EQ(verification.result, dkim::VerifyResult::Pass);
  EXPECT_EQ(verification.domain.to_string(), "example.com");
}

TEST_F(DkimFixture, BodyTamperingFails) {
  auto msg = signed_message();
  msg.set_body("Hello, world!!! (tampered)\r\n");
  EXPECT_EQ(dkim::verify(msg, resolver_).result, dkim::VerifyResult::Fail);
}

TEST_F(DkimFixture, SignedHeaderTamperingFails) {
  auto msg = signed_message();
  // Mutate the From header after signing.
  mail::Message tampered;
  for (const auto& h : msg.headers()) {
    if (h.name == "From") {
      tampered.add_header("From", "mallory@evil.example");
    } else {
      tampered.add_header(h.name, h.value);
    }
  }
  tampered.set_body(msg.body());
  EXPECT_EQ(dkim::verify(tampered, resolver_).result,
            dkim::VerifyResult::Fail);
}

TEST_F(DkimFixture, UnsignedMessageIsNone) {
  mail::Message msg;
  msg.add_header("From", "a@b.c");
  EXPECT_EQ(dkim::verify(msg, resolver_).result, dkim::VerifyResult::None);
}

TEST_F(DkimFixture, MissingKeyRecordIsPermError) {
  dkim::Signer other(dns::Name::from_string("nokey.example"), "s1", "x");
  mail::Message msg;
  msg.add_header("From", "a@nokey.example");
  msg.set_body("hi\n");
  other.sign(msg);
  EXPECT_EQ(dkim::verify(msg, resolver_).result,
            dkim::VerifyResult::PermError);
}

TEST_F(DkimFixture, WrongSecretFails) {
  // A forger who doesn't hold the real secret publishes nothing; signing
  // with a different secret against the real key record must fail.
  dkim::Signer forger(dns::Name::from_string("example.com"), "s1", "wrong");
  mail::Message msg;
  msg.add_header("From", "alice@example.com");
  msg.set_body("pay me\n");
  forger.sign(msg);
  EXPECT_EQ(dkim::verify(msg, resolver_).result, dkim::VerifyResult::Fail);
}

TEST_F(DkimFixture, BodyCanonicalizationIgnoresTrailingBlankLines) {
  auto msg = signed_message();
  msg.set_body(msg.body() + "\n\n\n");
  EXPECT_EQ(dkim::verify(msg, resolver_).result, dkim::VerifyResult::Pass);
}

TEST_F(DkimFixture, HeaderCanonicalizationCollapsesWhitespace) {
  EXPECT_EQ(dkim::canonicalize_header("Subject", "  a   b\t c "),
            "subject:a b c");
  EXPECT_EQ(dkim::canonicalize_header("FROM", "x@y"), "from:x@y");
}

TEST(DkimParse, Errors) {
  EXPECT_THROW(dkim::parse_signature("v=1; a=sim-sha"),
               dkim::SignatureSyntaxError);
  EXPECT_THROW(dkim::parse_signature("d=x.com; s=s1; junk"),
               dkim::SignatureSyntaxError);
}

TEST(DkimParse, RoundTrip) {
  dkim::Signature signature;
  signature.domain = dns::Name::from_string("example.com");
  signature.selector = "sel";
  signature.signed_headers = {"from", "subject"};
  signature.body_hash = "abc";
  signature.signature = "def";
  const auto reparsed = dkim::parse_signature(signature.to_header_value());
  EXPECT_EQ(reparsed.domain, signature.domain);
  EXPECT_EQ(reparsed.selector, signature.selector);
  EXPECT_EQ(reparsed.signed_headers, signature.signed_headers);
  EXPECT_EQ(reparsed.body_hash, "abc");
  EXPECT_EQ(reparsed.signature, "def");
}

// --------------------------------------------------- DKIM + DMARC alignment

TEST_F(DkimFixture, DkimDomainFeedsDmarcAlignment) {
  const auto msg = signed_message();
  const auto verification = dkim::verify(msg, resolver_);
  ASSERT_EQ(verification.result, dkim::VerifyResult::Pass);
  // The d= domain aligns (relaxed) with the From domain.
  EXPECT_TRUE(dmarc::aligned(verification.domain, *msg.from_domain(),
                             dmarc::Alignment::Relaxed));
  EXPECT_TRUE(dmarc::aligned(verification.domain, *msg.from_domain(),
                             dmarc::Alignment::Strict));
}

}  // namespace
}  // namespace spfail
