// SPF evaluator edge cases beyond the happy paths in spf_eval_test.cpp.
#include <gtest/gtest.h>

#include "dns/resolver.hpp"
#include "dns/server.hpp"
#include "dns/zonefile.hpp"
#include "spf/eval.hpp"

namespace spfail::spf {
namespace {

class EdgeFixture : public ::testing::Test {
 protected:
  EdgeFixture()
      : resolver_(server_, clock_, util::IpAddress::v4(10, 0, 0, 53)) {}

  void add(const char* origin, const std::string& text) {
    server_.add_zone(dns::parse_zone_text(text, dns::Name::from_string(origin)));
  }

  CheckOutcome check(const char* domain, const char* ip) {
    Rfc7208Expander expander;
    Evaluator evaluator(resolver_, expander);
    CheckRequest request;
    request.sender_local = "user";
    request.sender_domain = dns::Name::from_string(domain);
    request.client_ip = *util::IpAddress::parse(ip);
    return evaluator.check_host(request);
  }

  dns::AuthoritativeServer server_;
  util::SimClock clock_;
  dns::StubResolver resolver_;
};

TEST_F(EdgeFixture, IncludeLoopHitsLookupLimit) {
  add("a.example", R"(@ IN TXT "v=spf1 include:b.example -all")");
  add("b.example", R"(@ IN TXT "v=spf1 include:a.example -all")");
  EXPECT_EQ(check("a.example", "9.9.9.9").result, Result::PermError);
}

TEST_F(EdgeFixture, SelfRedirectLoopIsPermError) {
  add("loop.example", R"(@ IN TXT "v=spf1 redirect=loop.example")");
  EXPECT_EQ(check("loop.example", "9.9.9.9").result, Result::PermError);
}

TEST_F(EdgeFixture, LongSpfRecordSplitAcrossTxtStrings) {
  // A policy longer than 255 octets must be reassembled from multiple
  // character-strings (RFC 7208 section 3.3).
  std::string policy = "v=spf1";
  for (int i = 0; i < 20; ++i) {
    policy += " ip4:192.0.2." + std::to_string(i);
  }
  policy += " ip4:198.51.100.7 -all";
  ASSERT_GT(policy.size(), 255u);
  dns::Zone zone(dns::Name::from_string("long.example"));
  zone.add(dns::ResourceRecord::txt(dns::Name::from_string("long.example"),
                                    policy));
  server_.add_zone(std::move(zone));
  EXPECT_EQ(check("long.example", "198.51.100.7").result, Result::Pass);
  EXPECT_EQ(check("long.example", "198.51.100.8").result, Result::Fail);
}

TEST_F(EdgeFixture, NonSpfTxtRecordsCoexist) {
  add("multi.example", R"(
$ORIGIN multi.example.
@ IN TXT "google-site-verification=abc123"
@ IN TXT "v=spf1 ip4:192.0.2.1 -all"
@ IN TXT "another unrelated record"
)");
  EXPECT_EQ(check("multi.example", "192.0.2.1").result, Result::Pass);
}

TEST_F(EdgeFixture, MechanismsAfterMatchAreNotEvaluated) {
  // The second mechanism's domain does not exist; if evaluation were eager it
  // would burn a void lookup. A match on the first mechanism short-circuits.
  add("short.example",
      R"(@ IN TXT "v=spf1 ip4:192.0.2.0/24 a:missing.nowhere.example -all")");
  const CheckOutcome outcome = check("short.example", "192.0.2.9");
  EXPECT_EQ(outcome.result, Result::Pass);
  EXPECT_EQ(outcome.dns_mechanism_lookups, 0);
}

TEST_F(EdgeFixture, RedirectIgnoredWhenAllPresent) {
  // "-all" matches first, so the redirect (which would PermError on the
  // missing target) must never run.
  add("allfirst.example",
      R"(@ IN TXT "v=spf1 -all redirect=missing.example")");
  EXPECT_EQ(check("allfirst.example", "9.9.9.9").result, Result::Fail);
}

TEST_F(EdgeFixture, NeutralQualifierOnMatchIsNeutral) {
  add("neutral.example", R"(@ IN TXT "v=spf1 ?ip4:9.9.9.9 -all")");
  EXPECT_EQ(check("neutral.example", "9.9.9.9").result, Result::Neutral);
}

TEST_F(EdgeFixture, Ipv6ClientAgainstV4OnlyPolicy) {
  add("v4only.example", R"(@ IN TXT "v=spf1 ip4:192.0.2.0/24 -all")");
  EXPECT_EQ(check("v4only.example", "2001:db8::1").result, Result::Fail);
}

TEST_F(EdgeFixture, DualCidrSelectsByFamily) {
  add("dual.example", R"(
$ORIGIN dual.example.
@ IN TXT "v=spf1 a:host.dual.example/24//64 -all"
host IN A    192.0.2.10
host IN AAAA 2001:db8:0:1::10
)");
  // v4 client inside /24 of the A record.
  EXPECT_EQ(check("dual.example", "192.0.2.200").result, Result::Pass);
  // v6 client inside //64 of the AAAA record.
  EXPECT_EQ(check("dual.example", "2001:db8:0:1::99").result, Result::Pass);
  // v6 client outside the /64.
  EXPECT_EQ(check("dual.example", "2001:db8:0:2::99").result, Result::Fail);
}

TEST_F(EdgeFixture, UppercaseRecordBodyParses) {
  // Mechanism names are case-insensitive (only the version tag is strict).
  add("upper.example", R"(@ IN TXT "v=spf1 IP4:192.0.2.1 -ALL")");
  EXPECT_EQ(check("upper.example", "192.0.2.1").result, Result::Pass);
  EXPECT_EQ(check("upper.example", "192.0.2.2").result, Result::Fail);
}

TEST_F(EdgeFixture, EmptyPolicyIsNeutral) {
  add("empty.example", R"(@ IN TXT "v=spf1")");
  EXPECT_EQ(check("empty.example", "9.9.9.9").result, Result::Neutral);
}

TEST_F(EdgeFixture, MxWithTooManyExchangesIsPermError) {
  std::string zone_text = "$ORIGIN many.example.\n@ IN TXT \"v=spf1 mx -all\"\n";
  for (int i = 0; i < 12; ++i) {
    zone_text += "@ IN MX 10 mx" + std::to_string(i) + "\n";
    zone_text += "mx" + std::to_string(i) + " IN A 192.0.2." +
                 std::to_string(i + 1) + "\n";
  }
  add("many.example", zone_text);
  EXPECT_EQ(check("many.example", "203.0.113.1").result, Result::PermError);
}

TEST_F(EdgeFixture, IncludeNeutralDoesNotMatch) {
  add("outer.example", R"(@ IN TXT "v=spf1 include:inner.example ~all")");
  add("inner.example", R"(@ IN TXT "v=spf1 ?all")");
  // Inner Neutral -> include does not match -> outer continues to ~all.
  EXPECT_EQ(check("outer.example", "9.9.9.9").result, Result::SoftFail);
}

TEST_F(EdgeFixture, TempErrorPropagatesFromInclude) {
  // No zone for servfail.example is configured on this server and the server
  // REFUSES off-zone queries, which the resolver reports as a non-NoError
  // rcode -> the spec maps include lookup failures to TempError... our
  // evaluator maps only ServFail; Refused yields no SPF record -> PermError
  // per section 5.2 (include of a None result).
  add("outer2.example", R"(@ IN TXT "v=spf1 include:servfail.example -all")");
  EXPECT_EQ(check("outer2.example", "9.9.9.9").result, Result::PermError);
}

// Parameterised sweep: the lookup limit triggers at exactly 10 mechanisms.
class LookupLimitSweep : public EdgeFixture,
                         public ::testing::WithParamInterface<int> {};

TEST_P(LookupLimitSweep, BoundaryExact) {
  const int n = GetParam();
  std::string zone_text = "$ORIGIN limit.example.\n@ IN TXT \"v=spf1";
  for (int i = 0; i < n; ++i) {
    zone_text += " a:h" + std::to_string(i) + ".limit.example";
  }
  zone_text += " +all\"\n";
  for (int i = 0; i < n; ++i) {
    zone_text += "h" + std::to_string(i) + " IN A 10.0.0." +
                 std::to_string(i + 1) + "\n";
  }
  add("limit.example", zone_text);
  const Result result = check("limit.example", "203.0.113.1").result;
  if (n <= 10) {
    EXPECT_EQ(result, Result::Pass) << n;  // +all after n lookups
  } else {
    EXPECT_EQ(result, Result::PermError) << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Boundary, LookupLimitSweep,
                         ::testing::Values(1, 9, 10, 11, 12));

}  // namespace
}  // namespace spfail::spf
