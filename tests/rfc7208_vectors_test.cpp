// Conformance vectors straight from RFC 7208 section 7.4 — the macro
// expansion examples the specification itself publishes. The sender is
// strong-bad@email.example.com; the client IP is 192.0.2.3 (and
// 2001:db8::cb01 for the IPv6 cases).
#include <gtest/gtest.h>

#include "spf/macro.hpp"
#include "spfvuln/libspf2_expander.hpp"

namespace spfail::spf {
namespace {

MacroContext rfc_context_v4() {
  MacroContext ctx;
  ctx.sender_local = "strong-bad";
  ctx.sender_domain = dns::Name::from_string("email.example.com");
  ctx.current_domain = ctx.sender_domain;
  ctx.client_ip = *util::IpAddress::parse("192.0.2.3");
  return ctx;
}

struct Vector {
  const char* macro;
  const char* expected;
};

class Rfc7208MacroVectors : public ::testing::TestWithParam<Vector> {};

TEST_P(Rfc7208MacroVectors, ExpandsPerSpec) {
  const Rfc7208Expander expander;
  EXPECT_EQ(expander.expand(GetParam().macro, rfc_context_v4()),
            GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Section74, Rfc7208MacroVectors,
    ::testing::Values(
        Vector{"%{s}", "strong-bad@email.example.com"},
        Vector{"%{o}", "email.example.com"},
        Vector{"%{d}", "email.example.com"},
        Vector{"%{d4}", "email.example.com"},
        Vector{"%{d3}", "email.example.com"},
        Vector{"%{d2}", "example.com"},
        Vector{"%{d1}", "com"},
        Vector{"%{dr}", "com.example.email"},
        Vector{"%{d2r}", "example.email"},
        Vector{"%{l}", "strong-bad"},
        Vector{"%{l-}", "strong.bad"},
        Vector{"%{lr}", "strong-bad"},
        Vector{"%{lr-}", "bad.strong"},
        Vector{"%{l1r-}", "strong"},
        Vector{"%{ir}", "3.2.0.192"},
        Vector{"%{v}", "in-addr"},
        // Full domain-spec examples from the same section.
        Vector{"%{ir}.%{v}._spf.%{d2}", "3.2.0.192.in-addr._spf.example.com"},
        Vector{"%{lr-}.lp._spf.%{d2}", "bad.strong.lp._spf.example.com"},
        Vector{"%{lr-}.lp.%{ir}.%{v}._spf.%{d2}",
               "bad.strong.lp.3.2.0.192.in-addr._spf.example.com"},
        Vector{"%{ir}.%{v}.%{l1r-}.lp._spf.%{d2}",
               "3.2.0.192.in-addr.strong.lp._spf.example.com"},
        Vector{"%{d2}.trusted-domains.example.net",
               "example.com.trusted-domains.example.net"}));

TEST(Rfc7208MacroVectorsV6, Ipv6Example) {
  // "%{ir}.%{v}._spf.%{d2}" for client 2001:db8::cb01 expands to the nibble
  // form under ip6 (RFC 7208 section 7.4's final example).
  MacroContext ctx = rfc_context_v4();
  ctx.client_ip = *util::IpAddress::parse("2001:db8::cb01");
  const Rfc7208Expander expander;
  EXPECT_EQ(expander.expand("%{ir}.%{v}._spf.%{d2}", ctx),
            "1.0.b.c.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.8.b.d.0."
            "1.0.0.2.ip6._spf.example.com");
}

// The vulnerable library must agree with the spec on every *safe* vector
// (no reversal+truncation, no URL escaping) — the CVEs hide in plain sight.
class VulnOnSafeVectors : public ::testing::TestWithParam<Vector> {};

TEST_P(VulnOnSafeVectors, MatchesSpec) {
  const spfvuln::Libspf2Expander vulnerable;
  EXPECT_EQ(vulnerable.expand(GetParam().macro, rfc_context_v4()),
            GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    SafeSubset, VulnOnSafeVectors,
    ::testing::Values(Vector{"%{s}", "strong-bad@email.example.com"},
                      Vector{"%{d}", "email.example.com"},
                      Vector{"%{dr}", "com.example.email"},
                      Vector{"%{d2}", "example.com"},
                      Vector{"%{ir}", "3.2.0.192"},
                      Vector{"%{ir}.%{v}._spf.%{d2}",
                             "3.2.0.192.in-addr._spf.example.com"}));

// And it must DISAGREE on the reversal+truncation vectors — the fingerprint.
class VulnOnFingerprintVectors : public ::testing::TestWithParam<Vector> {};

TEST_P(VulnOnFingerprintVectors, DivergesFromSpec) {
  const spfvuln::Libspf2Expander vulnerable;
  const Rfc7208Expander rfc;
  const std::string vulnerable_out =
      vulnerable.expand(GetParam().macro, rfc_context_v4());
  EXPECT_NE(vulnerable_out, rfc.expand(GetParam().macro, rfc_context_v4()));
  EXPECT_EQ(vulnerable_out, GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Fingerprints, VulnOnFingerprintVectors,
    ::testing::Values(
        // %{d2r} over email.example.com: dropped = [com], kept reversed
        // tail = [example, email]; buggy output re-emits the dropped label.
        Vector{"%{d2r}", "com.com.example.email"},
        Vector{"%{l1r-}", "bad.bad.strong"},
        Vector{"%{d1r}", "com.example.com.example.email"}));

}  // namespace
}  // namespace spfail::spf
