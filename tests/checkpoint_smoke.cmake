# End-to-end checkpoint/resume smoke test, run as a ctest entry:
#   1. uninterrupted scan                      -> full.out + full trace
#   2. scan halted at a mid-study checkpoint   -> snapshot on disk
#   3. resumed scan from the snapshot          -> resumed.out + resumed trace
# The resumed run's stdout and JSONL trace must be byte-identical to the
# uninterrupted run's (checkpoint/resume status lines go to stderr only).
#
# Expects: -DSPFAIL_SCAN=<path to spfail_scan> -DWORK_DIR=<scratch dir>
if(NOT SPFAIL_SCAN OR NOT WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DSPFAIL_SCAN=... -DWORK_DIR=... -P checkpoint_smoke.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(FLAGS --scale 0.01 --fault-rate 0.02 --trace trace.jsonl)

execute_process(
  COMMAND "${SPFAIL_SCAN}" ${FLAGS}
  WORKING_DIRECTORY "${WORK_DIR}"
  OUTPUT_FILE full.out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "uninterrupted scan failed (exit ${rc})")
endif()
file(RENAME "${WORK_DIR}/trace.jsonl" "${WORK_DIR}/trace_full.jsonl")

execute_process(
  COMMAND "${SPFAIL_SCAN}" ${FLAGS} --checkpoint snap.bin --halt-after-rounds 11
  WORKING_DIRECTORY "${WORK_DIR}"
  OUTPUT_FILE halted.out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "halting scan failed (exit ${rc})")
endif()
if(NOT EXISTS "${WORK_DIR}/snap.bin")
  message(FATAL_ERROR "halting scan wrote no checkpoint")
endif()

execute_process(
  COMMAND "${SPFAIL_SCAN}" ${FLAGS} --resume snap.bin --threads 4
  WORKING_DIRECTORY "${WORK_DIR}"
  OUTPUT_FILE resumed.out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resumed scan failed (exit ${rc})")
endif()

foreach(pair "full.out;resumed.out" "trace_full.jsonl;trace.jsonl")
  list(GET pair 0 lhs)
  list(GET pair 1 rhs)
  execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files "${WORK_DIR}/${lhs}" "${WORK_DIR}/${rhs}"
    RESULT_VARIABLE differs)
  if(differs)
    message(FATAL_ERROR "${lhs} and ${rhs} differ: the resumed run is not byte-identical")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
message(STATUS "checkpoint/resume smoke test passed (byte-identical outputs)")
