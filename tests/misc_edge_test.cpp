// Assorted edge-case coverage: resolver caching subtleties, MTA lifecycle,
// vulnerable-expansion arithmetic properties.
#include <gtest/gtest.h>

#include "dns/resolver.hpp"
#include "dns/server.hpp"
#include "dns/zonefile.hpp"
#include "mta/host.hpp"
#include "scan/test_responder.hpp"
#include "spfvuln/libspf2_expander.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace spfail {
namespace {

// -------------------------------------------------------------- resolver

TEST(ResolverEdge, NegativeAnswersAreCachedToo) {
  dns::AuthoritativeServer server;
  server.add_zone(dns::Zone(dns::Name::from_string("empty.example")));
  util::SimClock clock;
  dns::StubResolver resolver(server, clock, util::IpAddress::v4(10, 0, 0, 1));

  resolver.query(dns::Name::from_string("missing.empty.example"),
                 dns::RRType::A);
  resolver.query(dns::Name::from_string("missing.empty.example"),
                 dns::RRType::A);
  EXPECT_EQ(server.query_log().size(), 1u);  // NXDOMAIN served from cache
}

TEST(ResolverEdge, DifferentTypesAreDistinctCacheKeys) {
  dns::AuthoritativeServer server;
  server.add_zone(dns::parse_zone_text("@ IN A 192.0.2.1",
                                       dns::Name::from_string("x.example")));
  util::SimClock clock;
  dns::StubResolver resolver(server, clock, util::IpAddress::v4(10, 0, 0, 1));
  resolver.query(dns::Name::from_string("x.example"), dns::RRType::A);
  resolver.query(dns::Name::from_string("x.example"), dns::RRType::TXT);
  EXPECT_EQ(server.query_log().size(), 2u);
}

TEST(ResolverEdge, AddressesFollowsMixedFamilies) {
  dns::AuthoritativeServer server;
  server.add_zone(dns::parse_zone_text(R"(
$ORIGIN dual.example.
@ IN A    192.0.2.1
@ IN AAAA 2001:db8::1
)",
                                       dns::Name::from_string("dual.example")));
  util::SimClock clock;
  dns::StubResolver resolver(server, clock, util::IpAddress::v4(10, 0, 0, 1));
  const auto addrs = resolver.addresses(dns::Name::from_string("dual.example"));
  ASSERT_EQ(addrs.size(), 2u);
  EXPECT_TRUE(addrs[0].is_v4());
  EXPECT_TRUE(addrs[1].is_v6());
}

// -------------------------------------------------------------- MTA

class HostLifecycle : public ::testing::Test {
 protected:
  HostLifecycle() { scan::install_test_responder(server_); }
  dns::AuthoritativeServer server_;
  util::SimClock clock_;
};

TEST_F(HostLifecycle, ApplyPatchIsIdempotent) {
  mta::HostProfile profile;
  profile.address = util::IpAddress::v4(203, 0, 113, 99);
  profile.behaviors = {spfvuln::SpfBehavior::VulnerableLibspf2};
  mta::MailHost host(profile, server_, clock_);
  EXPECT_TRUE(host.runs_vulnerable_engine());
  host.apply_patch();
  EXPECT_FALSE(host.runs_vulnerable_engine());
  EXPECT_TRUE(host.is_patched());
  host.apply_patch();
  EXPECT_TRUE(host.is_patched());
  ASSERT_EQ(host.behaviors().size(), 1u);
  EXPECT_EQ(host.behaviors()[0], spfvuln::SpfBehavior::PatchedLibspf2);
}

TEST_F(HostLifecycle, PatchOnlyReplacesVulnerableEngines) {
  mta::HostProfile profile;
  profile.address = util::IpAddress::v4(203, 0, 113, 98);
  profile.behaviors = {spfvuln::SpfBehavior::NoTruncation,
                       spfvuln::SpfBehavior::VulnerableLibspf2};
  mta::MailHost host(profile, server_, clock_);
  host.apply_patch();
  EXPECT_EQ(host.behaviors()[0], spfvuln::SpfBehavior::NoTruncation);
  EXPECT_EQ(host.behaviors()[1], spfvuln::SpfBehavior::PatchedLibspf2);
}

TEST_F(HostLifecycle, BlacklistIsReversible) {
  mta::HostProfile profile;
  profile.address = util::IpAddress::v4(203, 0, 113, 97);
  mta::MailHost host(profile, server_, clock_);
  host.set_blacklisted(true);
  auto session = host.connect(util::IpAddress::v4(9, 9, 9, 9));
  ASSERT_TRUE(session.has_value());
  EXPECT_EQ(session->respond("EHLO x").code, 554);
  host.set_blacklisted(false);
  auto session2 = host.connect(util::IpAddress::v4(9, 9, 9, 9));
  EXPECT_EQ(session2->respond("EHLO x").code, 250);
}

TEST_F(HostLifecycle, GreylistRemembersClientAcrossSessions) {
  mta::HostProfile profile;
  profile.address = util::IpAddress::v4(203, 0, 113, 96);
  profile.greylists = true;
  mta::MailHost host(profile, server_, clock_);
  const auto client = util::IpAddress::v4(9, 9, 9, 9);

  auto first = host.connect(client);
  first->respond("EHLO x");
  EXPECT_EQ(first->respond("MAIL FROM:<a@b.com>").code, 451);

  clock_.advance_by(9 * util::kMinute);
  auto second = host.connect(client);
  second->respond("EHLO x");
  EXPECT_EQ(second->respond("MAIL FROM:<a@b.com>").code, 250);

  // A different client starts its own greylist window.
  auto third = host.connect(util::IpAddress::v4(8, 8, 8, 8));
  third->respond("EHLO x");
  EXPECT_EQ(third->respond("MAIL FROM:<a@b.com>").code, 451);
}

// ------------------------------------------- expansion arithmetic properties

// Property: the emulation's byte accounting is internally consistent —
// written == allocated + overflow whenever the length bug fires, and the
// output string is exactly what was written.
class ExpansionAccounting : public ::testing::TestWithParam<int> {};

TEST_P(ExpansionAccounting, WrittenEqualsAllocatedPlusOverflow) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 40; ++i) {
    std::string domain;
    const int labels = static_cast<int>(rng.uniform(2, 8));
    for (int l = 0; l < labels; ++l) {
      if (l > 0) domain.push_back('.');
      domain += rng.token(rng.uniform(1, 12));
    }
    spf::MacroItem item;
    item.letter = 'd';
    item.reverse = rng.bernoulli(0.7);
    item.keep = static_cast<int>(rng.uniform(0, 4));
    const auto report = spfvuln::libspf2_expand_item(item, domain);
    EXPECT_EQ(report.output.size(), report.buffer_written);
    if (report.overflow_bytes > 0) {
      EXPECT_EQ(report.buffer_written,
                report.buffer_allocated + report.overflow_bytes);
      EXPECT_TRUE(report.length_reassigned || report.sprintf_overflow);
    } else {
      EXPECT_LE(report.buffer_written, report.buffer_allocated);
    }
    // The length bug fires exactly when reversal meets real truncation.
    const bool truncates =
        item.keep > 0 &&
        static_cast<std::size_t>(item.keep) <
            util::split(domain, '.').size();
    EXPECT_EQ(report.length_reassigned, item.reverse && truncates);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpansionAccounting, ::testing::Range(0, 8));

// Property: without reversal-truncation and without URL escaping, the
// vulnerable library's output equals the RFC output (the bug is contained).
class VulnEqualsRfcWhenSafe : public ::testing::TestWithParam<int> {};

TEST_P(VulnEqualsRfcWhenSafe, SafeShapesMatch) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  const spfvuln::Libspf2Expander vulnerable;
  const spf::Rfc7208Expander rfc;
  spf::MacroContext ctx;
  ctx.sender_local = rng.token(6);
  ctx.sender_domain = dns::Name::from_string(rng.token(5) + "." + rng.token(3));
  ctx.current_domain = ctx.sender_domain;
  ctx.client_ip = util::IpAddress::v4(
      static_cast<std::uint32_t>(rng.uniform(0x01000000, 0xDFFFFFFF)));
  for (const char* macro : {"%{d}", "%{l}", "%{i}", "%{dr}", "%{d2}",
                            "%{s}", "%{o}", "x.%{d}.y"}) {
    EXPECT_EQ(vulnerable.expand(macro, ctx), rfc.expand(macro, ctx)) << macro;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VulnEqualsRfcWhenSafe, ::testing::Range(0, 6));

}  // namespace
}  // namespace spfail
