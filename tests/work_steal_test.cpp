// The work-stealing batch scheduler (DESIGN.md §16): Chase–Lev deque
// semantics, exactly-once batch delivery under racing thieves, and the
// load-bearing guarantee that steal schedules are invisible in the output —
// a campaign run under the adversarial stealer is byte-identical to the
// static-shard baseline at any thread count. The whole file re-runs under
// TSan via the tsan_lockfree ctest entry.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "population/fleet.hpp"
#include "scan/campaign.hpp"
#include "util/thread_pool.hpp"
#include "util/work_steal.hpp"

namespace spfail {
namespace {

// ---------------------------------------------------------------- deque

TEST(WorkStealDeque, OwnerPopsLifoThievesStealFifo) {
  util::ChaseLevDeque deque(8);
  EXPECT_TRUE(deque.empty());
  EXPECT_EQ(deque.pop(), util::ChaseLevDeque::kEmpty);
  EXPECT_EQ(deque.steal(), util::ChaseLevDeque::kEmpty);

  deque.push(10);
  deque.push(11);
  deque.push(12);
  EXPECT_FALSE(deque.empty());
  EXPECT_EQ(deque.steal(), 10u);  // oldest from the top
  EXPECT_EQ(deque.pop(), 12u);    // newest from the bottom
  EXPECT_EQ(deque.pop(), 11u);
  EXPECT_TRUE(deque.empty());
  EXPECT_EQ(deque.pop(), util::ChaseLevDeque::kEmpty);
}

TEST(WorkStealDeque, RacingThievesDrainEachValueExactlyOnce) {
  // The owner pops while several thieves steal; every preloaded value must
  // surface exactly once across all takers (lost CAS races return kEmpty and
  // are retried, never duplicated).
  constexpr std::size_t kValues = 4096;
  constexpr int kThieves = 4;
  util::ChaseLevDeque deque(kValues);
  for (std::size_t v = 0; v < kValues; ++v) deque.push(v);

  std::vector<std::atomic<int>> taken(kValues);
  for (auto& t : taken) t.store(0);
  std::atomic<std::size_t> total{0};

  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (total.load() < kValues) {
        const std::size_t v = deque.steal();
        if (v == util::ChaseLevDeque::kEmpty) continue;
        taken[v].fetch_add(1);
        total.fetch_add(1);
      }
    });
  }
  std::thread owner([&] {
    while (total.load() < kValues) {
      const std::size_t v = deque.pop();
      if (v == util::ChaseLevDeque::kEmpty) continue;
      taken[v].fetch_add(1);
      total.fetch_add(1);
    }
  });
  owner.join();
  for (auto& thief : thieves) thief.join();

  EXPECT_TRUE(deque.empty());
  for (std::size_t v = 0; v < kValues; ++v) {
    EXPECT_EQ(taken[v].load(), 1) << "value " << v;
  }
}

// ------------------------------------------------------------- options

TEST(WorkStealOptions, ParsersRejectUnknownNames) {
  EXPECT_EQ(util::parse_sched_policy("auto"), util::SchedPolicy::Auto);
  EXPECT_EQ(util::parse_sched_policy("static"), util::SchedPolicy::Static);
  EXPECT_EQ(util::parse_sched_policy("steal"), util::SchedPolicy::Steal);
  EXPECT_THROW(util::parse_sched_policy("stealx"), std::invalid_argument);
  EXPECT_THROW(util::parse_sched_policy(""), std::invalid_argument);

  EXPECT_EQ(util::parse_steal_mode("none"), util::StealMode::None);
  EXPECT_EQ(util::parse_steal_mode("random"), util::StealMode::Random);
  EXPECT_EQ(util::parse_steal_mode("adversarial"),
            util::StealMode::Adversarial);
  EXPECT_THROW(util::parse_steal_mode("greedy"), std::invalid_argument);
}

TEST(WorkStealOptions, AutoResolvesFromEnvironmentExplicitWins) {
  util::SchedulerOptions opts;
  ::unsetenv("SPFAIL_SCHED");
  ::unsetenv("SPFAIL_STEAL");
  util::SchedulerOptions resolved = opts.resolved();
  EXPECT_EQ(resolved.policy, util::SchedPolicy::Steal);  // default
  EXPECT_EQ(resolved.steal, util::StealMode::Random);    // default

  ::setenv("SPFAIL_SCHED", "static", 1);
  ::setenv("SPFAIL_STEAL", "adversarial", 1);
  resolved = opts.resolved();
  EXPECT_EQ(resolved.policy, util::SchedPolicy::Static);
  EXPECT_EQ(resolved.steal, util::StealMode::Adversarial);

  // Explicit fields pass through untouched.
  opts.policy = util::SchedPolicy::Steal;
  opts.steal = util::StealMode::None;
  resolved = opts.resolved();
  EXPECT_EQ(resolved.policy, util::SchedPolicy::Steal);
  EXPECT_EQ(resolved.steal, util::StealMode::None);

  ::setenv("SPFAIL_SCHED", "bogus", 1);
  opts.policy = util::SchedPolicy::Auto;
  EXPECT_THROW(opts.resolved(), std::invalid_argument);
  ::unsetenv("SPFAIL_SCHED");
  ::unsetenv("SPFAIL_STEAL");
}

// ----------------------------------------------------------------- pool

util::SchedulerOptions steal_opts(util::StealMode mode) {
  util::SchedulerOptions opts;
  opts.policy = util::SchedPolicy::Steal;
  opts.steal = mode;
  return opts;
}

TEST(WorkStealPool, BatchCountScalesWithWorkersAndClampsToItems) {
  util::ThreadPool pool(4);
  const util::SchedulerOptions opts = steal_opts(util::StealMode::Random);
  EXPECT_EQ(pool.batch_count(0, opts), 0u);
  EXPECT_EQ(pool.batch_count(10, opts), 10u);   // never more than n
  EXPECT_EQ(pool.batch_count(1000, opts), 32u);  // 4 workers * 8 batches
  // slice_count dispatches on the policy.
  util::SchedulerOptions static_opts;
  static_opts.policy = util::SchedPolicy::Static;
  EXPECT_EQ(pool.slice_count(1000, static_opts), 4u);
  EXPECT_EQ(pool.slice_count(1000, opts), 32u);
}

TEST(WorkStealPool, BatchesCoverFullRangeExactlyOnceUnderEveryMode) {
  for (const auto mode : {util::StealMode::None, util::StealMode::Random,
                          util::StealMode::Adversarial}) {
    util::ThreadPool pool(4);
    const std::size_t n = 1003;
    std::vector<std::atomic<int>> touched(n);
    for (auto& t : touched) t.store(0);
    const util::SchedulerOptions opts = steal_opts(mode);
    pool.parallel_for_batches(n, opts, [&](std::size_t batch,
                                           std::size_t begin,
                                           std::size_t end) {
      EXPECT_LT(batch, pool.batch_count(n, opts));
      EXPECT_LT(begin, end);
      for (std::size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(touched[i].load(), 1)
          << "index " << i << " mode " << util::to_string(mode);
    }
  }
}

TEST(WorkStealPool, BatchOrderMergeIsScheduleInvariant) {
  // The index-addressed contract: results land in slot `batch`, the merge
  // walks slots in order, so the merged sequence is identical no matter
  // which worker ran what — including the adversarial forced-steal schedule.
  const auto merged = [](int threads, util::StealMode mode) {
    util::ThreadPool pool(threads);
    const std::size_t n = 509;
    const util::SchedulerOptions opts = steal_opts(mode);
    std::vector<std::vector<std::size_t>> slots(pool.batch_count(n, opts));
    pool.parallel_for_batches(
        n, opts, [&](std::size_t batch, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            slots[batch].push_back(i * i);
          }
        });
    std::vector<std::size_t> out;
    for (const auto& slot : slots) {
      out.insert(out.end(), slot.begin(), slot.end());
    }
    return out;
  };
  const auto baseline = merged(1, util::StealMode::None);
  std::vector<std::size_t> expected(509);
  for (std::size_t i = 0; i < expected.size(); ++i) expected[i] = i * i;
  EXPECT_EQ(baseline, expected);
  EXPECT_EQ(baseline, merged(2, util::StealMode::Random));
  EXPECT_EQ(baseline, merged(8, util::StealMode::Random));
  EXPECT_EQ(baseline, merged(2, util::StealMode::Adversarial));
  EXPECT_EQ(baseline, merged(8, util::StealMode::Adversarial));
}

TEST(WorkStealPool, SuppressedBatchErrorsAreLoggedFirstWins) {
  // Satellite of §16: parallel_for_shards used to rethrow only the first
  // exception and silently drop the rest. Every later error now reaches
  // stderr before the first (in slot order) is rethrown.
  util::ThreadPool pool(4);
  const util::SchedulerOptions opts = steal_opts(util::StealMode::Random);
  testing::internal::CaptureStderr();
  try {
    pool.parallel_for_batches(
        32, opts, [&](std::size_t batch, std::size_t, std::size_t) {
          if (batch == 3 || batch == 7) {
            throw std::runtime_error("batch " + std::to_string(batch) +
                                     " died");
          }
        });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "batch 3 died");
  }
  const std::string logged = testing::internal::GetCapturedStderr();
  EXPECT_NE(logged.find("suppressed error"), std::string::npos);
  EXPECT_NE(logged.find("batch 7 died"), std::string::npos);
  // The same contract holds on the static path.
  testing::internal::CaptureStderr();
  try {
    pool.parallel_for_shards(100, [&](std::size_t shard, std::size_t,
                                      std::size_t) {
      if (shard >= 2) {
        throw std::runtime_error("shard " + std::to_string(shard));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "shard 2");
  }
  const std::string shard_logged = testing::internal::GetCapturedStderr();
  EXPECT_NE(shard_logged.find("suppressed error"), std::string::npos);
  EXPECT_NE(shard_logged.find("shard 3"), std::string::npos);
}

// --------------------------------------------------------- determinism

std::string run_campaign(int threads, util::SchedPolicy policy,
                         util::StealMode mode, double fault_rate = 0.0) {
  population::FleetConfig config;
  config.scale = 0.02;
  config.seed = 7;
  population::Fleet fleet(config);
  scan::CampaignConfig campaign_config;
  campaign_config.prober.responder = fleet.responder();
  campaign_config.threads = threads;
  campaign_config.sched.policy = policy;
  campaign_config.sched.steal = mode;
  campaign_config.faults.rate = fault_rate;
  campaign_config.faults.seed = 42;
  scan::Campaign campaign(campaign_config, fleet.dns(), fleet.clock(), fleet);
  const scan::CampaignReport report = campaign.run(fleet.targets());
  std::ostringstream out;
  out << "suite=" << report.suite_label << "\n";
  for (const scan::AddressOutcome* outcome : report.sorted_outcomes()) {
    out << outcome->address.to_string() << " v=" << to_string(outcome->verdict)
        << " pa=" << outcome->probe_attempts << " ru=" << outcome->retries_used
        << "\n";
  }
  for (const auto& domain : report.domains) {
    out << domain.domain << " v=" << domain.vulnerable << "\n";
  }
  const faults::DegradationReport& deg = report.degradation;
  out << "deg pa=" << deg.probe_attempts << " inj=" << deg.injected_total()
      << " bt=" << deg.breaker_trips << " rq=" << deg.requeued
      << " rr=" << deg.requeue_recovered << "\n";
  out << "clock=" << fleet.clock().now()
      << " queries=" << fleet.dns().query_log().size() << "\n";
  return out.str();
}

TEST(WorkStealDeterminism, CampaignByteIdenticalStaticVsStealAnyThreads) {
  const std::string baseline =
      run_campaign(1, util::SchedPolicy::Static, util::StealMode::None);
  EXPECT_EQ(baseline, run_campaign(1, util::SchedPolicy::Steal,
                                   util::StealMode::Random));
  EXPECT_EQ(baseline, run_campaign(2, util::SchedPolicy::Steal,
                                   util::StealMode::Random));
  EXPECT_EQ(baseline, run_campaign(8, util::SchedPolicy::Steal,
                                   util::StealMode::Random));
  EXPECT_EQ(baseline, run_campaign(8, util::SchedPolicy::Static,
                                   util::StealMode::None));
}

TEST(WorkStealDeterminism, AdversarialStealerMatchesNoStealByteForByte) {
  // The seeded adversarial stealer raids every victim before touching its
  // own deque — maximal batch migration. The report must not move a byte
  // relative to the no-steal schedule.
  const std::string no_steal =
      run_campaign(4, util::SchedPolicy::Steal, util::StealMode::None);
  EXPECT_EQ(no_steal, run_campaign(4, util::SchedPolicy::Steal,
                                   util::StealMode::Adversarial));
  EXPECT_EQ(no_steal, run_campaign(2, util::SchedPolicy::Steal,
                                   util::StealMode::Adversarial));
}

TEST(WorkStealDeterminism, FaultInjectedAdversarialStillByteIdentical) {
  // With the fault layer live (retries, breaker, re-queue wave) the steal
  // schedule still may not leak into the report.
  const std::string baseline =
      run_campaign(1, util::SchedPolicy::Static, util::StealMode::None, 0.10);
  EXPECT_EQ(baseline, run_campaign(8, util::SchedPolicy::Steal,
                                   util::StealMode::Random, 0.10));
  EXPECT_EQ(baseline, run_campaign(8, util::SchedPolicy::Steal,
                                   util::StealMode::Adversarial, 0.10));
}

}  // namespace
}  // namespace spfail
